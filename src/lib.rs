//! Workspace root library: a thin façade re-exporting the framework crate so
//! the examples and integration tests have a single import point.
//!
//! The actual functionality lives in the `hbc-*` crates under `crates/`; see
//! the repository `README.md` and `DESIGN.md` for the architecture.

pub use hbc_core::*;

// The network-facing serving layer (TCP gateway + node client).
pub use hbc_net;

// The durable ingest log the gateway writes and recovers from.
pub use hbc_wal;

/// Parses the common scale argument used by the examples: `quick` (default),
/// `paper`, or a fraction such as `0.05`.
///
/// Unknown values fall back to `quick` so examples never panic on argument
/// typos.
pub fn scale_from_args() -> hbc_core::config::ExperimentConfig {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "quick".to_string());
    match arg.as_str() {
        "paper" => hbc_core::config::ExperimentConfig::paper(),
        "quick" => hbc_core::config::ExperimentConfig::quick(),
        other => other
            .parse::<f64>()
            .ok()
            .and_then(|f| {
                hbc_core::config::ExperimentConfig::at_scale(hbc_core::config::Scale::Fraction(f))
                    .ok()
            })
            .unwrap_or_else(hbc_core::config::ExperimentConfig::quick),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_parsing_defaults_to_quick() {
        // No recognised CLI argument is present under `cargo test`, so the
        // fallback path must yield the quick configuration.
        let config = super::scale_from_args();
        assert_eq!(config, hbc_core::config::ExperimentConfig::quick());
    }
}
