//! Adversarial ECG scenarios through the full embedded pipeline.
//!
//! The classifier is trained on three morphologies (N, V, L); ambulatory
//! reality serves rhythms and artifacts it has never seen. The safety
//! contract under test is **ARR-safe degradation**: whatever the input —
//! AF-like irregular rhythm, electrode pops, a flatlined lead, baseline
//! storms, pacing artifacts, a skewed ADC clock — the pipeline must
//!
//! * keep running (no errors, no panics),
//! * keep detecting beats, and
//! * keep the routing invariant: exactly the beats classified as abnormal
//!   (V, L or Unknown — everything but confident-Normal) are delineated and
//!   forwarded. A degraded input may cost classification accuracy; it must
//!   never silently discard a beat that should have travelled onward.

use std::sync::OnceLock;

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::hbc_ecg::beat::{BeatClass, BeatWindow};
use heartbeat_rp::hbc_ecg::record::EcgRecord;
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::firmware::FirmwareReport;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::hbc_embedded::WbsnFirmware;
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;

fn system() -> &'static TrainedSystem {
    static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
}

fn firmware() -> WbsnFirmware {
    let system = system();
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions")
}

/// The ARR-safe routing invariant plus basic liveness.
fn assert_arr_safe(report: &FirmwareReport, label: &str) {
    assert!(
        !report.beats.is_empty(),
        "{label}: no beats detected at all"
    );
    for (i, beat) in report.beats.iter().enumerate() {
        assert_eq!(
            beat.delineated,
            beat.predicted.is_abnormal(),
            "{label}: beat {i} at sample {} predicted {:?} but routing disagrees",
            beat.peak,
            beat.predicted
        );
        if beat.delineated {
            assert!(
                beat.fiducials_transmitted > 0,
                "{label}: beat {i} routed onward without fiducials"
            );
        }
    }
}

fn process(fw: &WbsnFirmware, record: &EcgRecord, label: &str) -> FirmwareReport {
    let report = fw
        .process_record(record)
        .unwrap_or_else(|e| panic!("{label}: pipeline errored on degraded input: {e}"));
    assert_arr_safe(&report, label);
    report
}

#[test]
fn af_like_rhythm_is_degraded_arr_safely() {
    let fw = firmware();
    let mut gen = SyntheticEcg::with_seed(901);
    let record = gen.af_record(400, 35, 2).expect("af record");
    assert!(record
        .annotations
        .iter()
        .all(|a| a.class == BeatClass::Unknown));
    let report = process(&fw, &record, "AF rhythm");
    // The irregular rhythm must not collapse beat detection: the pipeline
    // sees a substantial share of the conducted beats.
    assert!(
        report.beats.len() * 2 >= record.annotations.len(),
        "only {} of {} AF beats detected",
        report.beats.len(),
        record.annotations.len()
    );
}

#[test]
fn electrode_pops_do_not_silence_the_pipeline() {
    let fw = firmware();
    let mut gen = SyntheticEcg::with_seed(902);
    let rhythm = gen.rhythm(35, 0.1, 0.1);
    let mut record = gen.record(401, &rhythm, 2).expect("record");
    gen.electrode_pop(&mut record, 4);
    process(&fw, &record, "electrode pops");
}

#[test]
fn lead_dropout_on_any_lead_keeps_the_pipeline_running() {
    let fw = firmware();
    let mut gen = SyntheticEcg::with_seed(903);
    let rhythm = gen.rhythm(35, 0.1, 0.1);
    let record = gen.record(402, &rhythm, 3).expect("record");
    // A detached wire on an auxiliary lead — and, harder, on the
    // classification lead itself. Both must degrade, not error.
    for lead in 0..record.num_leads() {
        let mut dropped = record.clone();
        SyntheticEcg::lead_dropout(&mut dropped, lead, 5.0, 4.0);
        process(&fw, &dropped, &format!("dropout on lead {lead}"));
    }
}

#[test]
fn baseline_storm_is_degraded_arr_safely() {
    let fw = firmware();
    let mut gen = SyntheticEcg::with_seed(904);
    let rhythm = gen.rhythm(35, 0.1, 0.1);
    let mut record = gen.record(403, &rhythm, 2).expect("record");
    gen.baseline_storm(&mut record, 1.5);
    process(&fw, &record, "baseline storm");
}

#[test]
fn pacing_artifacts_are_degraded_arr_safely() {
    let fw = firmware();
    let mut gen = SyntheticEcg::with_seed(905);
    let rhythm = gen.rhythm(35, 0.1, 0.1);
    let mut record = gen.record(404, &rhythm, 2).expect("record");
    gen.pacing_artifacts(&mut record, 1.0);
    process(&fw, &record, "pacing artifacts");
}

#[test]
fn sample_rate_skew_is_degraded_arr_safely() {
    let fw = firmware();
    let mut gen = SyntheticEcg::with_seed(906);
    let rhythm = gen.rhythm(35, 0.1, 0.1);
    let record = gen.record(405, &rhythm, 2).expect("record");
    for factor in [0.92, 1.08] {
        let skewed = SyntheticEcg::rate_skew(&record, factor).expect("skew");
        process(&fw, &skewed, &format!("rate skew ×{factor}"));
    }
}
