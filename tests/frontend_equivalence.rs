//! Equivalence suite for the O(n) conditioning front-end.
//!
//! The monotone-deque sliding-extremum kernel behind
//! `hbc_dsp::filter::{erode, dilate, open, close}` must be indistinguishable
//! from the naive O(n·w) window rescan (`sliding_extreme_naive`) for every
//! window parity and border position — min/max are pure comparisons, so the
//! equality is exact, not approximate — and the allocation-free `_into`
//! variants must agree bit for bit with their allocating counterparts across
//! the full conditioning chain (morphological baseline removal + à-trous
//! wavelet). The capstone test reconstructs the *pre-deque* record pipeline
//! from the naive kernels and checks `WbsnFirmware::process_record` against
//! it beat by beat: per-beat classifications, ground-truth labels and the
//! NDR/ARR figures of merit are bit-identical.
//!
//! (The zero-steady-state-allocation gate lives in `tests/frontend_alloc.rs`
//! — it needs a counting global allocator and therefore a test binary of its
//! own.)

use std::sync::OnceLock;

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::hbc_dsp::filter::{
    close, close_into, dilate, dilate_into, effective_window, erode, erode_into, open, open_into,
    sliding_extreme_naive, ExtremumKind, MorphologicalFilter,
};
use heartbeat_rp::hbc_dsp::streaming::{StreamingDilation, StreamingErosion};
use heartbeat_rp::hbc_dsp::wavelet::DyadicWavelet;
use heartbeat_rp::hbc_dsp::window::{match_peaks, windows_at_peaks};
use heartbeat_rp::hbc_dsp::{Delineator, FrontendScratch, PeakDetector};
use heartbeat_rp::hbc_ecg::beat::BeatWindow;
use heartbeat_rp::hbc_ecg::record::Lead;
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::hbc_embedded::{BeatScratch, WbsnFirmware};
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;
use proptest::prelude::*;

/// Deterministic pseudo-ECG signal of `n` samples: drift + ripple + spikes,
/// parameterised by a seed so proptest explores different waveforms.
fn signal(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            let t = i as f64 * 0.017;
            (t * 1.3).sin()
                + 0.25 * (t * 9.1).cos()
                + 0.2 * noise
                + if i % 97 < 3 { 2.5 } else { 0.0 }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Deque kernel == naive rescan for every window parity and for signals
    // short enough that the borders dominate.
    #[test]
    fn deque_kernel_matches_naive_for_all_parities_and_borders(
        n in 1usize..=400,
        size in 1usize..=150,
        seed in any::<u64>(),
    ) {
        let x = signal(n, seed);
        let eroded = erode(&x, size);
        let dilated = dilate(&x, size);
        prop_assert_eq!(&eroded, &sliding_extreme_naive(&x, size, ExtremumKind::Min),
            "erode, n={}, size={}", n, size);
        prop_assert_eq!(&dilated, &sliding_extreme_naive(&x, size, ExtremumKind::Max),
            "dilate, n={}, size={}", n, size);
        // Even sizes are normalised to the next odd effective window, in one
        // place, on both kernels.
        prop_assert_eq!(effective_window(size), 2 * (size / 2) + 1);
        if size.is_multiple_of(2) {
            prop_assert_eq!(&eroded, &erode(&x, size + 1));
            prop_assert_eq!(&dilated, &dilate(&x, size + 1));
        }
    }

    // The MMD delineation operator rides the same wedge kernel (one
    // trailing-max and one leading-min pass per scale) and must equal the
    // naive per-output rescan exactly — same clamped borders, same
    // (max + min) − 2x association order — for every signal length and
    // scale, degenerate ones included.
    #[test]
    fn mmd_wedge_matches_the_naive_rescan(
        n in 0usize..=400,
        scale in 0usize..=150,
        seed in any::<u64>(),
    ) {
        let x = signal(n, seed);
        prop_assert_eq!(
            Delineator::mmd(&x, scale),
            Delineator::mmd_naive(&x, scale),
            "n={}, scale={}", n, scale
        );
    }

    // The `_into` variants reuse one scratch across wildly different
    // geometries and still agree bit for bit with the allocating paths.
    #[test]
    fn into_variants_match_allocating_variants_bit_for_bit(
        n in 1usize..=300,
        size in 1usize..=80,
        seed in any::<u64>(),
    ) {
        // One scratch shared by every call — stale state from a previous
        // (differently-sized) call must never leak into the next output.
        static SCRATCH: OnceLock<std::sync::Mutex<FrontendScratch>> = OnceLock::new();
        let scratch = SCRATCH.get_or_init(|| std::sync::Mutex::new(FrontendScratch::default()));
        let scratch = &mut *scratch.lock().expect("scratch lock");

        let x = signal(n, seed);
        let mut out = Vec::new();
        erode_into(&x, size, scratch, &mut out);
        prop_assert_eq!(&out, &erode(&x, size));
        dilate_into(&x, size, scratch, &mut out);
        prop_assert_eq!(&out, &dilate(&x, size));
        open_into(&x, size, scratch, &mut out);
        prop_assert_eq!(&out, &open(&x, size));
        close_into(&x, size, scratch, &mut out);
        prop_assert_eq!(&out, &close(&x, size));
    }

    // The full baseline filter: deque chain == naive chain == `_into` chain,
    // for arbitrary element geometries (both parities, qrs ≶ beat).
    #[test]
    fn baseline_filter_matches_naive_chain_for_all_element_geometries(
        n in 60usize..=400,
        qrs in 1usize..=40,
        beat in 1usize..=60,
        seed in any::<u64>(),
    ) {
        let filter = MorphologicalFilter {
            qrs_element: qrs,
            beat_element: beat,
        };
        let x = signal(n, seed);
        let naive = filter.apply_naive(&x).expect("long enough");
        let deque = filter.apply(&x).expect("long enough");
        prop_assert_eq!(&deque, &naive, "qrs={}, beat={}, n={}", qrs, beat, n);
        let mut scratch = FrontendScratch::default();
        let mut out = Vec::new();
        filter.apply_into(&x, &mut scratch, &mut out).expect("long enough");
        prop_assert_eq!(&out, &naive);
        filter.baseline_into(&x, &mut scratch, &mut out).expect("long enough");
        prop_assert_eq!(&out, &filter.baseline(&x).expect("long enough"));
    }

    // Wavelet: `transform_into` == `transform` bit for bit, across scale
    // counts, with one reused scratch and details buffer.
    #[test]
    fn wavelet_transform_into_matches_transform(
        n in 50usize..=400,
        scales in 1usize..=5,
        seed in any::<u64>(),
    ) {
        let w = DyadicWavelet::with_scales(scales);
        let x = signal(n.max(w.minimum_length()), seed);
        let reference = w.transform(&x).expect("long enough");
        let mut scratch = FrontendScratch::default();
        let mut details = Vec::new();
        w.transform_into(&x, &mut scratch, &mut details).expect("long enough");
        prop_assert_eq!(&details, &reference, "scales={}", scales);
    }

    // Streaming erosion/dilation == batch deque kernel == naive reference,
    // pinned for *both* window parities (the even-`size` normalisation is
    // shared, so all three paths see the same effective window).
    #[test]
    fn streaming_and_batch_morphology_share_even_size_semantics(
        n in 1usize..=300,
        size in 1usize..=60,
        seed in any::<u64>(),
    ) {
        let x = signal(n, seed);
        let batch_eroded = erode(&x, size);
        let batch_dilated = dilate(&x, size);
        let mut erosion = StreamingErosion::new(size);
        let mut dilation = StreamingDilation::new(size);
        prop_assert_eq!(erosion.delay(), effective_window(size) / 2);
        let mut eroded = Vec::new();
        let mut dilated = Vec::new();
        for &s in &x {
            eroded.extend(erosion.push(s));
            dilated.extend(dilation.push(s));
        }
        while let Some(v) = erosion.finish_one() {
            eroded.push(v);
        }
        while let Some(v) = dilation.finish_one() {
            dilated.push(v);
        }
        prop_assert_eq!(&eroded, &batch_eroded, "size={}, n={}", size, n);
        prop_assert_eq!(&dilated, &batch_dilated, "size={}, n={}", size, n);
    }
}

fn trained_system() -> &'static TrainedSystem {
    static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        TrainedSystem::train(&ExperimentConfig::quick()).expect("training succeeds")
    })
}

fn firmware() -> WbsnFirmware {
    let system = trained_system();
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions are consistent")
}

/// The acceptance bar of the PR: `process_record` (now running the deque
/// kernel + scratch reuse) is bit-identical to the *pre-change* pipeline,
/// reconstructed here from the naive kernels: naive filter → peak detection
/// → peak/annotation matching → windowing → per-beat classification.
#[test]
fn process_record_is_bit_identical_to_the_naive_front_end_reconstruction() {
    let fw = firmware();
    let mut gen = SyntheticEcg::with_seed(77);
    let rhythm = gen.rhythm(80, 0.12, 0.12);
    let record = gen.record(50, &rhythm, 2).expect("record generation");

    let mut frontend = FrontendScratch::default();
    let mut beat_scratch = BeatScratch::default();
    let report = fw
        .process_record_with(&record, &mut frontend, &mut beat_scratch)
        .expect("firmware run");
    assert!(report.beats.len() >= 60, "enough beats to compare");
    // The scratch entry point and the plain one agree exactly.
    assert_eq!(
        report,
        fw.process_record(&record).expect("firmware run"),
        "process_record and process_record_with must agree"
    );

    // Pre-change reconstruction: naive O(n·w) filter, allocating transform.
    let lead0 = record.lead(Lead(0)).expect("lead 0");
    let filter = MorphologicalFilter::for_sampling_rate(record.fs);
    let filtered = filter.apply_naive(lead0).expect("filter");
    let detector = PeakDetector::new(record.fs);
    let peaks = detector.detect(&filtered).expect("peaks");
    let tolerance = (0.06 * record.fs) as usize;
    let matching = match_peaks(&peaks, &record.annotations, tolerance);
    let beats = windows_at_peaks(&filtered, &peaks, fw.window, record.id);

    assert_eq!(report.beats.len(), beats.len(), "beat count must match");
    for ((peak_index, beat), outcome) in beats.iter().zip(&report.beats) {
        let predicted = fw.classify_window(&beat.samples).expect("classify");
        let truth = matching.matched_annotation[*peak_index].map(|a| record.annotations[a].class);
        assert_eq!(outcome.peak, beat.record_position, "peak position");
        assert_eq!(outcome.predicted, predicted, "per-beat classification");
        assert_eq!(outcome.truth, truth, "ground-truth label");
    }

    // The figures of merit derive from the per-beat outcomes; recompute them
    // from the reconstruction and require exact equality.
    let (mut discarded, mut normals, mut recognised, mut abnormals) = (0usize, 0, 0, 0);
    for ((peak_index, beat), _) in beats.iter().zip(&report.beats) {
        let predicted = fw.classify_window(&beat.samples).expect("classify");
        match matching.matched_annotation[*peak_index].map(|a| record.annotations[a].class) {
            Some(heartbeat_rp::hbc_ecg::beat::BeatClass::Normal) => {
                normals += 1;
                if predicted == heartbeat_rp::hbc_ecg::beat::BeatClass::Normal {
                    discarded += 1;
                }
            }
            Some(t) if t.is_abnormal() => {
                abnormals += 1;
                if predicted.is_abnormal() {
                    recognised += 1;
                }
            }
            _ => {}
        }
    }
    assert!(normals > 0 && abnormals > 0, "both classes represented");
    let ndr = discarded as f64 / normals as f64;
    let arr = recognised as f64 / abnormals as f64;
    assert_eq!(report.ndr(), ndr, "NDR must be bit-identical");
    assert_eq!(report.arr(), arr, "ARR must be bit-identical");
}

/// Scratch-carried state never leaks across records: interleaving records of
/// different lengths and sampling rates through one scratch pair reproduces
/// fresh-scratch runs exactly.
#[test]
fn scratch_reuse_across_heterogeneous_records_is_transparent() {
    let fw = firmware();
    let mut gen = SyntheticEcg::with_seed(123);
    let records = [
        gen.record(1, &gen.clone().rhythm(40, 0.1, 0.1), 1)
            .expect("record"),
        gen.record(2, &gen.clone().rhythm(25, 0.2, 0.05), 3)
            .expect("record"),
        gen.record(3, &gen.clone().rhythm(55, 0.05, 0.15), 2)
            .expect("record"),
    ];
    let mut frontend = FrontendScratch::default();
    let mut beat_scratch = BeatScratch::default();
    for _round in 0..2 {
        for record in &records {
            let reused = fw
                .process_record_with(record, &mut frontend, &mut beat_scratch)
                .expect("reused-scratch run");
            let fresh = fw.process_record(record).expect("fresh run");
            assert_eq!(reused, fresh, "record {}", record.id);
        }
    }
}
