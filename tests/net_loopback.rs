//! End-to-end guarantees of the TCP ingestion gateway (`hbc-net`):
//!
//! * **Parity across the network boundary** — per-beat outcomes received
//!   over a loopback socket are bit-identical to the batch
//!   `process_record` pipeline (and to the in-process `StreamHub`) for any
//!   packetization, with ≥ 3 sessions interleaved on one connection;
//! * **credit-based flow control** — a session throttled by a slow gateway
//!   stalls at its credit budget (gateway memory stays bounded) without
//!   corrupting concurrent sessions;
//! * **overflow policies** — a credit-violating sender is disconnected
//!   (default) or has its excess dropped, per configuration, leaving other
//!   sessions intact;
//! * **idle eviction** — sessions without traffic are drained, reported and
//!   freed.
//!
//! The records are quantised once through the wire ADC transfer function and
//! both sides (socket and reference) consume the identical dequantised
//! signal, so every comparison below is exact, not approximate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::hbc_ecg::beat::BeatWindow;
use heartbeat_rp::hbc_ecg::record::{EcgRecord, Lead};
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::firmware::BeatOutcome;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::hbc_embedded::WbsnFirmware;
use heartbeat_rp::hbc_net::proto::{dequantize_mv_into, quantize_mv_into, Frame, FrameDecoder};
use heartbeat_rp::hbc_net::{
    Gateway, GatewayConfig, GatewayStats, NetError, NodeClient, OverflowPolicy, PROTOCOL_VERSION,
};
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;
use heartbeat_rp::StreamHub;

mod support;

fn system() -> &'static TrainedSystem {
    static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
}

fn firmware() -> WbsnFirmware {
    let system = system();
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions")
}

/// A single-lead synthetic record whose lead has passed through the wire ADC
/// transfer function once, so socket replay and local reference consume the
/// identical signal.
fn wire_record(seed: u64, beats: usize) -> EcgRecord {
    let mut gen = SyntheticEcg::with_seed(seed);
    let rhythm = gen.rhythm(beats, 0.1, 0.1);
    let mut record = gen.record(seed as u32, &rhythm, 1).expect("record");
    let mut codes = Vec::new();
    let mut exact = Vec::new();
    quantize_mv_into(&record.leads[0], &mut codes);
    dequantize_mv_into(&codes, &mut exact);
    record.leads[0] = exact;
    record
}

/// SplitMix64 step driving the pseudo-random packetization.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `body` against a live gateway on a loopback port; flips the
/// shutdown flag (even on panic) and returns the gateway's final counters.
fn with_gateway<R>(
    fw: &WbsnFirmware,
    fs: f64,
    config: GatewayConfig,
    body: impl FnOnce(SocketAddr) -> R,
) -> (R, GatewayStats) {
    struct FlipOnDrop<'a>(&'a AtomicBool);
    impl Drop for FlipOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    let shutdown = AtomicBool::new(false);
    let gateway = Gateway::bind("127.0.0.1:0", fw, fs, config).expect("bind");
    let addr = gateway.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| gateway.run(&shutdown).expect("gateway runs"));
        let result = {
            let _flip = FlipOnDrop(&shutdown);
            body(addr)
        };
        let stats = handle.join().expect("gateway thread");
        (result, stats)
    })
}

/// The in-process reference: a `StreamHub` session calibrated on the first
/// `calib_len` samples, fed the whole lead, closed — exactly the lifecycle
/// the gateway drives remotely.
fn hub_reference(fw: &WbsnFirmware, record: &EcgRecord, calib_len: usize) -> Vec<BeatOutcome> {
    let mut hub = StreamHub::new(fw, record.fs);
    let lead = record.lead(Lead(0)).expect("lead 0");
    let thresholds = hub
        .calibrate_thresholds(&lead[..calib_len])
        .expect("calibrate");
    let id = hub.add_patient(record.id, thresholds);
    hub.ingest(&[(id, lead)]).expect("ingest");
    hub.close_session(id).expect("close").outcomes
}

/// Streams a lead into a session in pseudo-random ragged chunks.
fn stream_randomly(client: &mut NodeClient, session: u32, lead: &[f64], seed: u64) {
    let mut state = seed;
    let mut at = 0usize;
    while at < lead.len() {
        let n = 1 + (next(&mut state) % 1499) as usize;
        let end = (at + n).min(lead.len());
        client.send_mv(session, &lead[at..end]).expect("send");
        at = end;
    }
}

/// Socket-received outcomes must equal the reference stream bit for bit
/// (`truth` is `None` online; everything else must match exactly).
fn assert_outcomes_match(got: &[BeatOutcome], want: &[BeatOutcome], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: beat count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.peak, w.peak, "{label}: beat {i} peak");
        assert_eq!(g.predicted, w.predicted, "{label}: beat {i} class");
        assert_eq!(g.delineated, w.delineated, "{label}: beat {i} delineated");
        assert_eq!(
            g.fiducials_transmitted, w.fiducials_transmitted,
            "{label}: beat {i} fiducials"
        );
        assert_eq!(g.truth, None, "{label}: online beats carry no ground truth");
    }
}

#[test]
fn socket_outcomes_match_process_record_for_interleaved_randomized_sessions() {
    let fw = firmware();
    let records: Vec<EcgRecord> = (0..3)
        .map(|i| wire_record(7000 + i, 35 + 5 * i as usize))
        .collect();
    let fs = records[0].fs;

    // Reference: the batch firmware on the wire-exact records. Thresholds
    // calibrate over the whole record on both sides (calib_len = record
    // length), exactly like the in-process parity suite.
    let references: Vec<Vec<BeatOutcome>> = records
        .iter()
        .map(|r| fw.process_record(r).expect("batch").beats)
        .collect();

    let config = GatewayConfig {
        credit_budget: 1 << 20,
        max_ingest_per_poll: 2048,
        ..GatewayConfig::default()
    };
    let (summaries, stats) = with_gateway(&fw, fs, config, |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        let ids: Vec<u32> = records
            .iter()
            .map(|r| client.open_session(r.id, fs, r.len() as u32).expect("open"))
            .collect();

        // Interleave the three sessions on one connection, pseudo-random
        // chunk lengths, round-robin.
        let leads: Vec<&[f64]> = records
            .iter()
            .map(|r| r.lead(Lead(0)).expect("lead 0"))
            .collect();
        let mut at = vec![0usize; records.len()];
        let mut state = 0xC0FFEEu64;
        while at.iter().zip(&leads).any(|(&a, l)| a < l.len()) {
            for (i, lead) in leads.iter().enumerate() {
                if at[i] >= lead.len() {
                    continue;
                }
                let n = 1 + (next(&mut state) % 1499) as usize;
                let end = (at[i] + n).min(lead.len());
                client.send_mv(ids[i], &lead[at[i]..end]).expect("send");
                at[i] = end;
            }
        }
        ids.iter()
            .map(|&id| client.close_session(id).expect("close"))
            .collect::<Vec<_>>()
    });

    for ((summary, reference), record) in summaries.iter().zip(&references).zip(&records) {
        assert_outcomes_match(&summary.outcomes, reference, "vs process_record");
        assert_eq!(summary.report.beats as usize, reference.len());
        assert_eq!(summary.report.samples as usize, record.len());
        assert_eq!(
            summary.report.forwarded as usize,
            reference.iter().filter(|b| b.delineated).count()
        );
    }
    assert_eq!(stats.sessions_opened, 3);
    assert_eq!(stats.sessions_closed, 3);
    assert_eq!(stats.sessions_evicted, 0);
    assert_eq!(stats.denials, 0);
    assert_eq!(
        stats.samples_in as usize,
        records.iter().map(EcgRecord::len).sum::<usize>()
    );
}

#[test]
fn prefix_calibrated_streaming_matches_the_hub_for_any_packetization() {
    let fw = firmware();
    let record = wire_record(8100, 45);
    let fs = record.fs;
    let calib_len = (8.0 * fs) as usize;
    let reference = hub_reference(&fw, &record, calib_len);
    assert!(!reference.is_empty(), "reference session must emit beats");

    // Two different reactor batch sizes must yield the same outcome stream:
    // gateway-side chunking is as immaterial as wire-side packetization.
    for (max_ingest, seed) in [(509usize, 1u64), (4096, 2)] {
        let config = GatewayConfig {
            credit_budget: 1 << 16,
            max_ingest_per_poll: max_ingest,
            ..GatewayConfig::default()
        };
        let (summary, stats) = with_gateway(&fw, fs, config, |addr| {
            let mut client = NodeClient::connect(addr).expect("connect");
            let id = client
                .open_session(record.id, fs, calib_len as u32)
                .expect("open");
            stream_randomly(&mut client, id, record.lead(Lead(0)).expect("lead 0"), seed);
            client.close_session(id).expect("close")
        });
        assert_outcomes_match(&summary.outcomes, &reference, "vs StreamHub");
        assert_eq!(summary.report.samples as usize, record.len());
        assert_eq!(stats.denials, 0);
    }
}

#[test]
fn slow_consumption_stalls_senders_at_the_credit_budget_without_cross_talk() {
    let fw = firmware();
    let record_a = wire_record(9000, 40);
    let record_b = wire_record(9001, 40);
    let fs = record_a.fs;
    let budget = 4096usize;
    let calib_len = 2048usize;
    let ref_a = hub_reference(&fw, &record_a, calib_len);
    let ref_b = hub_reference(&fw, &record_b, calib_len);

    // A deliberately slow hub: at most 256 samples consumed per session per
    // sweep, so compliant senders repeatedly exhaust their credit and must
    // stall until grants return.
    let config = GatewayConfig {
        credit_budget: budget,
        max_ingest_per_poll: 256,
        ..GatewayConfig::default()
    };
    let ((summary_a, summary_b), stats) = with_gateway(&fw, fs, config, |addr| {
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let mut client = NodeClient::connect(addr).expect("connect B");
                let id = client
                    .open_session(record_b.id, fs, calib_len as u32)
                    .expect("open B");
                stream_randomly(&mut client, id, record_b.lead(Lead(0)).expect("lead 0"), 77);
                client.close_session(id).expect("close B")
            });
            let mut client = NodeClient::connect(addr).expect("connect A");
            let id = client
                .open_session(record_a.id, fs, calib_len as u32)
                .expect("open A");
            stream_randomly(&mut client, id, record_a.lead(Lead(0)).expect("lead 0"), 78);
            let summary_a = client.close_session(id).expect("close A");
            (summary_a, worker.join().expect("worker"))
        })
    });

    // Bounded memory: no session ever buffered more than its budget.
    assert!(
        stats.peak_buffered_samples <= budget,
        "peak buffered {} exceeds the credit budget {budget}",
        stats.peak_buffered_samples
    );
    assert_eq!(stats.samples_dropped, 0);
    assert_eq!(stats.denials, 0);
    // Neither stalled session corrupted the other.
    assert_outcomes_match(&summary_a.outcomes, &ref_a, "slow A");
    assert_outcomes_match(&summary_b.outcomes, &ref_b, "slow B");
}

/// Raw-socket helper: blocking-reads frames until `want` matches, dispatching
/// nothing. Returns the matched frame.
fn read_until(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    want: impl Fn(&Frame) -> bool,
) -> Frame {
    let mut buf = [0u8; 4096];
    loop {
        while let Some(frame) = decoder.next_frame().expect("valid") {
            if want(&frame) {
                return frame;
            }
        }
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "gateway hung up before the expected frame");
        decoder.feed(&buf[..n]);
    }
}

#[test]
fn credit_violators_are_disconnected_and_other_sessions_survive() {
    let fw = firmware();
    let record = wire_record(9100, 35);
    let fs = record.fs;
    let budget = 2048usize;
    let calib_len = 1024usize;
    let reference = hub_reference(&fw, &record, calib_len);

    let config = GatewayConfig {
        credit_budget: budget,
        overflow: OverflowPolicy::Disconnect,
        ..GatewayConfig::default()
    };
    let (summary, stats) = with_gateway(&fw, fs, config, |addr| {
        // The violator: a raw socket ignoring the credit protocol.
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        let mut decoder = FrameDecoder::new();
        raw.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )
        .expect("hello");
        raw.write_all(
            &Frame::OpenSession {
                patient_id: 99,
                fs_millihertz: (fs * 1000.0).round() as u32,
                calib_len: calib_len as u32,
            }
            .encode(),
        )
        .expect("open");
        let opened = read_until(&mut raw, &mut decoder, |f| {
            matches!(f, Frame::SessionOpened { .. })
        });
        let Frame::SessionOpened {
            session, credit, ..
        } = opened
        else {
            unreachable!()
        };
        assert_eq!(credit as usize, budget);
        // Twice the budget in one go: a protocol violation.
        raw.write_all(
            &Frame::Samples {
                session,
                seq: 0,
                samples: vec![0i16; 2 * budget],
            }
            .encode(),
        )
        .expect("flood");
        let deny = read_until(&mut raw, &mut decoder, |f| matches!(f, Frame::Deny { .. }));
        let Frame::Deny { message } = deny else {
            unreachable!()
        };
        assert!(
            message.contains("credit"),
            "deny should explain the violation: {message}"
        );
        // The gateway hangs up after the deny.
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).expect("drain to EOF");

        // A compliant session on a separate connection is unaffected.
        let mut client = NodeClient::connect(addr).expect("connect");
        let id = client
            .open_session(record.id, fs, calib_len as u32)
            .expect("open");
        stream_randomly(&mut client, id, record.lead(Lead(0)).expect("lead 0"), 5);
        client.close_session(id).expect("close")
    });

    assert_outcomes_match(&summary.outcomes, &reference, "survivor");
    assert_eq!(stats.denials, 1);
    assert_eq!(stats.sessions_closed, 1);
}

#[test]
fn drop_excess_policy_keeps_the_connection_and_counts_the_loss() {
    let fw = firmware();
    let fs = 360.0;
    let budget = 2048usize;
    let config = GatewayConfig {
        credit_budget: budget,
        overflow: OverflowPolicy::DropExcess,
        // Consume nothing while the flood arrives, so the excess is
        // genuinely over budget rather than already drained.
        max_ingest_per_poll: 1,
        ..GatewayConfig::default()
    };
    let (report, stats) = with_gateway(&fw, fs, config, |addr| {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        let mut decoder = FrameDecoder::new();
        raw.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )
        .expect("hello");
        raw.write_all(
            &Frame::OpenSession {
                patient_id: 5,
                fs_millihertz: 360_000,
                calib_len: 1024,
            }
            .encode(),
        )
        .expect("open");
        let Frame::SessionOpened { session, .. } = read_until(&mut raw, &mut decoder, |f| {
            matches!(f, Frame::SessionOpened { .. })
        }) else {
            unreachable!()
        };
        raw.write_all(
            &Frame::Samples {
                session,
                seq: 0,
                samples: vec![0i16; 2 * budget],
            }
            .encode(),
        )
        .expect("flood");
        raw.write_all(&Frame::CloseSession { session }.encode())
            .expect("close");
        let Frame::Report { report, .. } = read_until(&mut raw, &mut decoder, |f| {
            matches!(f, Frame::Report { .. })
        }) else {
            unreachable!()
        };
        report
    });
    // Everything beyond the budget was dropped, the rest was kept, and the
    // connection stayed up through the close handshake.
    assert_eq!(stats.samples_dropped as usize, budget);
    assert_eq!(report.samples as usize, budget);
    assert_eq!(stats.denials, 0);
    assert_eq!(stats.sessions_closed, 1);
}

#[test]
fn idle_sessions_are_evicted_drained_and_reported() {
    let fw = firmware();
    let record = wire_record(9200, 30);
    let fs = record.fs;
    let calib_len = 1024usize;
    let sent = 4000usize;
    let reference = {
        // What an evicted session should have classified: thresholds from
        // the calibration prefix, stream cut at the last received sample.
        let mut hub = StreamHub::new(&fw, fs);
        let lead = record.lead(Lead(0)).expect("lead 0");
        let thresholds = hub
            .calibrate_thresholds(&lead[..calib_len])
            .expect("calibrate");
        let id = hub.add_patient(record.id, thresholds);
        hub.ingest(&[(id, &lead[..sent])]).expect("ingest");
        hub.close_session(id).expect("close").outcomes
    };

    let config = GatewayConfig {
        idle_timeout: Duration::from_millis(250),
        ..GatewayConfig::default()
    };
    let (summary, stats) = with_gateway(&fw, fs, config, |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        let id = client
            .open_session(record.id, fs, calib_len as u32)
            .expect("open");
        client
            .send_mv(id, &record.lead(Lead(0)).expect("lead 0")[..sent])
            .expect("send");
        // Fall silent; the gateway must drain and report the session on its
        // own.
        let summary = client.wait_session_end(id).expect("eviction report");

        // The eviction race: a close (or stragglers) for the already-ended
        // session must be ignored, not treated as a violation that kills
        // the connection — prove it by speaking raw frames for the evicted
        // id and then opening a fresh session on the same connection.
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        let mut decoder = FrameDecoder::new();
        raw.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )
        .expect("hello");
        read_until(&mut raw, &mut decoder, |f| matches!(f, Frame::Hello { .. }));
        raw.write_all(&Frame::CloseSession { session: id }.encode())
            .expect("stray close");
        raw.write_all(
            &Frame::Samples {
                session: id,
                seq: 3,
                samples: vec![0i16; 8],
            }
            .encode(),
        )
        .expect("straggler samples");
        raw.write_all(
            &Frame::OpenSession {
                patient_id: 12,
                fs_millihertz: (fs * 1000.0).round() as u32,
                calib_len: calib_len as u32,
            }
            .encode(),
        )
        .expect("reopen");
        let opened = read_until(&mut raw, &mut decoder, |f| {
            matches!(f, Frame::SessionOpened { .. })
        });
        assert!(matches!(opened, Frame::SessionOpened { .. }));
        summary
    });
    assert_eq!(stats.sessions_evicted, 1);
    assert_eq!(stats.sessions_closed, 0);
    assert_eq!(stats.denials, 0, "racing an eviction is not a violation");
    assert_eq!(summary.report.samples as usize, sent);
    assert_outcomes_match(&summary.outcomes, &reference, "evicted session");
}

#[test]
fn sending_into_an_evicted_session_errors_instead_of_hanging() {
    let fw = firmware();
    let fs = 360.0;
    let config = GatewayConfig {
        credit_budget: 1024,
        idle_timeout: Duration::from_millis(200),
        ..GatewayConfig::default()
    };
    let (result, stats) = with_gateway(&fw, fs, config, |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        let id = client.open_session(3, fs, 720).expect("open");
        client.send_mv(id, &vec![0.0; 720]).expect("send");
        // Fall silent until the gateway evicts and its report arrives —
        // deadline-polled, not a fixed sleep, so the test is immune to
        // scheduler hiccups on loaded machines.
        support::wait_until(Duration::from_secs(10), || {
            client.pump().expect("pump");
            client.session_ended(id)
        });
        // Resuming with far more samples than the remaining credit must
        // surface the eviction (the gateway will never grant again), not
        // block forever waiting for credit.
        client.send_mv(id, &vec![0.0; 8192])
    });
    assert!(
        matches!(result, Err(NetError::State(_))),
        "expected a session-ended error, got {result:?}"
    );
    assert_eq!(stats.sessions_evicted, 1);
    assert_eq!(
        stats.denials, 0,
        "post-eviction stragglers are not violations"
    );
}

#[test]
fn handshake_and_open_are_validated() {
    let fw = firmware();
    let fs = 360.0;
    let ((), stats) = with_gateway(&fw, fs, GatewayConfig::default(), |addr| {
        // Wrong sampling rate is refused.
        let mut client = NodeClient::connect(addr).expect("connect");
        match client.open_session(1, 250.0, 1024) {
            Err(NetError::Denied(m)) => assert!(m.contains("sampling rate"), "{m}"),
            other => panic!("expected a denial, got {other:?}"),
        }
        // Skipping the handshake is refused.
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(&Frame::CloseSession { session: 0 }.encode())
            .expect("write");
        let mut decoder = FrameDecoder::new();
        let deny = read_until(&mut raw, &mut decoder, |f| matches!(f, Frame::Deny { .. }));
        assert!(matches!(deny, Frame::Deny { .. }));
        // Garbage bytes are refused without panicking the gateway.
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(&[0x55; 64]).expect("write");
        let mut junk = [0u8; 1024];
        // Read until EOF: the gateway denies and hangs up.
        loop {
            match raw.read(&mut junk) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
    });
    assert!(stats.denials >= 3);
    assert_eq!(stats.sessions_opened, 0);
}
