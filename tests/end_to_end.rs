//! Cross-crate integration tests: the complete Figure 2 / Figure 6 flow from
//! synthetic acquisition to embedded classification, gating and energy
//! accounting.

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::hbc_ecg::beat::BeatWindow;
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::hbc_embedded::WbsnFirmware;
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;

fn trained_system() -> TrainedSystem {
    TrainedSystem::train(&ExperimentConfig::quick().with_seed(4242)).expect("training succeeds")
}

#[test]
fn trained_system_meets_the_paper_operating_point_on_synthetic_data() {
    let system = trained_system();

    // The PC classifier, calibrated on training set 2, must carry its
    // operating point to the unseen test split: the paper reports >97 % of
    // abnormal beats recognised with ~7 % of normals misinterpreted.
    let pc = system.evaluate_pc_on_test().expect("pc evaluation");
    assert!(pc.arr() > 0.90, "PC test ARR {}", pc.arr());
    assert!(pc.ndr() > 0.70, "PC test NDR {}", pc.ndr());

    // The integer WBSN variant stays within a few points of the PC version
    // (Table II's second conclusion).
    let wbsn = system.evaluate_wbsn_on_test().expect("wbsn evaluation");
    assert!(wbsn.arr() > 0.85, "WBSN test ARR {}", wbsn.arr());
    assert!(
        (pc.ndr() - wbsn.ndr()).abs() < 0.25,
        "PC NDR {} vs WBSN NDR {}",
        pc.ndr(),
        wbsn.ndr()
    );
}

#[test]
fn firmware_built_from_the_trained_system_processes_a_full_recording() {
    let system = trained_system();
    let config = system.config;
    let firmware = WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
        config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions are consistent");

    let mut generator = SyntheticEcg::with_seed(99);
    let rhythm = generator.rhythm(120, 0.1, 0.08);
    let record = generator.record(1, &rhythm, 3).expect("record generation");
    let report = firmware.process_record(&record).expect("firmware run");

    // Most beats must be detected and classified.
    assert!(
        report.beats.len() as f64 > 0.85 * rhythm.len() as f64,
        "only {} of {} beats detected",
        report.beats.len(),
        rhythm.len()
    );
    // The gating invariant of Figure 6: delineation runs exactly for the
    // beats classified as abnormal.
    for beat in &report.beats {
        assert_eq!(beat.delineated, beat.predicted.is_abnormal());
    }
    // The whole point of the paper: the gated system is cheaper than the
    // always-on delineator, in duty cycle and in both energy terms.
    assert!(report.duty.subsystem3 < report.duty.subsystem2);
    assert!(report.energy.compute_reduction() > 0.2);
    assert!(report.energy.radio_reduction() > 0.3);
    assert!(report.energy.total_node_reduction() > 0.05);
}

#[test]
fn packed_projection_and_dense_projection_agree_inside_the_firmware_path() {
    let system = trained_system();
    // Pick a few test beats, push them through the WBSN pipeline and check
    // the packed integer projection matches the dense integer projection the
    // training used.
    let dense = &system.pc_downsampled.projection;
    let packed = &system.wbsn.projection;
    for beat in system.dataset.test.iter().take(20) {
        let downsampled = beat.downsample(system.config.downsample);
        let quantized = system.wbsn.adc.quantize_samples(&downsampled.samples);
        let a = dense.project_i32(&quantized).expect("dims");
        let b = packed.project_i32(&quantized).expect("dims");
        assert_eq!(a, b);
    }
}

#[test]
fn alpha_train_and_alpha_test_can_diverge_like_the_paper_describes() {
    // Section III-B: α_test is tunable independently of α_train. A larger
    // α_test must never decrease the ARR.
    let system = trained_system();
    let beats = &system.dataset.test;
    let lax = system
        .wbsn
        .evaluate(beats, AlphaQ16::from_f64(0.0).expect("valid"))
        .expect("evaluate");
    let strict = system
        .wbsn
        .evaluate(beats, AlphaQ16::from_f64(0.6).expect("valid"))
        .expect("evaluate");
    assert!(strict.arr() >= lax.arr() - 1e-12);
    assert!(strict.ndr() <= lax.ndr() + 1e-12);
}
