//! The gateway under deliberate overload: admission control, the global
//! memory budget, priority-aware shedding and the slow-peer defenses.
//!
//! The centerpiece is a soak: a storm of normal-rhythm blasters whose
//! combined credit is **twice** the global memory budget, streaming
//! alongside paced arrhythmia-heavy sessions, followed by a trickle peer
//! dripping one byte at a time through a [`ChaosProxy`]. The invariants:
//!
//! * **bounded memory** — the gateway's buffered sample bytes never exceed
//!   the configured budget plus one in-flight ingest chunk
//!   ([`GatewayStats::peak_buffered_bytes`] is the witness);
//! * **priority protection** — sessions whose recent outcomes contain
//!   abnormal beats are shed last: their delivered streams stay gap-free
//!   and bit-identical to the fault-free reference even while
//!   normal-rhythm traffic is being shed around them;
//! * **clean degradation** — blasters whose tails are shed keep making
//!   progress (shed samples return credit; a gap, never a deadlock), and
//!   trickle senders are reaped into the ordinary detach/resume path.
//!
//! Satellites: `Busy { retry_after_ms }` admission denials that converge
//! after the hinted pause, resume-while-at-capacity (parked sessions are
//! not double-counted), the pre-session handshake deadline, the oversized
//! calibration hard-deny, and the health/heartbeat snapshot.
//!
//! `HBC_SOAK_STORM` caps the blaster fleet for CI's fast profile (min 4 —
//! below that the storm no longer doubles the budget).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::hbc_ecg::beat::BeatWindow;
use heartbeat_rp::hbc_ecg::record::{EcgRecord, Lead};
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::firmware::BeatOutcome;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::hbc_embedded::WbsnFirmware;
use heartbeat_rp::hbc_net::proto::{dequantize_mv_into, quantize_mv_into, Frame, FrameDecoder};
use heartbeat_rp::hbc_net::{
    ChaosConfig, ChaosDirection, ChaosProxy, FaultKind, Gateway, GatewayConfig, GatewayStats,
    NetError, NodeClient, SessionSummary, PROTOCOL_VERSION,
};
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;

mod support;

const SAMPLE_BYTES: usize = std::mem::size_of::<f64>();

fn system() -> &'static TrainedSystem {
    static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
}

fn firmware() -> WbsnFirmware {
    let system = system();
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions")
}

/// A single-lead synthetic record with the given abnormal-beat mix, passed
/// once through the wire ADC transfer function so socket replay and local
/// reference consume identical signals.
fn wire_record(seed: u64, beats: usize, p_v: f64, p_l: f64) -> EcgRecord {
    let mut gen = SyntheticEcg::with_seed(seed);
    let rhythm = gen.rhythm(beats, p_v, p_l);
    let mut record = gen.record(seed as u32, &rhythm, 1).expect("record");
    let mut codes = Vec::new();
    let mut exact = Vec::new();
    quantize_mv_into(&record.leads[0], &mut codes);
    dequantize_mv_into(&codes, &mut exact);
    record.leads[0] = exact;
    record
}

/// The fault-free [`StreamHub`] reference for a prefix-calibrated session.
fn hub_reference(fw: &WbsnFirmware, record: &EcgRecord, calib_len: usize) -> Vec<BeatOutcome> {
    let mut hub = heartbeat_rp::StreamHub::new(fw, record.fs);
    let lead = record.lead(Lead(0)).expect("lead 0");
    let thresholds = hub
        .calibrate_thresholds(&lead[..calib_len])
        .expect("calibrate");
    let id = hub.add_patient(record.id, thresholds);
    hub.ingest(&[(id, lead)]).expect("ingest");
    hub.close_session(id).expect("close").outcomes
}

/// `got` must be a bit-identical prefix of `want`.
fn assert_prefix(got: &[BeatOutcome], want: &[BeatOutcome], label: &str) {
    assert!(
        got.len() <= want.len(),
        "{label}: {} outcomes delivered, reference has only {}",
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.peak, w.peak, "{label}: beat {i} peak");
        assert_eq!(g.predicted, w.predicted, "{label}: beat {i} class");
        assert_eq!(g.delineated, w.delineated, "{label}: beat {i} delineated");
        assert_eq!(
            g.fiducials_transmitted, w.fiducials_transmitted,
            "{label}: beat {i} fiducials"
        );
    }
}

fn assert_full_match(got: &[BeatOutcome], want: &[BeatOutcome], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: beat count");
    assert_prefix(got, want, label);
}

/// Reconnects through transient failures with an overall deadline.
fn recover(client: &mut NodeClient, addr: SocketAddr) {
    let start = Instant::now();
    loop {
        match client.reconnect_with_backoff(addr, 4, Duration::from_millis(5)) {
            Ok(()) => return,
            Err(e) => {
                assert!(
                    start.elapsed() < Duration::from_secs(30),
                    "could not resume within the deadline: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Connects and opens a session, honoring `Busy { retry_after_ms }` by
/// pausing for exactly the hinted interval before retrying — the compliant
/// client loop the admission controller is designed for.
fn open_with_retry(addr: SocketAddr, patient: u32, fs: f64, calib: u32) -> (NodeClient, u32) {
    let start = Instant::now();
    loop {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "admission never granted for patient {patient}"
        );
        let mut client = match NodeClient::connect(addr) {
            Ok(c) => c,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        client
            .set_io_timeout(Some(Duration::from_secs(2)))
            .expect("io timeout");
        match client.open_session(patient, fs, calib) {
            Ok(id) => return (client, id),
            Err(NetError::Busy(after)) => std::thread::sleep(after),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Pumps until every sent chunk has been acked by the gateway.
fn pump_until_drained(client: &mut NodeClient, id: u32, addr: SocketAddr, label: &str) {
    let start = Instant::now();
    loop {
        match client.pump() {
            Ok(()) if client.replay_depth(id) == 0 => return,
            Ok(()) => {}
            Err(_) => recover(client, addr),
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "{label}: gateway never acked the in-flight chunks"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Pumps until at least `floor` credit is available again. Acks track the
/// gateway's *receive* position, so `replay_depth` going to zero only
/// proves delivery; credit returns with *consumption*, so this is the loop
/// that actually bounds how much of a session sits buffered gateway-side.
fn pump_until_credit(
    client: &mut NodeClient,
    id: u32,
    addr: SocketAddr,
    floor: usize,
    label: &str,
) {
    let start = Instant::now();
    loop {
        match client.pump() {
            Ok(()) if client.credit(id) >= floor => return,
            Ok(()) => {}
            Err(_) => recover(client, addr),
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "{label}: credit never returned"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn close_with_retry(
    client: &mut NodeClient,
    id: u32,
    addr: SocketAddr,
    label: &str,
) -> SessionSummary {
    let start = Instant::now();
    loop {
        match client.close_session(id) {
            Ok(summary) => return summary,
            Err(e) => {
                assert!(
                    start.elapsed() < Duration::from_secs(30),
                    "{label}: close did not converge: {e}"
                );
                recover(client, addr);
            }
        }
    }
}

/// Runs `body` against a live gateway on a loopback port; flips the
/// shutdown flag (even on panic) and returns the final counters.
fn with_gateway<R>(
    fw: &WbsnFirmware,
    fs: f64,
    config: GatewayConfig,
    body: impl FnOnce(SocketAddr) -> R,
) -> (R, GatewayStats) {
    struct FlipOnDrop<'a>(&'a AtomicBool);
    impl Drop for FlipOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    let shutdown = AtomicBool::new(false);
    let gateway = Gateway::bind("127.0.0.1:0", fw, fs, config).expect("bind");
    let addr = gateway.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| gateway.run(&shutdown).expect("gateway runs"));
        let result = {
            let _flip = FlipOnDrop(&shutdown);
            body(addr)
        };
        let stats = handle.join().expect("gateway thread");
        (result, stats)
    })
}

/// Blaster fleet size: `HBC_SOAK_STORM` caps it in CI; the floor of 4
/// keeps the storm's combined credit at twice the budget it implies.
fn storm_size() -> usize {
    std::env::var("HBC_SOAK_STORM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
        .max(4)
}

/// The acceptance soak. Three-phase, one gateway:
///
/// 1. two arrhythmia-heavy sessions open first and stream paced until the
///    gateway has seen at least one abnormal outcome from each (their
///    priority is now `Critical`);
/// 2. the storm: `storm_size()` normal-rhythm blasters, each entitled to a
///    full credit budget, twice the global memory budget in aggregate —
///    shedding must hold the ledger at the budget while the arrhythmia
///    streams stay bit-exact;
/// 3. a trickle peer drips one byte at a time through a chaos proxy until
///    the minimum-progress check reaps it, then resumes directly and
///    converges to the full reference.
#[test]
fn overload_soak_bounds_memory_and_protects_abnormal_streams() {
    const CREDIT: usize = 4096;
    const ARR_SENDERS: usize = 2;
    const ARR_CALIB: usize = 2048;
    const MAX_INGEST: usize = 256;

    let blasters = storm_size();
    let budget_samples = blasters * CREDIT / 2;
    let budget_bytes = budget_samples * SAMPLE_BYTES;

    let fw = firmware();
    let arr_records: Vec<EcgRecord> = (0..ARR_SENDERS)
        .map(|i| wire_record(9100 + i as u64, 40, 0.5, 0.1))
        .collect();
    let arr_refs: Vec<Vec<BeatOutcome>> = arr_records
        .iter()
        .map(|r| hub_reference(&fw, r, ARR_CALIB))
        .collect();
    let trickle_record = wire_record(9300, 35, 0.1, 0.1);
    let trickle_ref = hub_reference(&fw, &trickle_record, ARR_CALIB);
    let fs = trickle_record.fs;
    for r in &arr_records {
        assert_eq!(r.fs, fs, "all records share the gateway sampling rate");
    }

    let config = GatewayConfig {
        credit_budget: CREDIT,
        max_ingest_per_poll: MAX_INGEST,
        global_memory_budget: budget_bytes,
        busy_retry_after: Duration::from_millis(50),
        // Fast enough to reap the trickle peer mid-test; generous enough
        // that a paced sender waiting on outcomes is never mistaken for
        // one (it has no partial frame pending while it waits).
        progress_interval: Duration::from_millis(500),
        min_progress_bytes: 128,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::bind("127.0.0.1:0", &fw, fs, config).expect("bind gateway");
    let addr = gateway.local_addr().expect("gateway addr");
    let chaos = ChaosConfig {
        seed: support::chaos_seed(),
        kind: FaultKind::Trickle,
        first_at: 8 * 1024,
        repeat_every: 0,
        max_faults: 1,
        direction: ChaosDirection::Up,
        span: 0,
        stall: Duration::from_millis(100),
    };
    let proxy = ChaosProxy::bind(addr, chaos).expect("bind proxy");
    let px_addr = proxy.local_addr().expect("proxy addr");

    struct FlipOnDrop<'a>(&'a AtomicBool, &'a AtomicBool);
    impl Drop for FlipOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
            self.1.store(true, Ordering::Release);
        }
    }
    let stop_gw = AtomicBool::new(false);
    let stop_px = AtomicBool::new(false);
    // Blasters hold fire until every arrhythmia session has an abnormal
    // outcome on record — priority must be established before pressure.
    let armed = AtomicUsize::new(0);

    let (gw_stats, px_stats) = std::thread::scope(|scope| {
        let gw = scope.spawn(|| gateway.run(&stop_gw).expect("gateway runs"));
        let px = scope.spawn(|| proxy.run(&stop_px).expect("proxy runs"));
        {
            let _flip = FlipOnDrop(&stop_gw, &stop_px);

            let arr_handles: Vec<_> = arr_records
                .iter()
                .enumerate()
                .map(|(i, record)| {
                    let armed = &armed;
                    scope.spawn(move || {
                        let label = format!("arr {i}");
                        let lead = record.lead(Lead(0)).expect("lead 0");
                        let (mut client, id) =
                            open_with_retry(addr, record.id, record.fs, ARR_CALIB as u32);
                        let mut sent = 0usize;
                        let mut is_armed = false;
                        for chunk in lead.chunks(1024) {
                            if client.send_mv(id, chunk).is_err() {
                                recover(&mut client, addr);
                            }
                            sent += chunk.len();
                            if sent <= ARR_CALIB {
                                continue;
                            }
                            // Credit-paced: at most one chunk of this
                            // session sits unconsumed gateway-side, so a
                            // modest buffer rides through the storm — the
                            // shed passes must never need to reach it.
                            pump_until_credit(&mut client, id, addr, CREDIT - chunk.len(), &label);
                            if !is_armed
                                && client
                                    .outcomes(id)
                                    .iter()
                                    .any(|o| o.predicted.is_abnormal())
                            {
                                is_armed = true;
                                armed.fetch_add(1, Ordering::Release);
                            }
                        }
                        if !is_armed {
                            armed.fetch_add(1, Ordering::Release);
                        }
                        close_with_retry(&mut client, id, addr, &label)
                    })
                })
                .collect();

            let blaster_handles: Vec<_> = (0..blasters)
                .map(|i| {
                    let armed = &armed;
                    scope.spawn(move || {
                        let record = wire_record(9500 + i as u64, 20, 0.0, 0.0);
                        let lead = record.lead(Lead(0)).expect("lead 0");
                        let hold = Instant::now();
                        while armed.load(Ordering::Acquire) < ARR_SENDERS {
                            assert!(
                                hold.elapsed() < Duration::from_secs(60),
                                "arrhythmia sessions never armed"
                            );
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        let (mut client, id) = open_with_retry(addr, record.id, record.fs, 512);
                        for chunk in lead.chunks(1024) {
                            // Unpaced: ride the credit budget. Shed tails
                            // return credit, so an overloaded gateway
                            // costs the blaster a gap, not a deadlock.
                            if client.send_mv(id, chunk).is_err() {
                                recover(&mut client, addr);
                            }
                        }
                        close_with_retry(&mut client, id, addr, &format!("blaster {i}"))
                    })
                })
                .collect();

            for (i, h) in blaster_handles.into_iter().enumerate() {
                let summary = h.join().expect("blaster thread");
                assert!(
                    summary.report.samples > 0,
                    "blaster {i} made no progress at all"
                );
            }
            for (i, h) in arr_handles.into_iter().enumerate() {
                let summary = h.join().expect("arr thread");
                let label = format!("arr {i}");
                assert_full_match(&summary.outcomes, &arr_refs[i], &label);
                assert_eq!(
                    summary.report.samples as usize,
                    arr_records[i].len(),
                    "{label}: every sample counted exactly once under overload"
                );
            }

            // Phase 3: the trickle peer. The proxy passes the handshake
            // and the first 8 KiB through, then drips one byte per 100 ms;
            // the minimum-progress check reaps the connection and the
            // client resumes directly, converging to the full stream.
            let lead = trickle_record.lead(Lead(0)).expect("lead 0");
            let (mut client, id) = open_with_retry(
                px_addr,
                trickle_record.id,
                trickle_record.fs,
                ARR_CALIB as u32,
            );
            client
                .set_io_timeout(Some(Duration::from_millis(750)))
                .expect("io timeout");
            let mut sent = 0usize;
            let mut reaped = false;
            for chunk in lead.chunks(1024) {
                if client.send_mv(id, chunk).is_err() {
                    if !reaped {
                        // First failure: the proxy has stopped draining.
                        // Give the progress check time to reap the dripping
                        // connection before resuming around it.
                        reaped = true;
                        std::thread::sleep(Duration::from_millis(1500));
                    }
                    recover(&mut client, addr);
                }
                sent += chunk.len();
                if sent > ARR_CALIB {
                    pump_until_drained(&mut client, id, addr, "trickle");
                }
                assert_prefix(client.outcomes(id), &trickle_ref, "trickle");
            }
            let summary = close_with_retry(&mut client, id, addr, "trickle");
            assert_full_match(&summary.outcomes, &trickle_ref, "trickle");
            assert_eq!(summary.report.samples as usize, trickle_record.len());
        }
        (
            gw.join().expect("gateway thread"),
            px.join().expect("proxy thread"),
        )
    });

    // The storm's aggregate credit was twice the budget, so shedding had
    // to fire — and the global ledger never crossed the budget by more
    // than the one chunk the ingest sweep holds in flight.
    assert!(gw_stats.sheds >= 1, "the storm never forced a shed");
    assert!(gw_stats.samples_shed >= 1);
    assert!(
        gw_stats.peak_buffered_bytes <= budget_bytes + MAX_INGEST * SAMPLE_BYTES,
        "peak buffered bytes {} exceed budget {} plus one in-flight chunk",
        gw_stats.peak_buffered_bytes,
        budget_bytes
    );
    assert!(
        gw_stats.progress_reaps >= 1,
        "the trickle peer was never reaped"
    );
    assert!(gw_stats.sessions_resumed >= 1, "the trickle peer resumed");
    assert_eq!(px_stats.trickles, 1, "the scheduled trickle armed once");
    assert_eq!(gw_stats.denials, 0, "no peer misbehaved");
    assert_eq!(gw_stats.internal_skips, 0);
}

#[test]
fn busy_denial_converges_after_the_hinted_pause() {
    let fw = firmware();
    let record = wire_record(9700, 25, 0.1, 0.1);
    let fs = record.fs;
    let reference = fw.process_record(&record).expect("reference").beats;
    let retry_after = Duration::from_millis(100);
    let config = GatewayConfig {
        max_sessions: 1,
        busy_retry_after: retry_after,
        ..GatewayConfig::default()
    };
    let ((), stats) = with_gateway(&fw, fs, config, |addr| {
        let mut first = NodeClient::connect(addr).expect("connect");
        let a = first.open_session(1, fs, 512).expect("open");

        // The gateway is at its session cap: a second open is answered
        // with Busy carrying the configured retry hint, not a Deny.
        let mut probe = NodeClient::connect(addr).expect("connect probe");
        let after = match probe.open_session(2, fs, 512) {
            Err(NetError::Busy(after)) => after,
            other => panic!("expected Busy at the session cap, got {other:?}"),
        };
        assert_eq!(after, retry_after, "the wire hint echoes the config");

        first.send_mv(a, &vec![0.0; 1024]).expect("send");
        first.close_session(a).expect("close first");

        // A compliant client waits out the hint, then converges to the
        // exact fault-free stream — denial cost it latency, nothing else.
        std::thread::sleep(after);
        let (mut client, id) = open_with_retry(addr, record.id, fs, record.len() as u32);
        let lead = record.lead(Lead(0)).expect("lead 0");
        for chunk in lead.chunks(1024) {
            if client.send_mv(id, chunk).is_err() {
                recover(&mut client, addr);
            }
        }
        let summary = close_with_retry(&mut client, id, addr, "busy retry");
        assert_full_match(&summary.outcomes, &reference, "busy retry");
        assert_eq!(summary.report.samples as usize, record.len());
    });
    assert!(stats.busy_denials >= 1, "the cap produced a Busy");
    assert_eq!(stats.denials, 0, "Busy is not a Deny");
    assert_eq!(stats.sessions_opened, 2);
}

#[test]
fn detached_session_resumes_at_capacity_without_double_counting() {
    // The resume-under-overload satellite: with the gateway at
    // `max_sessions`, a parked session still counts toward the cap (so a
    // newcomer is denied), its own resume is admission-exempt, and once
    // it closes the slot frees — i.e. parked state is counted exactly
    // once through detach → resume → close.
    let fw = firmware();
    let record = wire_record(9800, 30, 0.1, 0.1);
    let fs = record.fs;
    let calib_len = 2048usize;
    let reference = hub_reference(&fw, &record, calib_len);
    let config = GatewayConfig {
        max_sessions: 1,
        busy_retry_after: Duration::from_millis(25),
        ..GatewayConfig::default()
    };

    let expect_busy = |addr: SocketAddr, patient: u32| {
        let mut probe = NodeClient::connect(addr).expect("connect probe");
        match probe.open_session(patient, fs, 512) {
            Err(NetError::Busy(_)) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
    };

    let (summary, stats) = with_gateway(&fw, fs, config, |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        let id = client
            .open_session(record.id, fs, calib_len as u32)
            .expect("open");
        let lead = record.lead(Lead(0)).expect("lead 0");
        let half = lead.len() / 2;
        client.send_mv(id, &lead[..half]).expect("first half");
        expect_busy(addr, 900); // live session holds the only slot

        client.sever();
        std::thread::sleep(Duration::from_millis(300)); // gateway parks it
        expect_busy(addr, 901); // parked session still holds the slot

        recover(&mut client, addr); // resume is admission-exempt
        let _ = client.send_mv(id, &lead[half..]);
        expect_busy(addr, 902); // resumed: exactly one slot used, not two
        let summary = close_with_retry(&mut client, id, addr, "resume at capacity");

        // The close freed the only slot; a newcomer is now admitted.
        let (mut late, late_id) = open_with_retry(addr, 903, fs, 512);
        late.send_mv(late_id, &vec![0.0; 1024]).expect("send");
        late.close_session(late_id).expect("close late");
        summary
    });

    assert_full_match(&summary.outcomes, &reference, "resume at capacity");
    assert_eq!(
        summary.report.samples as usize,
        record.len(),
        "no sample lost or double-counted through the parked resume"
    );
    assert!(stats.busy_denials >= 3);
    assert_eq!(stats.sessions_detached, 1);
    assert_eq!(stats.sessions_resumed, 1);
    assert_eq!(stats.sessions_opened, 2, "probe denials never opened");
    assert_eq!(stats.denials, 0);
}

#[test]
fn handshake_deadline_reaps_a_silent_connection() {
    let fw = firmware();
    let config = GatewayConfig {
        handshake_timeout: Duration::from_millis(100),
        ..GatewayConfig::default()
    };
    let ((), stats) = with_gateway(&fw, 360.0, config, |addr| {
        // Says hello, then never opens a session: reaped at the deadline.
        let mut idler = TcpStream::connect(addr).expect("connect");
        idler
            .write_all(
                &Frame::Hello {
                    version: PROTOCOL_VERSION,
                }
                .encode(),
            )
            .expect("hello");
        idler
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let start = Instant::now();
        let mut buf = [0u8; 1024];
        loop {
            match idler.read(&mut buf) {
                Ok(0) => break, // the gateway hung up
                Ok(_) => {}     // its Hello reply
                Err(e) => panic!("expected a clean hang-up, got {e}"),
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "silent connection was never reaped"
            );
        }
        assert!(
            start.elapsed() >= Duration::from_millis(50),
            "reaped before the deadline could plausibly expire"
        );
    });
    assert!(stats.handshake_reaps >= 1);
    assert_eq!(stats.denials, 0, "a slow handshake is not a violation");
}

#[test]
fn oversized_calibration_is_denied_outright() {
    // A calibration request that alone exceeds the global budget can never
    // be admitted: that is a hard Deny (the client must not retry), not a
    // Busy (which promises the request is admissible later).
    let fw = firmware();
    let config = GatewayConfig {
        global_memory_budget: 1024 * SAMPLE_BYTES,
        ..GatewayConfig::default()
    };
    let ((), stats) = with_gateway(&fw, 360.0, config, |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        match client.open_session(50, 360.0, 2048) {
            Err(NetError::Denied(message)) => assert!(
                message.contains("memory budget"),
                "deny should name the cause: {message}"
            ),
            other => panic!("expected a hard Deny, got {other:?}"),
        }

        // The same request scaled inside the budget is admitted.
        let mut client = NodeClient::connect(addr).expect("reconnect");
        let id = client.open_session(51, 360.0, 512).expect("open");
        client.send_mv(id, &vec![0.0; 768]).expect("send");
        client.close_session(id).expect("close");
    });
    assert!(stats.denials >= 1, "the oversized request was denied");
    assert_eq!(stats.busy_denials, 0, "never invited to retry");
    assert_eq!(stats.sessions_opened, 1);
}

#[test]
fn health_snapshot_and_heartbeat_track_the_reactor() {
    let fw = firmware();
    let config = GatewayConfig {
        global_memory_budget: 1 << 20,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::bind("127.0.0.1:0", &fw, 360.0, config).expect("bind");
    let addr = gateway.local_addr().expect("addr");
    let heartbeat = gateway.heartbeat();

    assert_eq!(heartbeat.polls(), 0);
    gateway.poll().expect("poll");
    assert_eq!(heartbeat.polls(), 1);
    assert!(
        !heartbeat.stalled(Duration::from_secs(5)),
        "a fresh beat is not a stall"
    );
    std::thread::sleep(Duration::from_millis(60));
    assert!(
        heartbeat.stalled(Duration::from_millis(10)),
        "a reactor that has not beaten past the tolerance is stalled"
    );
    gateway.poll().expect("poll");
    assert!(!heartbeat.stalled(Duration::from_millis(50)));

    let idle = gateway.health();
    assert_eq!(idle.live_sessions, 0);
    assert_eq!(idle.parked_sessions, 0);
    assert_eq!(idle.connections, 0);
    assert_eq!(idle.memory_budget, 1 << 20);
    assert_eq!(idle.buffered_bytes, 0);
    assert!(idle.budget_utilization() >= 0.0 && idle.budget_utilization() <= 1.0);

    // Open a session over a raw socket, driving the reactor by hand.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_millis(20)))
        .expect("timeout");
    raw.write_all(
        &Frame::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .expect("hello");
    raw.write_all(
        &Frame::OpenSession {
            patient_id: 60,
            fs_millihertz: 360_000,
            calib_len: 512,
        }
        .encode(),
    )
    .expect("open");
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 4096];
    let start = Instant::now();
    'opened: loop {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "session never opened"
        );
        gateway.poll().expect("poll");
        match raw.read(&mut buf) {
            Ok(0) => panic!("gateway hung up during the handshake"),
            Ok(n) => {
                decoder.feed(&buf[..n]);
                while let Some(frame) = decoder.next_frame().expect("valid") {
                    if matches!(frame, Frame::SessionOpened { .. }) {
                        break 'opened;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }

    let busy = gateway.health();
    assert_eq!(busy.live_sessions, 1);
    assert_eq!(busy.connections, 1);
    assert!(busy.memory_used <= busy.memory_budget);
    assert!(heartbeat.polls() > 1);
}

#[test]
fn watchdog_counts_over_budget_sweeps() {
    // A zero budget makes every sweep an overrun: the run loop's watchdog
    // must notice and the high-water mark must be recorded.
    let fw = firmware();
    let config = GatewayConfig {
        watchdog_budget: Duration::ZERO,
        ..GatewayConfig::default()
    };
    let ((), stats) = with_gateway(&fw, 360.0, config, |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        let id = client.open_session(70, 360.0, 512).expect("open");
        client.send_mv(id, &vec![0.0; 1024]).expect("send");
        client.close_session(id).expect("close");
    });
    assert!(
        stats.watchdog_stalls >= 1,
        "every sweep overran a zero budget"
    );
}
