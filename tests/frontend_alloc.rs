//! Allocation gate for the scratch-reused conditioning front-end: once the
//! [`FrontendScratch`] buffers have grown to size, repeated runs of the full
//! conditioning chain (morphological baseline removal + à-trous wavelet +
//! peak-detection transform) must perform **zero** heap allocations for the
//! filter/wavelet stages.
//!
//! This lives in its own test binary on purpose: the gate counts allocations
//! through a global counting allocator, and any concurrently running test in
//! the same process would pollute the counter. Keep this file to a single
//! `#[test]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use heartbeat_rp::hbc_dsp::filter::MorphologicalFilter;
use heartbeat_rp::hbc_dsp::wavelet::DyadicWavelet;
use heartbeat_rp::hbc_dsp::FrontendScratch;

/// Counts every allocation (alloc + realloc) made through the global
/// allocator; deallocations are not counted — the gate is about acquiring
/// memory in steady state, not about balance.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn conditioning_chain_allocates_nothing_in_steady_state() {
    let fs = 250.0;
    let filter = MorphologicalFilter::for_sampling_rate(fs);
    let wavelet = DyadicWavelet::new();
    let n = (60.0 * fs) as usize;
    let signal: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            0.4 * (2.0 * std::f64::consts::PI * 0.25 * t).sin()
                + if i % (fs as usize) < 8 { 1.0 } else { 0.0 }
        })
        .collect();

    let mut scratch = FrontendScratch::default();
    let mut filtered = Vec::new();
    let mut details = Vec::new();
    let chain =
        |scratch: &mut FrontendScratch, filtered: &mut Vec<f64>, details: &mut Vec<Vec<f64>>| {
            filter
                .apply_into(&signal, scratch, filtered)
                .expect("long enough");
            wavelet
                .transform_into(filtered, scratch, details)
                .expect("long enough");
        };

    // Warm-up: every buffer grows to its steady-state size.
    chain(&mut scratch, &mut filtered, &mut details);
    chain(&mut scratch, &mut filtered, &mut details);

    let before = allocations();
    for _ in 0..16 {
        chain(&mut scratch, &mut filtered, &mut details);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "scratch-reused conditioning chain allocated {} times in steady state",
        after - before
    );

    // Sanity: the outputs are still the real thing, not stale buffers.
    assert_eq!(filtered.len(), signal.len());
    assert_eq!(details.len(), wavelet.scales);
    assert!(details.iter().all(|d| d.len() == signal.len()));
    assert_eq!(filtered, filter.apply(&signal).expect("long enough"));
}
