//! Integration smoke tests: every experiment of the harness runs at quick
//! scale and produces a report whose shape matches the paper's conclusions.
//!
//! (Detailed per-experiment assertions live in the unit tests of
//! `hbc-core::experiments`; these tests exercise the public, cross-crate
//! entry points exactly as the examples and benches do.)

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::experiments::{
    energy_report, figure4_curves, figure5_pareto, table1_composition, table2_ndr, table3_runtime,
    MfFamily,
};
use heartbeat_rp::hbc_ecg::Split;

fn config() -> ExperimentConfig {
    ExperimentConfig::quick()
}

#[test]
fn table1_reports_every_split_of_the_configured_dataset() {
    let report = table1_composition(&config()).expect("table 1");
    let spec = config().dataset;
    assert_eq!(report.split(Split::Training1), spec.training1.counts);
    assert_eq!(report.split(Split::Training2), spec.training2.counts);
    assert_eq!(report.split(Split::Test), spec.test.counts);
    assert!(report.to_string().contains("Table I"));
}

#[test]
fn table2_rows_reproduce_the_papers_two_conclusions() {
    let report = table2_ndr(&config()).expect("table 2");
    // Conclusion 1: a small number of coefficients is already enough — the
    // k = 8 column must not be dramatically worse than the k = 32 one.
    let k8 = report.column(8).expect("k = 8 swept");
    let k32 = report.column(32).expect("k = 32 swept");
    assert!(k8.ndr_pc > k32.ndr_pc - 0.15);
    // Conclusion 2: PC, WBSN and PCA stay within a few percentage points.
    assert!(report.max_pc_wbsn_gap() < 0.2);
    for column in &report.columns {
        assert!((column.ndr_pc - column.pca_pc).abs() < 0.2);
    }
}

#[test]
fn figure4_quantifies_the_linearisation_quality() {
    let curves = figure4_curves(64).expect("figure 4");
    assert!(curves.linearized_max_error < curves.triangular_max_error + 1e-12);
    assert!(curves.linearized_mean_error < 0.06);
}

#[test]
fn figure5_front_ordering_matches_the_paper() {
    let report = figure5_pareto(&config()).expect("figure 5");
    // At a high recognition-rate requirement the linearised classifier stays
    // close to the Gaussian one while the triangular variant does not beat it.
    let g = report.ndr_at_arr(MfFamily::Gaussian, 0.95).unwrap_or(0.0);
    let l = report.ndr_at_arr(MfFamily::Linearized, 0.95).unwrap_or(0.0);
    let t = report.ndr_at_arr(MfFamily::Triangular, 0.95).unwrap_or(0.0);
    assert!(g > 0.5);
    assert!(l > g - 0.25);
    assert!(t <= l + 0.05);
}

#[test]
fn table3_and_energy_reports_are_mutually_consistent() {
    let table3 = table3_runtime(&config()).expect("table 3");
    let energy = energy_report(&config()).expect("energy");
    // Both experiments train the same system from the same seed, so the
    // forwarded fractions they measure must agree.
    assert!(
        (table3.forwarded_fraction - energy.forwarded_fraction).abs() < 0.05,
        "table 3 forwards {:.3}, energy forwards {:.3}",
        table3.forwarded_fraction,
        energy.forwarded_fraction
    );
    // The computation saving reported by the energy experiment equals the
    // duty-cycle reduction of Table III by construction.
    assert!((table3.runtime_reduction - energy.compute_reduction).abs() < 0.02);
    // And the savings are substantial, as the paper claims.
    assert!(energy.compute_reduction > 0.35);
    assert!(energy.radio_reduction > 0.4);
    assert!(energy.total_reduction > 0.1);
}
