//! Parity suite for the online ingestion subsystem: the streaming firmware
//! fed one sample at a time (or any other chunking) must reproduce the batch
//! `WbsnFirmware::process_record` per-beat classifications, and the
//! ground-truth alignment of the batch path must survive border peaks.
//!
//! Chunk-invariance property tests for the streaming operators live at the
//! bottom: pushing a signal in arbitrary chunks yields outputs identical to
//! a sample-at-a-time run, and the operators handle degenerate geometries
//! (unit windows, streams shorter than the group delay) without panicking.

use std::sync::OnceLock;

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::hbc_dsp::filter::MorphologicalFilter;
use heartbeat_rp::hbc_dsp::peak::PeakDetector;
use heartbeat_rp::hbc_dsp::streaming::{
    ExtremumKind, SlidingExtremum, StreamingBaselineFilter, StreamingDecimator, StreamingWavelet,
};
use heartbeat_rp::hbc_dsp::wavelet::DyadicWavelet;
use heartbeat_rp::hbc_ecg::beat::{BeatClass, BeatWindow};
use heartbeat_rp::hbc_ecg::record::{Annotation, EcgRecord, Lead};
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::hbc_embedded::streaming::StreamingFirmware;
use heartbeat_rp::hbc_embedded::WbsnFirmware;
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;
use proptest::prelude::*;

fn trained_system() -> &'static TrainedSystem {
    static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        TrainedSystem::train(&ExperimentConfig::quick()).expect("training succeeds")
    })
}

fn firmware() -> WbsnFirmware {
    let system = trained_system();
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions are consistent")
}

/// Runs the streaming firmware over `raw` in the given chunking and returns
/// the emitted outcomes.
fn run_streaming(
    fw: &WbsnFirmware,
    fs: f64,
    raw: &[f64],
    chunks: impl Iterator<Item = usize>,
) -> Vec<heartbeat_rp::hbc_embedded::BeatOutcome> {
    let filtered = MorphologicalFilter::for_sampling_rate(fs)
        .apply(raw)
        .expect("filter");
    let thresholds = PeakDetector::new(fs)
        .calibrate(&filtered)
        .expect("calibrate");
    let mut streaming = StreamingFirmware::new(fw, fs, thresholds);
    let mut outcomes = Vec::new();
    let mut offset = 0;
    for chunk in chunks {
        if offset >= raw.len() {
            break;
        }
        let end = (offset + chunk.max(1)).min(raw.len());
        streaming.push_chunk(&raw[offset..end]);
        while let Some(o) = streaming.pop_outcome() {
            outcomes.push(o);
        }
        offset = end;
    }
    if offset < raw.len() {
        streaming.push_chunk(&raw[offset..]);
    }
    streaming.finish();
    while let Some(o) = streaming.pop_outcome() {
        outcomes.push(o);
    }
    outcomes
}

/// The acceptance bar of the PR: the streaming path reproduces the batch
/// per-beat classifications for sample-at-a-time, ragged and whole-record
/// chunkings alike.
#[test]
fn streaming_firmware_reproduces_process_record_for_any_chunking() {
    let fw = firmware();
    let mut gen = SyntheticEcg::with_seed(99);
    let rhythm = gen.rhythm(120, 0.1, 0.08);
    let record = gen.record(1, &rhythm, 3).expect("record generation");
    let batch = fw.process_record(&record).expect("batch firmware run");
    assert!(batch.beats.len() >= 100, "enough beats to compare");

    let raw = record.lead(Lead(0)).expect("lead 0");
    let chunkings: [(&str, Box<dyn Iterator<Item = usize>>); 4] = [
        ("sample-at-a-time", Box::new(std::iter::repeat(1))),
        ("odd 7-sample chunks", Box::new(std::iter::repeat(7))),
        ("one-second chunks", Box::new(std::iter::repeat(360))),
        ("whole record", Box::new(std::iter::once(raw.len()))),
    ];
    for (label, chunks) in chunkings {
        let outcomes = run_streaming(&fw, record.fs, raw, chunks);
        assert_eq!(
            outcomes.len(),
            batch.beats.len(),
            "{label}: beat count differs from process_record"
        );
        for (s, b) in outcomes.iter().zip(&batch.beats) {
            assert_eq!(s.peak, b.peak, "{label}: peak position differs");
            assert_eq!(
                s.predicted, b.predicted,
                "{label}: predicted class differs at peak {}",
                b.peak
            );
            assert_eq!(s.delineated, b.delineated, "{label}: gating differs");
        }
    }
}

/// Builds a record whose first annotated beat sits closer to the record
/// start than `window.pre`, so its detected peak is skipped by the beat
/// windower while remaining matchable to its annotation.
fn record_with_border_beat() -> EcgRecord {
    let fs = 360.0;
    let positions: Vec<usize> = (0..8).map(|k| 60 + 400 * k).collect();
    let n = positions.last().expect("non-empty") + 240;
    let mut signal = vec![0.0f64; n];
    for (i, &p) in positions.iter().enumerate() {
        // A QRS-like biphasic deflection (sharper and larger for the
        // "ventricular" first beat, narrow for the rest).
        let (amp, width) = if i == 0 { (1.6, 0.016) } else { (1.1, 0.011) };
        for (j, s) in signal.iter_mut().enumerate() {
            let t = (j as f64 - p as f64) / fs;
            let d = t / width;
            *s += amp * (-0.5 * d * d).exp();
            // Small discordant wave after the R peak, as real beats have.
            let dt = (t - 0.12) / 0.04;
            *s += -0.12 * amp * (-0.5 * dt * dt).exp();
        }
    }
    let annotations: Vec<Annotation> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let class = if i == 0 {
                BeatClass::PrematureVentricular
            } else {
                BeatClass::Normal
            };
            Annotation::new(p, class)
        })
        .collect();
    EcgRecord::new(7, fs, vec![signal], annotations).expect("valid record")
}

/// Regression for the ground-truth misalignment: `windows_at_peaks` skips
/// border peaks, so indexing the peak↔annotation matching by *beat* position
/// shifted every truth label after a skipped peak — the first reported beat
/// inherited the border beat's (abnormal) label, silently corrupting
/// NDR/ARR. On the pre-fix code this test fails with the first in-window
/// beat labelled `V` instead of `N`.
#[test]
fn ground_truth_labels_stay_aligned_across_skipped_border_peaks() {
    let fw = firmware();
    let record = record_with_border_beat();
    let window = BeatWindow::PAPER;

    // Preconditions that arm the regression: the detector must find the
    // border beat, and that peak must be unservable by the windower.
    let raw = record.lead(Lead(0)).expect("lead 0");
    let filtered = MorphologicalFilter::for_sampling_rate(record.fs)
        .apply(raw)
        .expect("filter");
    let peaks = PeakDetector::new(record.fs)
        .detect(&filtered)
        .expect("detect");
    assert!(
        peaks.first().is_some_and(|&p| p < window.pre),
        "first detected peak {:?} must lie inside the left border",
        peaks.first()
    );

    let report = fw.process_record(&record).expect("process");
    assert_eq!(
        report.beats.len(),
        record.annotations.len() - 1,
        "all but the border beat are windowed"
    );
    let tolerance = (0.06 * record.fs) as usize;
    for beat in &report.beats {
        let nearest = record
            .annotations
            .iter()
            .min_by_key(|a| a.sample.abs_diff(beat.peak))
            .expect("annotations exist");
        assert!(
            nearest.sample.abs_diff(beat.peak) <= tolerance,
            "beat at {} has no nearby annotation",
            beat.peak
        );
        assert_eq!(
            beat.truth,
            Some(nearest.class),
            "beat at {} carries the label of a different annotation",
            beat.peak
        );
    }
    // The decisive instance: the first *windowed* beat is the normal beat
    // near sample 460; with beat-indexed matching it inherited the border
    // PVC's label.
    assert_eq!(report.beats[0].truth, Some(BeatClass::Normal));
}

// ---------------------------------------------------------------------------
// Chunk-invariance and edge-case properties for the streaming operators.
// ---------------------------------------------------------------------------

fn synthetic_stretch(len: usize, seed_offset: u64) -> Vec<f64> {
    let mut gen = SyntheticEcg::with_seed(1234 + seed_offset);
    let rhythm = gen.rhythm(1 + len / 300, 0.2, 0.2);
    let record = gen.record(9, &rhythm, 1).expect("record");
    let mut signal = record.lead(Lead(0)).expect("lead").to_vec();
    signal.truncate(len);
    signal
}

/// Applies a chunking (cycled) to drive `push_chunk`-style ingestion.
fn chunk_spans(total: usize, chunks: &[usize]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut offset = 0;
    let mut k = 0;
    while offset < total {
        let len = chunks[k % chunks.len()].max(1);
        let end = (offset + len).min(total);
        spans.push((offset, end));
        offset = end;
        k += 1;
    }
    spans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The full streaming firmware emits an identical outcome stream for
    // every partition of the input into chunks.
    #[test]
    fn firmware_outcome_stream_is_chunk_invariant(
        chunks in prop::collection::vec(1usize..97, 1..12),
        seed in 0u64..4,
    ) {
        let fw = firmware();
        let mut gen = SyntheticEcg::with_seed(300 + seed);
        let rhythm = gen.rhythm(24, 0.15, 0.1);
        let record = gen.record(2, &rhythm, 1).expect("record");
        let raw = record.lead(Lead(0)).expect("lead 0");

        let reference = run_streaming(&fw, record.fs, raw, std::iter::repeat(1));
        let spans = chunk_spans(raw.len(), &chunks);
        let ragged = run_streaming(
            &fw,
            record.fs,
            raw,
            spans.iter().map(|(lo, hi)| hi - lo),
        );
        prop_assert_eq!(ragged.len(), reference.len());
        for (a, b) in ragged.iter().zip(&reference) {
            prop_assert_eq!(a.peak, b.peak);
            prop_assert_eq!(a.predicted, b.predicted);
            prop_assert_eq!(a.delineated, b.delineated);
            prop_assert_eq!(a.fiducials_transmitted, b.fiducials_transmitted);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The streaming wavelet equals the batch transform bit for bit on
    // arbitrary signal lengths (longer than the batch minimum), for any
    // number of scales in use.
    #[test]
    fn streaming_wavelet_matches_batch_for_random_lengths(
        len in 64usize..600,
        scales in 1usize..5,
        seed in 0u64..8,
    ) {
        let signal = synthetic_stretch(len, seed);
        let batch = DyadicWavelet::with_scales(scales).transform(&signal);
        prop_assert!(batch.is_ok() || signal.len() < 3 * (1 << (scales - 1)) + 1);
        let Ok(batch) = batch else { return Ok(()); };

        let mut streaming = StreamingWavelet::new(scales);
        let mut got: Vec<Vec<f64>> = vec![Vec::new(); scales];
        for &s in &signal {
            streaming.push(s);
            while let Some(frame) = streaming.pop_frame() {
                for (acc, &d) in got.iter_mut().zip(frame.details) {
                    acc.push(d);
                }
            }
        }
        streaming.finish();
        while let Some(frame) = streaming.pop_frame() {
            for (acc, &d) in got.iter_mut().zip(frame.details) {
                acc.push(d);
            }
        }
        for (scale, (g, b)) in got.iter().zip(&batch).enumerate() {
            prop_assert_eq!(g.len(), b.len());
            for (k, (x, y)) in g.iter().zip(b).enumerate() {
                prop_assert_eq!(x, y, "scale {} index {}", scale, k);
            }
        }
    }

    // The streaming baseline filter equals the batch filter bit for bit for
    // random signal lengths at and above the batch minimum.
    #[test]
    fn streaming_baseline_filter_matches_batch_for_random_lengths(
        len in 191usize..1200,
        seed in 0u64..8,
    ) {
        let signal = synthetic_stretch(len, seed);
        let batch = MorphologicalFilter::for_sampling_rate(360.0)
            .apply(&signal)
            .expect("length at least the longest structuring element");
        let mut streaming = StreamingBaselineFilter::for_sampling_rate(360.0);
        let mut out = Vec::new();
        for &s in &signal {
            if let Some(v) = streaming.push(s) {
                out.push(v);
            }
        }
        streaming.finish_into(&mut out);
        prop_assert_eq!(out.len(), batch.len());
        for (k, (a, b)) in out.iter().zip(&batch).enumerate() {
            prop_assert_eq!(a, b, "sample {}", k);
        }
    }

    // Signals shorter than the group delay produce exactly one output per
    // input at finish, without panicking — the edge the batch filter
    // rejects outright.
    #[test]
    fn streaming_baseline_filter_survives_short_streams(len in 0usize..64) {
        let signal = synthetic_stretch(len.max(1), 3);
        let signal = &signal[..len.min(signal.len())];
        let mut streaming = StreamingBaselineFilter::for_sampling_rate(360.0);
        let mut out = Vec::new();
        for &s in signal {
            prop_assert_eq!(streaming.push(s), None);
        }
        streaming.finish_into(&mut out);
        prop_assert_eq!(out.len(), signal.len());
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    // SlidingExtremum is exact against a naive window scan for any window
    // size, including the degenerate window of one sample.
    #[test]
    fn sliding_extremum_matches_naive_for_any_window(
        window in 1usize..80,
        len in 1usize..300,
        seed in 0u64..8,
    ) {
        let signal = synthetic_stretch(len, seed);
        for kind in [ExtremumKind::Min, ExtremumKind::Max] {
            let mut tracker = SlidingExtremum::new(kind, window);
            for (i, &s) in signal.iter().enumerate() {
                let got = tracker.push(s);
                let lo = i.saturating_sub(window - 1);
                let expected = signal[lo..=i]
                    .iter()
                    .copied()
                    .reduce(match kind {
                        ExtremumKind::Min => f64::min,
                        ExtremumKind::Max => f64::max,
                    })
                    .expect("non-empty window");
                prop_assert_eq!(got, expected, "index {}", i);
            }
        }
    }

    // Decimation through the streaming operator equals `step_by` for any
    // factor and any chunking of the pushes.
    #[test]
    fn streaming_decimator_matches_step_by(
        factor in 1usize..9,
        len in 0usize..200,
    ) {
        let signal: Vec<f64> = (0..len).map(|i| i as f64 * 0.25).collect();
        let mut dec = StreamingDecimator::new(factor);
        let got: Vec<f64> = signal.iter().filter_map(|&s| dec.push(s)).collect();
        let expected: Vec<f64> = signal.iter().copied().step_by(factor).collect();
        prop_assert_eq!(got, expected);
    }
}
