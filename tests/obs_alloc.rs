//! Allocation gate for the `hbc-obs` instrumentation primitives: once a
//! [`TraceRing`] has wrapped to capacity, the hot-path operations the
//! gateway calls on every sweep — [`Counter::inc`], [`Gauge::set`],
//! [`Histogram::record`] and [`TraceRing::push`] — must perform **zero**
//! heap allocations. This is what makes it safe to leave the telemetry
//! enabled in release builds: the instrumented reactor allocates exactly
//! as much as the bare one in steady state.
//!
//! This lives in its own test binary on purpose: the gate counts
//! allocations through a global counting allocator, and any concurrently
//! running test in the same process would pollute the counter. Keep this
//! file to a single `#[test]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use heartbeat_rp::hbc_obs::{Counter, Gauge, Histogram, TraceEvent, TraceRing};

/// Counts every allocation (alloc + realloc) made through the global
/// allocator; deallocations are not counted — the gate is about acquiring
/// memory in steady state, not about balance.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn instrumentation_allocates_nothing_in_steady_state() {
    let mut counter = Counter::new();
    let mut gauge = Gauge::new();
    let mut hist = Histogram::new();
    let capacity = 256;
    let mut ring = TraceRing::new(capacity);

    // Warm-up: wrap the ring past capacity so every later push overwrites
    // a pre-existing slot instead of growing the backing store, and seed
    // the histogram so the record below is a pure bucket increment.
    for i in 0..2 * capacity as u64 {
        ring.push(TraceEvent::SessionOpen {
            session: i as u32,
            patient: 7,
        });
        hist.record(i);
    }
    assert_eq!(ring.dump().len(), capacity);
    assert!(ring.dropped() > 0);

    let before = allocations();
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(i);
        gauge.set(i as f64);
        gauge.add(0.5);
        hist.record(i.wrapping_mul(0x9e37_79b9));
        ring.push(match i % 4 {
            0 => TraceEvent::SessionOpen {
                session: i as u32,
                patient: 3,
            },
            1 => TraceEvent::WalAppend { bytes: i as u32 },
            2 => TraceEvent::Shed {
                session: i as u32,
                samples: 128,
            },
            _ => TraceEvent::SessionClose { session: i as u32 },
        });
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "hbc-obs hot path allocated {} times in steady state",
        after - before
    );

    // Sanity: the instrumentation still recorded the real thing.
    assert!(counter.get() > 10_000);
    assert_eq!(hist.count(), 2 * capacity as u64 + 10_000);
    assert_eq!(ring.dump().len(), capacity);
    assert_eq!(ring.recorded(), 2 * capacity as u64 + 10_000);
}
