//! Property-based equivalence of the three integer projection paths.
//!
//! The bit-sliced kernel behind `PackedProjection::project_i32` must be
//! indistinguishable from the dense reference (`AchlioptasMatrix::
//! project_i32`) and from the firmware-faithful scalar packed path
//! (`project_i32_scalar`) for every matrix shape — in particular widths that
//! are not multiples of 64, which exercise the tail-word masking — and for
//! inputs that saturate the `i32` accumulator range.

use hbc_core::hbc_rp::{AchlioptasMatrix, PackedProjection};
use proptest::prelude::*;

/// Deterministic input window of `cols` samples. `extremes` selects how often
/// a sample is pinned to `i32::MIN`/`i32::MAX` (out of 16) so the same
/// property covers both ordinary magnitudes and saturating accumulations.
fn input_window(cols: usize, seed: u64, extremes: u64) -> Vec<i32> {
    let mut state = seed | 1;
    (0..cols)
        .map(|_| {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if z % 16 < extremes {
                if z & 16 == 0 {
                    i32::MAX
                } else {
                    i32::MIN
                }
            } else {
                (z % 8192) as i32 - 4096
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitsliced_matches_dense_and_scalar(
        rows in 1usize..=40,
        cols in 1usize..=200,
        matrix_seed in any::<u64>(),
        input_seed in any::<u64>(),
        extremes in 0u64..=16,
    ) {
        let dense = AchlioptasMatrix::generate(rows, cols, matrix_seed);
        let packed = PackedProjection::from_matrix(&dense);
        let input = input_window(cols, input_seed, extremes);

        let reference = dense.project_i32(&input).expect("dims match");
        let bitsliced = packed.project_i32(&input).expect("dims match");
        let scalar = packed.project_i32_scalar(&input).expect("dims match");
        prop_assert_eq!(&bitsliced, &reference, "bit-sliced vs dense, {}x{}", rows, cols);
        prop_assert_eq!(&scalar, &reference, "scalar packed vs dense, {}x{}", rows, cols);

        // The allocation-free entry point and the serialised round-trip reuse
        // the same kernel and must agree too.
        let mut out = vec![0i32; rows];
        packed.project_into(&input, &mut out).expect("dims match");
        prop_assert_eq!(&out, &reference);
        let rebuilt = PackedProjection::from_bytes(rows, cols, packed.as_bytes().to_vec())
            .expect("canonical bytes round-trip");
        prop_assert_eq!(&rebuilt.project_i32(&input).expect("dims match"), &reference);
    }

    #[test]
    fn tail_word_widths_match_around_the_64_column_boundary(
        rows in 1usize..=16,
        offset in 0usize..=4,
        below in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Widths 60..=68 and 124..=132: straddling one and two plane words.
        let cols = if below { 64 - offset.min(4) } else { 64 + offset }
            + if seed.is_multiple_of(2) { 0 } else { 64 };
        let dense = AchlioptasMatrix::generate(rows, cols, seed);
        let packed = PackedProjection::from_matrix(&dense);
        let input = input_window(cols, seed.rotate_left(17), 4);
        prop_assert_eq!(
            packed.project_i32(&input).expect("dims match"),
            dense.project_i32(&input).expect("dims match"),
            "cols = {}", cols
        );
    }
}
