//! Wire-level chaos: the gateway protocol under injected faults.
//!
//! A [`ChaosProxy`] sits between the node client and the gateway and mangles
//! the byte stream on a **seeded, deterministic schedule** (`HBC_CHAOS_SEED`
//! pins it in CI): corruption, duplication, reordering, truncation,
//! slow-loris stalls and mid-stream kills. The invariant under every fault
//! mode:
//!
//! * **prefix consistency** — outcomes delivered at any moment are a
//!   bit-identical prefix of the fault-free `process_record` reference
//!   stream; faults may delay or cut the stream, never silently corrupt it
//!   (CRC framing turns damage into clean connection death);
//! * **convergence** — after reconnect-with-backoff and
//!   [`Frame::ResumeSession`] re-attachment, the client ends with the *full*
//!   reference stream, without re-running threshold calibration
//!   (`sessions_opened` stays 1) and without losing or double-counting a
//!   single sample (the final report's sample count is exact).
//!
//! The suite also covers the resume lifecycle without a proxy: abrupt
//! severing, resume while credit-stalled (the replay buffer's boundedness
//! witness), and retention-window expiry (resume denied, wire id retired).

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::hbc_ecg::beat::BeatWindow;
use heartbeat_rp::hbc_ecg::record::{EcgRecord, Lead};
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::firmware::BeatOutcome;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::hbc_embedded::WbsnFirmware;
use heartbeat_rp::hbc_net::proto::{dequantize_mv_into, quantize_mv_into, Frame, FrameDecoder};
use heartbeat_rp::hbc_net::{
    ChaosConfig, ChaosDirection, ChaosProxy, ChaosStats, FaultKind, Gateway, GatewayConfig,
    GatewayStats, NetError, NodeClient, SessionSummary, PROTOCOL_VERSION,
};
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;

mod support;

fn system() -> &'static TrainedSystem {
    static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
}

fn firmware() -> WbsnFirmware {
    let system = system();
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions")
}

/// A single-lead synthetic record passed once through the wire ADC transfer
/// function, so socket replay and local reference consume identical signals
/// and every comparison below is exact.
fn wire_record(seed: u64, beats: usize) -> EcgRecord {
    let mut gen = SyntheticEcg::with_seed(seed);
    let rhythm = gen.rhythm(beats, 0.1, 0.1);
    let mut record = gen.record(seed as u32, &rhythm, 1).expect("record");
    let mut codes = Vec::new();
    let mut exact = Vec::new();
    quantize_mv_into(&record.leads[0], &mut codes);
    dequantize_mv_into(&codes, &mut exact);
    record.leads[0] = exact;
    record
}

/// `got` must be a bit-identical prefix of `want` (`truth` is `None` online).
fn assert_prefix(got: &[BeatOutcome], want: &[BeatOutcome], label: &str) {
    assert!(
        got.len() <= want.len(),
        "{label}: {} outcomes delivered, reference has only {}",
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.peak, w.peak, "{label}: beat {i} peak");
        assert_eq!(g.predicted, w.predicted, "{label}: beat {i} class");
        assert_eq!(g.delineated, w.delineated, "{label}: beat {i} delineated");
        assert_eq!(
            g.fiducials_transmitted, w.fiducials_transmitted,
            "{label}: beat {i} fiducials"
        );
        assert_eq!(g.truth, None, "{label}: online beats carry no ground truth");
    }
}

fn assert_full_match(got: &[BeatOutcome], want: &[BeatOutcome], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: beat count");
    assert_prefix(got, want, label);
}

/// Reconnects through whatever chaos the link throws, with an overall
/// deadline. A failed resume attempt (e.g. the fault hit during the resume
/// handshake, or a spurious I/O timeout) is retried.
fn recover(client: &mut NodeClient, addr: SocketAddr) {
    let start = Instant::now();
    loop {
        match client.reconnect_with_backoff(addr, 4, Duration::from_millis(5)) {
            Ok(()) => return,
            Err(e) => {
                assert!(
                    start.elapsed() < Duration::from_secs(30),
                    "could not resume within the deadline: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Runs one full chaos scenario: stream a record through a fault-injecting
/// proxy, reconnect-and-resume over every failure, close, and return the
/// converged summary plus all counters.
///
/// `calib_len = None` calibrates over the whole record and references the
/// batch `process_record` pipeline directly. `Some(n)` calibrates on the
/// first `n` samples and references the equivalent `StreamHub` lifecycle —
/// used for downstream-fault scenarios, where prefix calibration keeps
/// credit and outcome frames flowing (and thus faultable) *while the
/// session is still open*; a downstream fault after the gateway has closed
/// a session is the documented unrecoverable window (the token is retired
/// with the close).
fn run_chaos(
    chaos: ChaosConfig,
    calib_len: Option<usize>,
    label: &str,
) -> (SessionSummary, GatewayStats, ChaosStats) {
    let fw = firmware();
    let record = wire_record(6100, 45);
    let fs = record.fs;
    let calib = calib_len.unwrap_or(record.len());
    let reference = match calib_len {
        None => fw.process_record(&record).expect("reference").beats,
        Some(n) => {
            let mut hub = heartbeat_rp::StreamHub::new(&fw, fs);
            let lead = record.lead(Lead(0)).expect("lead 0");
            let thresholds = hub.calibrate_thresholds(&lead[..n]).expect("calibrate");
            let id = hub.add_patient(record.id, thresholds);
            hub.ingest(&[(id, lead)]).expect("ingest");
            hub.close_session(id).expect("close").outcomes
        }
    };
    assert!(!reference.is_empty(), "reference must emit beats");

    let config = GatewayConfig {
        credit_budget: 1 << 20,
        max_ingest_per_poll: 2048,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::bind("127.0.0.1:0", &fw, fs, config).expect("bind gateway");
    let gw_addr = gateway.local_addr().expect("gateway addr");
    let proxy = ChaosProxy::bind(gw_addr, chaos).expect("bind proxy");
    let px_addr = proxy.local_addr().expect("proxy addr");

    struct FlipOnDrop<'a>(&'a AtomicBool, &'a AtomicBool);
    impl Drop for FlipOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
            self.1.store(true, Ordering::Release);
        }
    }
    let stop_gw = AtomicBool::new(false);
    let stop_px = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let gw = scope.spawn(|| gateway.run(&stop_gw).expect("gateway runs"));
        let px = scope.spawn(|| proxy.run(&stop_px).expect("proxy runs"));
        let summary = {
            let _flip = FlipOnDrop(&stop_gw, &stop_px);
            let mut client = NodeClient::connect(px_addr).expect("connect via proxy");
            // Bounded I/O: byte-swallowing faults (truncation, a stalled
            // decoder on either end) surface as timeouts → resume, instead
            // of hanging the test. Longer than the proxy's stall pause.
            client
                .set_io_timeout(Some(Duration::from_millis(750)))
                .expect("io timeout");
            let id = client
                .open_session(record.id, fs, calib as u32)
                .expect("open");

            let lead = record.lead(Lead(0)).expect("lead 0");
            let mut sent = 0usize;
            for chunk in lead.chunks(1024) {
                // On any transport failure the chunk is already queued for
                // replay: reconnect, resume, and do NOT re-send it.
                if client.send_mv(id, chunk).is_err() {
                    recover(&mut client, px_addr);
                }
                sent += chunk.len();
                // Once past the calibration stretch the gateway acks every
                // sweep; pace the sender to those acks so downstream bytes
                // (credit, outcomes) are read as they are produced. A
                // downstream fault then surfaces while the session is still
                // open, instead of racing the close handshake into the
                // documented unrecoverable window. (During calibration no
                // credit flows, so draining there would deadlock.)
                if sent > calib {
                    let start = Instant::now();
                    loop {
                        match client.pump() {
                            Ok(()) if client.replay_depth(id) == 0 => break,
                            Ok(()) => {}
                            Err(_) => recover(&mut client, px_addr),
                        }
                        assert!(
                            start.elapsed() < Duration::from_secs(30),
                            "{label}: gateway never acked the in-flight chunks"
                        );
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                assert_prefix(client.outcomes(id), &reference, label);
            }
            let start = Instant::now();
            loop {
                match client.close_session(id) {
                    Ok(summary) => break summary,
                    Err(e) => {
                        assert!(
                            start.elapsed() < Duration::from_secs(30),
                            "{label}: close did not converge: {e}"
                        );
                        recover(&mut client, px_addr);
                    }
                }
            }
        };
        let gw_stats = gw.join().expect("gateway thread");
        let px_stats = px.join().expect("proxy thread");

        assert_full_match(&summary.outcomes, &reference, label);
        assert_eq!(
            summary.report.samples as usize,
            record.len(),
            "{label}: every sample counted exactly once"
        );
        assert_eq!(summary.report.beats as usize, reference.len());
        assert_eq!(
            gw_stats.sessions_opened, 1,
            "{label}: resume must re-attach, never re-open (no re-calibration)"
        );
        assert_eq!(gw_stats.sessions_closed, 1);
        (summary, gw_stats, px_stats)
    })
}

fn chaos_upstream(kind: FaultKind) -> ChaosConfig {
    ChaosConfig::fault(kind, support::chaos_seed())
}

#[test]
fn corrupt_upstream_converges_to_the_fault_free_stream() {
    let (_, gw, px) = run_chaos(chaos_upstream(FaultKind::Corrupt), None, "corrupt up");
    assert_eq!(px.faults_injected, 1, "the scheduled corruption fired");
    assert!(gw.sessions_resumed >= 1, "the broken link forced a resume");
}

#[test]
fn corrupt_downstream_converges_to_the_fault_free_stream() {
    // Downstream traffic (credit, outcomes) is far lighter than the sample
    // stream, so the fault offset sits earlier.
    let chaos = ChaosConfig {
        direction: ChaosDirection::Down,
        first_at: 256,
        span: 8,
        ..chaos_upstream(FaultKind::Corrupt)
    };
    let (_, gw, px) = run_chaos(chaos, Some(2048), "corrupt down");
    assert_eq!(px.faults_injected, 1, "the scheduled corruption fired");
    assert!(gw.sessions_resumed >= 1, "the broken link forced a resume");
}

#[test]
fn duplicated_bytes_converge_to_the_fault_free_stream() {
    let (_, gw, px) = run_chaos(chaos_upstream(FaultKind::Duplicate), None, "duplicate");
    assert_eq!(px.faults_injected, 1);
    assert!(gw.sessions_resumed >= 1);
}

#[test]
fn reordered_bytes_converge_to_the_fault_free_stream() {
    let (_, gw, px) = run_chaos(chaos_upstream(FaultKind::Reorder), None, "reorder");
    assert_eq!(px.faults_injected, 1);
    assert!(gw.sessions_resumed >= 1);
}

#[test]
fn truncated_bytes_converge_to_the_fault_free_stream() {
    let (_, gw, px) = run_chaos(chaos_upstream(FaultKind::Truncate), None, "truncate");
    assert_eq!(px.faults_injected, 1);
    assert!(gw.sessions_resumed >= 1);
}

#[test]
fn slow_loris_stall_recovers_transparently() {
    // The stall pause (200 ms) is shorter than the client's I/O timeout
    // (500 ms) and the gateway's idle timeout (30 s): the link hiccups and
    // recovers, usually without even breaking the connection.
    let (_, _, px) = run_chaos(chaos_upstream(FaultKind::Stall), None, "stall");
    assert_eq!(px.stalls, 1, "the scheduled stall fired");
}

#[test]
fn mid_stream_kill_resumes_by_token_and_converges() {
    let (_, gw, px) = run_chaos(chaos_upstream(FaultKind::Kill), None, "kill");
    assert_eq!(px.kills, 1, "the scheduled kill fired");
    assert!(gw.sessions_resumed >= 1, "the killed link forced a resume");
}

#[test]
fn passthrough_proxy_is_invisible() {
    let (_, gw, px) = run_chaos(ChaosConfig::passthrough(), None, "passthrough");
    assert_eq!(px.faults_injected, 0);
    assert_eq!(gw.sessions_resumed, 0);
    assert_eq!(gw.denials, 0);
}

/// Runs `body` against a live gateway on a loopback port (no proxy); flips
/// the shutdown flag (even on panic) and returns the final counters.
fn with_gateway<R>(
    fw: &WbsnFirmware,
    fs: f64,
    config: GatewayConfig,
    body: impl FnOnce(SocketAddr) -> R,
) -> (R, GatewayStats) {
    struct FlipOnDrop<'a>(&'a AtomicBool);
    impl Drop for FlipOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    let shutdown = AtomicBool::new(false);
    let gateway = Gateway::bind("127.0.0.1:0", fw, fs, config).expect("bind");
    let addr = gateway.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| gateway.run(&shutdown).expect("gateway runs"));
        let result = {
            let _flip = FlipOnDrop(&shutdown);
            body(addr)
        };
        let stats = handle.join().expect("gateway thread");
        (result, stats)
    })
}

#[test]
fn severed_client_resumes_without_recalibration() {
    // Prefix calibration (not whole-record) proves thresholds survive the
    // resume: were calibration re-run on post-resume data, the outcome
    // stream would diverge from this reference.
    let fw = firmware();
    let record = wire_record(6200, 40);
    let fs = record.fs;
    let calib_len = 2048usize;
    let reference = {
        let mut hub = heartbeat_rp::StreamHub::new(&fw, fs);
        let lead = record.lead(Lead(0)).expect("lead 0");
        let thresholds = hub
            .calibrate_thresholds(&lead[..calib_len])
            .expect("calibrate");
        let id = hub.add_patient(record.id, thresholds);
        hub.ingest(&[(id, lead)]).expect("ingest");
        hub.close_session(id).expect("close").outcomes
    };

    let (summary, stats) = with_gateway(&fw, fs, GatewayConfig::default(), |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        let id = client
            .open_session(record.id, fs, calib_len as u32)
            .expect("open");
        let lead = record.lead(Lead(0)).expect("lead 0");
        let half = lead.len() / 2;
        client.send_mv(id, &lead[..half]).expect("first half");
        // The link dies abruptly — no goodbye to the gateway.
        client.sever();
        assert!(
            client.send_mv(id, &lead[half..]).is_err(),
            "a severed connection must refuse traffic"
        );
        // The failed send queued the second half for replay; resume
        // retransmits whatever the gateway is missing.
        recover(&mut client, addr);
        client.close_session(id).expect("close")
    });

    assert_full_match(&summary.outcomes, &reference, "severed");
    assert_eq!(summary.report.samples as usize, record.len());
    assert_eq!(stats.sessions_opened, 1, "no re-open, no re-calibration");
    assert_eq!(stats.sessions_resumed, 1);
    assert_eq!(stats.sessions_closed, 1);
}

#[test]
fn credit_stalled_sender_resumes_without_losing_or_double_counting_beats() {
    // Regression for the retired-id bookkeeping introduced with eviction
    // handling: a sender stalled on credit (gateway is the slow side) whose
    // connection dies mid-stall must resume inside the retention window and
    // converge with *exactly* one copy of every sample — the unacked replay
    // tail is retransmitted, `next_expected_seq` deduplicates it.
    let fw = firmware();
    let record = wire_record(6300, 40);
    let fs = record.fs;
    let budget = 4096usize;
    let calib_len = 2048usize;
    let reference = {
        let mut hub = heartbeat_rp::StreamHub::new(&fw, fs);
        let lead = record.lead(Lead(0)).expect("lead 0");
        let thresholds = hub
            .calibrate_thresholds(&lead[..calib_len])
            .expect("calibrate");
        let id = hub.add_patient(record.id, thresholds);
        hub.ingest(&[(id, lead)]).expect("ingest");
        hub.close_session(id).expect("close").outcomes
    };

    let config = GatewayConfig {
        credit_budget: budget,
        // A deliberately slow hub, so the sender repeatedly exhausts its
        // credit and the replay buffer rides at its bound.
        max_ingest_per_poll: 256,
        ..GatewayConfig::default()
    };
    let (summary, stats) = with_gateway(&fw, fs, config, |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        let id = client
            .open_session(record.id, fs, calib_len as u32)
            .expect("open");
        let lead = record.lead(Lead(0)).expect("lead 0");
        let cut = lead.len() / 2;
        for chunk in lead[..cut].chunks(512) {
            client.send_mv(id, chunk).expect("send");
            // Boundedness witness: unacked frames never exceed a credit
            // budget's worth plus the chunk in flight.
            assert!(
                client.replay_depth(id) <= budget / 512 + 2,
                "replay depth {} exceeds the credit bound",
                client.replay_depth(id)
            );
        }
        client.sever();
        let _ = client.send_mv(id, &lead[cut..]); // queued, not sent
        recover(&mut client, addr);
        client.close_session(id).expect("close")
    });

    assert_full_match(&summary.outcomes, &reference, "credit-stalled resume");
    assert_eq!(
        summary.report.samples as usize,
        record.len(),
        "no sample lost, none double-counted"
    );
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_resumed, 1);
    assert!(
        stats.peak_buffered_samples <= budget,
        "gateway memory stayed bounded through the resume"
    );
}

#[test]
fn expired_retention_window_denies_resume_and_retires_the_wire_id() {
    let fw = firmware();
    let fs = 360.0;
    let config = GatewayConfig {
        resume_window: Duration::from_millis(50),
        ..GatewayConfig::default()
    };
    let ((), stats) = with_gateway(&fw, fs, config, |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        let id = client.open_session(77, fs, 512).expect("open");
        client.send_mv(id, &vec![0.0; 1024]).expect("send");
        client.sever();

        // Wait out the retention window (detach happens when the gateway
        // notices the dead socket, expiry 50 ms later), then the resume
        // must be denied. Deadline-polled with growing pauses: if a resume
        // still slips in, sever and wait longer.
        let start = Instant::now();
        let mut pause = Duration::from_millis(500);
        let denied = loop {
            assert!(
                start.elapsed() < Duration::from_secs(20),
                "retention window never expired"
            );
            std::thread::sleep(pause);
            match client.reconnect_with_backoff(addr, 1, Duration::from_millis(1)) {
                Err(NetError::Denied(message)) => break message,
                Ok(()) => {
                    client.sever();
                    pause *= 2;
                }
                Err(_) => {}
            }
        };
        assert!(
            denied.contains("unknown or expired"),
            "deny should name the cause: {denied}"
        );

        // The expired session's wire id is retired: stragglers addressed to
        // it are dropped silently, not treated as violations — the same
        // connection can open a fresh session right after.
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        let mut decoder = FrameDecoder::new();
        raw.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )
        .expect("hello");
        raw.write_all(
            &Frame::Samples {
                session: id,
                seq: 99,
                samples: vec![0i16; 16],
            }
            .encode(),
        )
        .expect("straggler");
        raw.write_all(
            &Frame::OpenSession {
                patient_id: 78,
                fs_millihertz: 360_000,
                calib_len: 512,
            }
            .encode(),
        )
        .expect("reopen");
        let opened = read_until(&mut raw, &mut decoder, |f| {
            matches!(f, Frame::SessionOpened { .. })
        });
        assert!(matches!(opened, Frame::SessionOpened { .. }));
    });
    assert!(stats.sessions_expired >= 1, "the parked session expired");
    assert!(stats.sessions_detached >= 1);
}

/// Raw-socket helper: blocking-reads frames until `want` matches.
fn read_until(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    want: impl Fn(&Frame) -> bool,
) -> Frame {
    use std::io::Read;
    let mut buf = [0u8; 4096];
    loop {
        while let Some(frame) = decoder.next_frame().expect("valid") {
            if want(&frame) {
                return frame;
            }
        }
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "gateway hung up before the expected frame");
        decoder.feed(&buf[..n]);
    }
}
