//! End-to-end telemetry guarantees of the `hbc-obs` substrate threaded
//! through the gateway:
//!
//! * **Headline histogram** — after real loopback traffic the
//!   first-ADC-sample-to-outcome histogram is non-empty and its quantiles
//!   are ordered; the snapshot's counters agree exactly with the reactor's
//!   own [`GatewayStats`];
//! * **Trace ordering** — the trace ring orders a session's lifecycle
//!   (open before close), and a sever/resume/overload run orders
//!   detach → resume → shed with event counts that match the counters;
//! * **Admin surface** — a raw HTTP scrape of the admin listener serves
//!   the Prometheus text exposition, the JSON snapshot, the health
//!   document and the trace dump, and 404s unknown routes;
//! * **Bit-invisibility** — outcomes received over the wire with
//!   instrumentation enabled are the same outcomes the un-instrumented
//!   parity suites pin down (the loopback suite re-checks that end to
//!   end; here we assert the telemetry rides along without changing the
//!   session summary).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::hbc_ecg::beat::BeatWindow;
use heartbeat_rp::hbc_ecg::record::EcgRecord;
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::hbc_embedded::WbsnFirmware;
use heartbeat_rp::hbc_net::proto::{dequantize_mv_into, quantize_mv_into};
use heartbeat_rp::hbc_net::{Gateway, GatewayConfig, GatewayReport, NodeClient};
use heartbeat_rp::hbc_obs::TraceEvent;
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::hbc_wal::WalConfig;
use heartbeat_rp::pipeline::TrainedSystem;

mod support;

fn system() -> &'static TrainedSystem {
    static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
}

fn firmware() -> WbsnFirmware {
    let system = system();
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions")
}

/// A single-lead synthetic record pre-quantised through the wire ADC.
fn wire_record(seed: u64, beats: usize) -> EcgRecord {
    let mut gen = SyntheticEcg::with_seed(seed);
    let rhythm = gen.rhythm(beats, 0.1, 0.1);
    let mut record = gen.record(seed as u32, &rhythm, 1).expect("record");
    let mut codes = Vec::new();
    let mut exact = Vec::new();
    quantize_mv_into(&record.leads[0], &mut codes);
    dequantize_mv_into(&codes, &mut exact);
    record.leads[0] = exact;
    record
}

/// Runs `body` against a live gateway and returns the full shutdown
/// [`GatewayReport`] (stats + final metrics snapshot + trace dump). The
/// second address handed to `body` is the admin listener's, when one was
/// configured.
fn with_gateway_report<R>(
    fw: &WbsnFirmware,
    fs: f64,
    config: GatewayConfig,
    body: impl FnOnce(SocketAddr, Option<SocketAddr>) -> R,
) -> (R, GatewayReport) {
    struct FlipOnDrop<'a>(&'a AtomicBool);
    impl Drop for FlipOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    let shutdown = AtomicBool::new(false);
    let gateway = Gateway::bind("127.0.0.1:0", fw, fs, config).expect("bind");
    let addr = gateway.local_addr().expect("addr");
    let admin = gateway.admin_addr();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| gateway.run_with_report(&shutdown).expect("gateway runs"));
        let result = {
            let _flip = FlipOnDrop(&shutdown);
            body(addr, admin)
        };
        let report = handle.join().expect("gateway thread");
        (result, report)
    })
}

/// Streams one record through a session and closes it. Draining the replay
/// buffer before the close makes the gateway consume (and forward outcomes
/// for) the stream *while the session is live* — the path the
/// beat-to-outcome histogram measures — instead of in the close drain.
fn stream_record(addr: SocketAddr, record: &EcgRecord, calib_len: u32) -> u64 {
    let mut client = NodeClient::connect(addr).expect("connect");
    let session = client
        .open_session(record.id, record.fs, calib_len)
        .expect("open");
    for chunk in record.leads[0].chunks(768) {
        client.send_mv(session, chunk).expect("send");
    }
    let start = Instant::now();
    while client.replay_depth(session) > 0 {
        client.pump().expect("pump");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "gateway never acked the stream"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let summary = client.close_session(session).expect("close");
    summary.report.beats
}

#[test]
fn loopback_traffic_fills_the_headline_histogram_and_matches_counters() {
    let fw = firmware();
    let record = wire_record(9100, 30);
    let fs = record.fs;
    let tmp = support::TempDir::new("obs-headline");
    let config = GatewayConfig {
        wal: Some(WalConfig::new(tmp.path())),
        ..GatewayConfig::default()
    };
    let (beats, report) = with_gateway_report(&fw, fs, config, |addr, _| {
        stream_record(addr, &record, 2048)
    });
    assert!(beats > 0, "the session must classify beats");

    // The headline metric: non-empty after real traffic, quantiles ordered.
    let b2o = report
        .metrics
        .histogram("hbc_gateway_beat_to_outcome_micros")
        .expect("headline histogram present");
    assert!(b2o.count() > 0, "beat-to-outcome histogram must be fed");
    assert!(b2o.p50() <= b2o.p90() && b2o.p90() <= b2o.p99());
    assert!(b2o.p99() > 0, "forwarding an outcome takes nonzero time");

    // Every latency source was exercised by the run.
    for name in [
        "hbc_gateway_sweep_micros",
        "hbc_gateway_frame_micros",
        "hbc_gateway_ingest_batch_micros",
        "hbc_hub_ingest_micros",
        "hbc_stage_conditioning_nanos",
        "hbc_stage_projection_nanos",
        "hbc_stage_classify_nanos",
    ] {
        let h = report.metrics.histogram(name).expect(name);
        assert!(h.count() > 0, "{name} must be fed by the run");
    }

    // The snapshot's counters are the reactor's counters, verbatim.
    let s = &report.stats;
    let counter = |name: &str| report.metrics.counter(name).expect(name);
    assert_eq!(counter("hbc_gateway_connections_total"), s.connections);
    assert_eq!(counter("hbc_gateway_frames_in_total"), s.frames_in);
    assert_eq!(counter("hbc_gateway_frames_out_total"), s.frames_out);
    assert_eq!(counter("hbc_gateway_samples_in_total"), s.samples_in);
    assert_eq!(counter("hbc_gateway_beats_out_total"), s.beats_out);
    assert_eq!(counter("hbc_gateway_sessions_opened_total"), 1);
    assert_eq!(counter("hbc_gateway_sessions_closed_total"), 1);
    assert_eq!(counter("hbc_gateway_wal_errors_total"), 0);
    assert!(counter("hbc_wal_appends_total") > 0, "the log saw appends");
    assert!(counter("hbc_wal_appended_bytes_total") > 0);

    // The windowed high-water mark never exceeds the all-time mark.
    assert!(s.poll_recent_high_water_micros <= s.poll_high_water_micros);

    // Trace ordering: this session opened before it closed, and the
    // durable log appended before the session closed on the wire.
    let open_tick = report
        .trace
        .iter()
        .find(|r| matches!(r.event, TraceEvent::SessionOpen { .. }))
        .expect("open traced")
        .tick;
    let close_tick = report
        .trace
        .iter()
        .find(|r| matches!(r.event, TraceEvent::SessionClose { .. }))
        .expect("close traced")
        .tick;
    assert!(open_tick < close_tick, "open must precede close");
    assert!(
        report
            .trace
            .iter()
            .any(|r| matches!(r.event, TraceEvent::WalAppend { .. })),
        "durable-log appends must be traced"
    );
    let mut last = 0u64;
    for rec in &report.trace {
        assert!(rec.tick > last, "ticks must strictly increase in a dump");
        last = rec.tick;
    }

    // Exposition formats carry the headline metric.
    let text = report.metrics.to_prometheus();
    assert!(text.contains("# TYPE hbc_gateway_beat_to_outcome_micros histogram"));
    assert!(text.contains("hbc_gateway_beat_to_outcome_micros_bucket{le=\"+Inf\"}"));
    assert!(text.contains("hbc_gateway_beat_to_outcome_micros_count"));
    let json = report.metrics.to_json();
    assert!(json.contains("\"hbc_gateway_beat_to_outcome_micros\":{\"count\":"));

    // Satellite: WAL health folds into GatewayHealth. A fresh bind on the
    // same log directory sees the bytes the run left behind.
    let gw = Gateway::bind(
        "127.0.0.1:0",
        &fw,
        fs,
        GatewayConfig {
            wal: Some(WalConfig::new(tmp.path())),
            ..GatewayConfig::default()
        },
    )
    .expect("rebind");
    let health = gw.health();
    assert!(health.wal_active, "the log must be accepting appends");
    assert!(health.wal_log_bytes > 0, "the log kept the run's records");
    assert_eq!(health.wal_errors, 0);
}

#[test]
fn sever_resume_and_overload_order_detach_resume_shed_on_the_trace() {
    let fw = firmware();
    let record = wire_record(9200, 30);
    let fs = record.fs;
    assert!(record.leads[0].len() >= 4096, "record long enough");
    // 36000 bytes = 4500 samples of budget. Session A's calibration
    // stretch (4096 samples) fits under the hard-deny check but occupies
    // most of the budget once buffered — a session still *calibrating*
    // never drains, so its buffer sits there deterministically. Session
    // B's very first frame then breaches the budget by arithmetic, not by
    // racing the drain, and the shedder must fire.
    let config = GatewayConfig {
        global_memory_budget: 36_000,
        resume_window: Duration::from_secs(30),
        ..GatewayConfig::default()
    };
    let ((), report) = with_gateway_report(&fw, fs, config, |addr, _| {
        // Session A: buffer a partial calibration stretch (4000 of 4096 —
        // nothing drains while calibrating), then sever and resume:
        // detach → resume on the trace.
        let mut a = NodeClient::connect(addr).expect("connect A");
        let sa = a.open_session(record.id, fs, 4096).expect("open A");
        a.send_mv(sa, &record.leads[0][..4000]).expect("send A");
        // Let the gateway ingest the frames before the link dies.
        std::thread::sleep(Duration::from_millis(150));
        a.sever();
        // Give the reactor time to notice the dead link and park the
        // session, so the resume below finds it detached, not live.
        std::thread::sleep(Duration::from_millis(200));
        let start = Instant::now();
        loop {
            match a.reconnect_with_backoff(addr, 4, Duration::from_millis(5)) {
                Ok(()) => break,
                Err(e) => {
                    assert!(
                        start.elapsed() < Duration::from_secs(30),
                        "could not resume within the deadline: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        // Session B: a small calibration stretch keeps its open admissible
        // (32000 + 2048 < 36000); its first 1024-sample frame then charges
        // 8192 bytes against the ~4000 remaining — shed.
        let mut b = NodeClient::connect(addr).expect("connect B");
        let sb = b.open_session(record.id + 1, fs, 256).expect("open B");
        for chunk in record.leads[0][..4096].chunks(1024) {
            b.send_mv(sb, chunk).expect("send B");
        }
        std::thread::sleep(Duration::from_millis(200));
    });

    let s = &report.stats;
    assert!(s.sessions_detached >= 1, "the sever must detach A");
    assert!(s.sessions_resumed >= 1, "A must resume");
    assert!(s.sheds >= 1, "the flood must trigger the shedder");

    // The trace tells the same story, in order: detach → resume → shed.
    let tick_of = |pred: &dyn Fn(&TraceEvent) -> bool, what: &str| {
        report
            .trace
            .iter()
            .find(|r| pred(&r.event))
            .unwrap_or_else(|| panic!("{what} must be traced"))
            .tick
    };
    let detach = tick_of(&|e| matches!(e, TraceEvent::SessionDetach { .. }), "detach");
    let resume = tick_of(&|e| matches!(e, TraceEvent::SessionResume { .. }), "resume");
    let shed = tick_of(&|e| matches!(e, TraceEvent::Shed { .. }), "shed");
    assert!(
        detach < resume && resume < shed,
        "expected detach ({detach}) < resume ({resume}) < shed ({shed})"
    );

    // Event counts agree with the counters (the ring was not overrun).
    let count_of = |pred: &dyn Fn(&TraceEvent) -> bool| {
        report.trace.iter().filter(|r| pred(&r.event)).count() as u64
    };
    assert_eq!(
        count_of(&|e| matches!(e, TraceEvent::SessionDetach { .. })),
        s.sessions_detached
    );
    assert_eq!(
        count_of(&|e| matches!(e, TraceEvent::SessionResume { .. })),
        s.sessions_resumed
    );
    assert_eq!(count_of(&|e| matches!(e, TraceEvent::Shed { .. })), s.sheds);
    let shed_samples: u64 = report
        .trace
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::Shed { samples, .. } => Some(u64::from(samples)),
            _ => None,
        })
        .sum();
    assert_eq!(shed_samples, s.samples_shed);
}

/// One blocking HTTP/1.0 exchange against the admin listener.
fn scrape(admin: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(admin).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response
}

#[test]
fn admin_surface_serves_metrics_health_and_trace() {
    let fw = firmware();
    let record = wire_record(9300, 25);
    let fs = record.fs;
    let config = GatewayConfig {
        admin_addr: Some("127.0.0.1:0".parse().expect("addr")),
        ..GatewayConfig::default()
    };
    let (scrapes, report) = with_gateway_report(&fw, fs, config, |addr, admin| {
        let admin = admin.expect("admin listener configured");
        let beats = stream_record(addr, &record, 2048);
        assert!(beats > 0);
        let metrics = scrape(admin, "/metrics");
        let json = scrape(admin, "/metrics.json");
        let health = scrape(admin, "/health");
        let trace = scrape(admin, "/trace");
        let missing = scrape(admin, "/nope");
        (metrics, json, health, trace, missing)
    });
    let (metrics, json, health, trace, missing) = scrapes;

    assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"));
    assert!(metrics.contains("text/plain; version=0.0.4"));
    assert!(metrics.contains("# TYPE hbc_gateway_beat_to_outcome_micros histogram"));
    assert!(metrics.contains("# TYPE hbc_gateway_sessions_opened_total counter"));
    assert!(metrics.contains("hbc_gateway_sessions_opened_total 1"));

    assert!(json.starts_with("HTTP/1.0 200 OK\r\n"));
    assert!(json.contains("application/json"));
    assert!(json.contains("\"hbc_gateway_sessions_opened_total\":1"));
    assert!(json.contains("\"hbc_gateway_beat_to_outcome_micros\":{\"count\":"));

    assert!(health.starts_with("HTTP/1.0 200 OK\r\n"));
    assert!(health.contains("\"live_sessions\":"));
    assert!(health.contains("\"wal_active\":false"));

    assert!(trace.starts_with("HTTP/1.0 200 OK\r\n"));
    assert!(trace.contains("session_open"));

    assert!(missing.starts_with("HTTP/1.0 404 Not Found\r\n"));

    // The scrape surface is read-only: the run's summary is the usual one.
    assert_eq!(report.stats.sessions_opened, 1);
    assert_eq!(report.stats.sessions_closed, 1);
    assert_eq!(report.stats.denials, 0);
}
