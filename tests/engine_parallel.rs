//! Parity tests for the parallel evaluation engine: whatever the thread
//! count, batch size or record sharding, the merged [`EvaluationReport`]
//! must be *bit-identical* to the sequential reference pass. This is the
//! contract that lets every experiment route its dataset-scale scans through
//! the engine without changing a single reported figure.

use heartbeat_rp::engine::{Engine, EngineConfig, PcEvaluator, WbsnEvaluator};
use heartbeat_rp::hbc_ecg::beat::{Beat, BeatWindow};
use heartbeat_rp::hbc_ecg::record::{EcgRecord, Lead};
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::{ExperimentConfig, TrainedSystem};
use std::num::NonZeroUsize;
use std::sync::OnceLock;

fn system() -> &'static TrainedSystem {
    static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
}

/// An engine guaranteed to use real worker threads even on single-core CI
/// hosts, where `Engine::default()` would resolve to the sequential fast
/// path and the parity assertions would be vacuous.
fn four_workers() -> Engine {
    Engine::new(EngineConfig {
        threads: NonZeroUsize::new(4),
        ..EngineConfig::default()
    })
}

/// A small fleet of annotated synthetic records with mixed rhythms.
fn records() -> Vec<EcgRecord> {
    let mut generator = SyntheticEcg::with_seed(41);
    (0..6)
        .map(|i| {
            let rhythm = generator.rhythm(40 + 5 * (i as usize), 0.12, 0.10);
            generator
                .record(100 + i, &rhythm, 2)
                .expect("synthetic record is consistent")
        })
        .collect()
}

#[test]
fn parallel_record_evaluation_is_bit_identical_to_sequential() {
    let system = system();
    let records = records();

    let sequential = Engine::sequential()
        .evaluate_records(&system.wbsn, &records, Lead(0), BeatWindow::PAPER)
        .expect("sequential multi-record evaluation");
    for engine in [
        four_workers(),
        Engine::new(EngineConfig {
            threads: NonZeroUsize::new(3),
            batch_size: 5,
        }),
    ] {
        let parallel = engine
            .evaluate_records(&system.wbsn, &records, Lead(0), BeatWindow::PAPER)
            .expect("parallel multi-record evaluation");
        // Bit-identical: merged aggregate AND every per-record report.
        assert_eq!(parallel.merged, sequential.merged);
        assert_eq!(parallel.per_record, sequential.per_record);
    }

    // The per-record structure is faithful: ids survive, every record
    // contributed, and the merge is exactly the sum of the parts.
    assert_eq!(sequential.per_record.len(), records.len());
    for record in &records {
        let per = sequential
            .record(record.id)
            .expect("record appears in the report");
        assert_eq!(per.report.total(), per.beats);
    }
    let summed: usize = sequential.per_record.iter().map(|r| r.report.total()).sum();
    assert_eq!(sequential.total_beats(), summed);
    assert!(
        summed > 0,
        "the synthetic fleet produced classifiable beats"
    );
}

#[test]
fn record_evaluation_matches_flat_concatenated_beats() {
    // Evaluating record-by-record and merging must equal one flat pass over
    // the concatenation of every record's beats.
    let system = system();
    let records = records();
    let multi = four_workers()
        .evaluate_records(&system.wbsn, &records, Lead(0), BeatWindow::PAPER)
        .expect("multi-record evaluation");

    let flat: Vec<Beat> = records
        .iter()
        .flat_map(|r| r.extract_beats(Lead(0), BeatWindow::PAPER).expect("lead 0"))
        .collect();
    let reference = system
        .wbsn
        .evaluate(&flat, system.wbsn.alpha)
        .expect("flat sequential evaluation");
    assert_eq!(multi.merged, reference);
}

#[test]
fn parallel_split_evaluation_matches_sequential_for_both_pipelines() {
    let system = system();
    let parallel = four_workers();

    // WBSN integer pipeline at a non-calibrated α, via the explicit
    // evaluator.
    let alpha = AlphaQ16::from_f64(0.25).expect("valid alpha");
    let reference = system
        .wbsn
        .evaluate(&system.dataset.test, alpha)
        .expect("sequential WBSN evaluation");
    let report = parallel
        .evaluate_beats(
            &WbsnEvaluator {
                pipeline: &system.wbsn,
                alpha,
            },
            &system.dataset.test,
        )
        .expect("parallel WBSN evaluation");
    assert_eq!(report, reference);

    // Floating-point PC pipeline.
    let reference = system
        .pc
        .evaluate(&system.dataset.test, system.pc.alpha_train)
        .expect("sequential PC evaluation");
    let report = parallel
        .evaluate_beats(
            &PcEvaluator {
                pipeline: &system.pc,
                alpha: system.pc.alpha_train,
            },
            &system.dataset.test,
        )
        .expect("parallel PC evaluation");
    assert_eq!(report, reference);
}

#[test]
fn engine_backed_test_split_helpers_match_direct_loops() {
    let system = system();
    let wbsn = system
        .evaluate_wbsn_on_test()
        .expect("engine-backed helper");
    let direct = system
        .wbsn
        .evaluate(&system.dataset.test, system.wbsn.alpha)
        .expect("direct loop");
    assert_eq!(wbsn, direct);

    let pc = system.evaluate_pc_on_test().expect("engine-backed helper");
    let direct = system
        .pc
        .evaluate(&system.dataset.test, system.pc.alpha_train)
        .expect("direct loop");
    assert_eq!(pc, direct);
}
