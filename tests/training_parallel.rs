//! Parity of the parallel two-step training: for one seed, the fitted
//! pipeline must be *bit-identical* — winning matrix bytes, membership
//! parameters, calibrated α, fitness history — whatever the worker count.
//!
//! The guarantee rests on two facts the test pins down: the GA scores each
//! generation as one ordered batch (candidate fitness never touches the GA's
//! RNG), and `hbc_par::Par` returns batch results in submission order.

use std::num::NonZeroUsize;

use hbc_core::hbc_ecg::dataset::DatasetSpec;
use hbc_core::hbc_ecg::Dataset;
use hbc_core::hbc_nfc::{FittedPipeline, TwoStepConfig, TwoStepTrainer};
use hbc_core::hbc_rp::PackedProjection;

fn ga_config() -> TwoStepConfig {
    let mut config = TwoStepConfig::quick(8);
    // Small but real search: two generations of a six-candidate population
    // keeps the test fast while exercising batched offspring evaluation.
    config.genetic.population = 6;
    config.genetic.generations = 2;
    config
}

/// Bit-level comparison of two fitted pipelines.
fn assert_bit_identical(a: &FittedPipeline, b: &FittedPipeline, label: &str) {
    assert_eq!(
        PackedProjection::from_matrix(&a.projection).as_bytes(),
        PackedProjection::from_matrix(&b.projection).as_bytes(),
        "{label}: winning matrix bytes diverged"
    );
    assert_eq!(
        a.classifier, b.classifier,
        "{label}: membership parameters diverged"
    );
    assert_eq!(
        a.alpha_train.to_bits(),
        b.alpha_train.to_bits(),
        "{label}: calibrated alpha diverged"
    );
    assert_eq!(
        a.fitness.to_bits(),
        b.fitness.to_bits(),
        "{label}: fitness diverged"
    );
    let history = |p: &FittedPipeline| p.ga_history.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(history(a), history(b), "{label}: GA history diverged");
}

#[test]
fn fit_is_bit_identical_for_any_thread_count() {
    let dataset = Dataset::synthetic(DatasetSpec::tiny(), 17);
    let trainer = TwoStepTrainer::new(ga_config()).expect("valid config");

    let reference = trainer
        .with_threads(NonZeroUsize::new(1).expect("non-zero"))
        .fit(&dataset)
        .expect("sequential fit");
    assert!(reference.fitness > 0.0, "degenerate reference fit");

    for threads in [2usize, 8] {
        let parallel = trainer
            .with_threads(NonZeroUsize::new(threads).expect("non-zero"))
            .fit(&dataset)
            .expect("parallel fit");
        assert_bit_identical(&reference, &parallel, &format!("{threads} threads"));
    }

    // The default trainer (one worker per core, whatever this host has) must
    // land on the same artefacts as the pinned runs.
    let default_run = trainer.fit(&dataset).expect("default fit");
    assert_bit_identical(&reference, &default_run, "default thread policy");
}
