//! Shared helpers for the socket-level integration suites
//! (`net_loopback.rs`, `chaos_gateway.rs`, `durability_gateway.rs`).
//!
//! Kept in `tests/support/` (not a sibling `.rs` file) so Cargo does not
//! compile it as a test target of its own; each suite pulls it in with
//! `mod support;`.

#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Polls `cond` every millisecond until it returns `true` or `deadline`
/// elapses; panics on timeout. Replaces fixed sleeps so the suites stay fast
/// on idle machines and reliable on loaded ones.
pub fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < deadline,
            "condition not met within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Seed driving every chaos fault schedule: `HBC_CHAOS_SEED` when set (CI
/// pins it so failures replay bit-for-bit), otherwise a fixed default so
/// local runs are reproducible too.
pub fn chaos_seed() -> u64 {
    std::env::var("HBC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A0_5EED)
}

/// A scoped scratch directory under the system temp root, removed on drop.
/// Unique per process *and* thread so `cargo test`'s parallel runners never
/// collide; the durability suites point gateway logs at it.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "hbc-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        // A leftover from a killed previous run must not leak state in.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
