//! Shared helpers for the socket-level integration suites
//! (`net_loopback.rs`, `chaos_gateway.rs`).
//!
//! Kept in `tests/support/` (not a sibling `.rs` file) so Cargo does not
//! compile it as a test target of its own; each suite pulls it in with
//! `mod support;`.

#![allow(dead_code)]

use std::time::{Duration, Instant};

/// Polls `cond` every millisecond until it returns `true` or `deadline`
/// elapses; panics on timeout. Replaces fixed sleeps so the suites stay fast
/// on idle machines and reliable on loaded ones.
pub fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < deadline,
            "condition not met within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Seed driving every chaos fault schedule: `HBC_CHAOS_SEED` when set (CI
/// pins it so failures replay bit-for-bit), otherwise a fixed default so
/// local runs are reproducible too.
pub fn chaos_seed() -> u64 {
    std::env::var("HBC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A0_5EED)
}
