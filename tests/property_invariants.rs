//! Property-based tests (proptest) on the core data structures and
//! invariants of the framework:
//!
//! * the 2-bit packed projection is a lossless encoding of the dense matrix
//!   and projects identically;
//! * random projection is linear and its integer/float paths agree;
//! * MIT-BIH format-212 and annotation encodings round-trip;
//! * integer membership functions are bounded, symmetric and monotone;
//! * the defuzzification rule is monotone in α (raising α only moves beats
//!   towards *Unknown*), which is the property the α calibration relies on;
//! * beat windowing and downsampling preserve the documented lengths.

use proptest::prelude::*;

use heartbeat_rp::hbc_ecg::beat::{Beat, BeatClass, BeatWindow};
use heartbeat_rp::hbc_ecg::mitbih;
use heartbeat_rp::hbc_embedded::int_classifier::{AlphaQ16, IntegerNfc, MembershipKind};
use heartbeat_rp::hbc_embedded::linear_mf::{
    IntMembership, LinearizedMf, TriangularMf, MF_FULL_SCALE,
};
use heartbeat_rp::hbc_nfc::{GaussianMf, NeuroFuzzyClassifier};
use heartbeat_rp::hbc_rp::{AchlioptasMatrix, PackedProjection};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_projection_roundtrips_and_projects_identically(
        rows in 1usize..24,
        cols in 1usize..120,
        seed in any::<u64>(),
        input_seed in any::<u64>(),
    ) {
        let dense = AchlioptasMatrix::generate(rows, cols, seed);
        let packed = PackedProjection::from_matrix(&dense);
        prop_assert_eq!(packed.to_matrix(), dense.clone());
        prop_assert_eq!(packed.size_bytes(), (rows * cols).div_ceil(4));

        // Pseudo-random integer input derived from the seed (kept small so
        // the accumulators stay far from overflow).
        let input: Vec<i32> = (0..cols)
            .map(|i| {
                let mixed = input_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
                ((mixed >> 33) as i32 % 2048) - 1024
            })
            .collect();
        prop_assert_eq!(packed.project_i32(&input).expect("dims"), dense.project_i32(&input).expect("dims"));
    }

    #[test]
    fn projection_is_linear_and_integer_matches_float(
        seed in any::<u64>(),
        scale in 1i32..50,
    ) {
        let matrix = AchlioptasMatrix::generate(8, 64, seed);
        let a: Vec<i32> = (0..64).map(|i| (i * 7 % 101) - 50).collect();
        let b: Vec<i32> = (0..64).map(|i| (i * 13 % 89) - 44).collect();
        let sum: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + scale * y).collect();

        let pa = matrix.project_i32(&a).expect("dims");
        let pb = matrix.project_i32(&b).expect("dims");
        let psum = matrix.project_i32(&sum).expect("dims");
        for k in 0..8 {
            prop_assert_eq!(psum[k], pa[k] + scale * pb[k], "linearity violated at row {}", k);
        }

        let fa: Vec<f64> = a.iter().map(|&v| v as f64).collect();
        let pf = matrix.project(&fa);
        for k in 0..8 {
            prop_assert!((pf[k] - pa[k] as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn format_212_roundtrips_arbitrary_12bit_channels(
        samples in prop::collection::vec((-2048i32..=2047, -2048i32..=2047), 1..200)
    ) {
        let ch0: Vec<i32> = samples.iter().map(|(a, _)| *a).collect();
        let ch1: Vec<i32> = samples.iter().map(|(_, b)| *b).collect();
        let bytes = mitbih::encode_format_212(&ch0, &ch1);
        let (d0, d1) = mitbih::decode_format_212(&bytes).expect("well-formed stream");
        prop_assert_eq!(d0, ch0);
        prop_assert_eq!(d1, ch1);
    }

    #[test]
    fn annotation_encoding_roundtrips_sorted_beats(
        deltas in prop::collection::vec(1usize..5000, 1..100),
        codes in prop::collection::vec(0u8..3, 100)
    ) {
        let mut sample = 0usize;
        let annotations: Vec<(usize, mitbih::MitAnnotationCode)> = deltas
            .iter()
            .zip(&codes)
            .map(|(d, c)| {
                sample += d;
                let code = match c {
                    0 => mitbih::MitAnnotationCode::Normal,
                    1 => mitbih::MitAnnotationCode::Pvc,
                    _ => mitbih::MitAnnotationCode::Lbbb,
                };
                (sample, code)
            })
            .collect();
        let bytes = mitbih::encode_annotations(&annotations);
        let decoded = mitbih::decode_annotations(&bytes).expect("well-formed stream");
        prop_assert_eq!(decoded.len(), annotations.len());
        for ((s, c), (ds, dc)) in annotations.iter().zip(&decoded) {
            prop_assert_eq!(s, ds);
            prop_assert_eq!(c.code(), dc.code());
        }
    }

    #[test]
    fn integer_membership_functions_are_bounded_symmetric_and_monotone(
        center in -100_000i32..100_000,
        s in 1i32..5_000,
        offset in 0i32..25_000,
    ) {
        for mf in [
            IntMembership::Linearized(LinearizedMf::new(center, s)),
            IntMembership::Triangular(TriangularMf::new(center, s)),
        ] {
            let up = mf.grade(center.saturating_add(offset));
            let down = mf.grade(center.saturating_sub(offset));
            prop_assert_eq!(up, down, "symmetry around the centre");
            prop_assert!(u32::from(up) <= MF_FULL_SCALE);
            // Monotone: one step further from the centre never increases the
            // grade.
            let further = mf.grade(center.saturating_add(offset + 1));
            prop_assert!(further <= up);
            // Peak at the centre.
            prop_assert!(mf.grade(center) >= up);
        }
    }

    #[test]
    fn defuzzification_is_monotone_in_alpha(
        input in prop::collection::vec(-2000i32..2000, 8),
        alpha_lo in 0.0f64..1.0,
        alpha_hi in 0.0f64..1.0,
    ) {
        let (alpha_lo, alpha_hi) = if alpha_lo <= alpha_hi { (alpha_lo, alpha_hi) } else { (alpha_hi, alpha_lo) };
        let rows = (0..8)
            .map(|_| {
                [
                    IntMembership::new(MembershipKind::Linearized, 0, 300),
                    IntMembership::new(MembershipKind::Linearized, 900, 300),
                    IntMembership::new(MembershipKind::Linearized, -900, 300),
                ]
            })
            .collect();
        let classifier = IntegerNfc::new(rows).expect("non-empty");
        let lo = classifier
            .classify(&input, AlphaQ16::from_f64(alpha_lo).expect("range"))
            .expect("dims");
        let hi = classifier
            .classify(&input, AlphaQ16::from_f64(alpha_hi).expect("range"))
            .expect("dims");
        // Raising alpha can only turn a confident decision into Unknown; it
        // can never flip between two confident classes.
        if hi.class != BeatClass::Unknown {
            prop_assert_eq!(hi.class, lo.class);
        }
        if lo.class == BeatClass::Unknown {
            prop_assert_eq!(hi.class, BeatClass::Unknown);
        }
    }

    #[test]
    fn float_classifier_fuzzy_values_form_a_distribution(
        coeffs in prop::collection::vec(-50.0f64..50.0, 8),
        centers in prop::collection::vec(-20.0f64..20.0, 24),
        sigmas in prop::collection::vec(0.1f64..10.0, 24),
    ) {
        let mfs: Vec<[GaussianMf; 3]> = (0..8)
            .map(|k| {
                [
                    GaussianMf::new(centers[3 * k], sigmas[3 * k]),
                    GaussianMf::new(centers[3 * k + 1], sigmas[3 * k + 1]),
                    GaussianMf::new(centers[3 * k + 2], sigmas[3 * k + 2]),
                ]
            })
            .collect();
        let classifier = NeuroFuzzyClassifier::new(mfs).expect("non-empty");
        let fuzzy = classifier.fuzzy_values(&coeffs).expect("dims");
        let sum: f64 = fuzzy.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(fuzzy.iter().all(|v| v.is_finite() && *v >= 0.0));
        // And the decision respects the margin rule at alpha = 0 (never
        // Unknown).
        let decision = classifier.classify(&coeffs, 0.0).expect("dims");
        prop_assert_ne!(decision.class, BeatClass::Unknown);
    }

    #[test]
    fn beat_windowing_and_downsampling_preserve_lengths(
        len in 300usize..2000,
        peak in 0usize..2000,
        factor in 1usize..8,
    ) {
        let signal: Vec<f64> = (0..len).map(|i| (i as f64 * 0.01).sin()).collect();
        let window = BeatWindow::PAPER;
        match window.extract(&signal, peak) {
            Some(samples) => {
                prop_assert_eq!(samples.len(), window.len());
                let beat = Beat::new(samples, BeatClass::Normal);
                let down = beat.downsample(factor);
                prop_assert_eq!(down.samples.len(), beat.samples.len().div_ceil(factor));
            }
            None => {
                prop_assert!(peak < window.pre || peak + window.post > len);
            }
        }
    }
}
