//! Durability: the gateway's ingest log under process crashes.
//!
//! Every scenario drives a real gateway with [`GatewayConfig::wal`] pointed
//! at a scratch directory, kills the process state (drops the gateway), and
//! binds a **fresh** gateway on the same log directory. The invariants:
//!
//! * **crash-safe recovery** — the restarted gateway rebuilds every session
//!   that was open at the kill from the log alone (`sessions_recovered`),
//!   parks it for [`Frame::ResumeSession`], and the owning node re-attaches
//!   *without re-calibrating* (`sessions_opened` stays 0 on the restarted
//!   gateway) and without losing or double-counting a sample;
//! * **bit-identical continuation** — the converged outcome stream after
//!   kill + restart + resume equals the fault-free reference exactly;
//! * **deterministic replay** — [`replay_log`] re-scores the logged streams
//!   through the same firmware into the identical outcome history, for any
//!   worker-thread count;
//! * **report re-fetch** — a client whose link dies *after* `CloseSession`
//!   was processed but before the final `Report` arrived can re-fetch the
//!   cached report (by resume token or by retrying the close) within the
//!   retention window, closing the protocol's last documented hole.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use heartbeat_rp::config::ExperimentConfig;
use heartbeat_rp::hbc_ecg::beat::BeatWindow;
use heartbeat_rp::hbc_ecg::record::{EcgRecord, Lead};
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::firmware::BeatOutcome;
use heartbeat_rp::hbc_embedded::int_classifier::AlphaQ16;
use heartbeat_rp::hbc_embedded::WbsnFirmware;
use heartbeat_rp::hbc_net::proto::{dequantize_mv_into, quantize_mv_into, Frame, FrameDecoder};
use heartbeat_rp::hbc_net::{
    replay_log, Gateway, GatewayConfig, GatewayStats, NodeClient, PROTOCOL_VERSION,
};
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::hbc_wal::WalConfig;
use heartbeat_rp::pipeline::TrainedSystem;
use heartbeat_rp::StreamHub;

mod support;

fn system() -> &'static TrainedSystem {
    static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
}

fn firmware() -> WbsnFirmware {
    let system = system();
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions")
}

/// A single-lead synthetic record passed once through the wire ADC transfer
/// function, so socket replay and local reference consume identical signals.
fn wire_record(seed: u64, beats: usize) -> EcgRecord {
    let mut gen = SyntheticEcg::with_seed(seed);
    let rhythm = gen.rhythm(beats, 0.1, 0.1);
    let mut record = gen.record(seed as u32, &rhythm, 1).expect("record");
    let mut codes = Vec::new();
    let mut exact = Vec::new();
    quantize_mv_into(&record.leads[0], &mut codes);
    dequantize_mv_into(&codes, &mut exact);
    record.leads[0] = exact;
    record
}

/// The fault-free reference: the equivalent `StreamHub` lifecycle with
/// prefix calibration.
fn reference_outcomes(fw: &WbsnFirmware, record: &EcgRecord, calib_len: usize) -> Vec<BeatOutcome> {
    let mut hub = StreamHub::new(fw, record.fs);
    let lead = record.lead(Lead(0)).expect("lead 0");
    let thresholds = hub
        .calibrate_thresholds(&lead[..calib_len])
        .expect("calibrate");
    let id = hub.add_patient(record.id, thresholds);
    hub.ingest(&[(id, lead)]).expect("ingest");
    hub.close_session(id).expect("close").outcomes
}

fn assert_full_match(got: &[BeatOutcome], want: &[BeatOutcome], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: beat count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.peak, w.peak, "{label}: beat {i} peak");
        assert_eq!(g.predicted, w.predicted, "{label}: beat {i} class");
        assert_eq!(g.delineated, w.delineated, "{label}: beat {i} delineated");
        assert_eq!(
            g.fiducials_transmitted, w.fiducials_transmitted,
            "{label}: beat {i} fiducials"
        );
    }
}

/// Runs `body` against a live gateway (flipping the shutdown flag even on
/// panic) and returns the body's result plus the final counters. Same shape
/// as the chaos suite's helper, parameterised so a second "restarted"
/// gateway can reuse the log directory of a first.
fn with_gateway<R>(
    fw: &WbsnFirmware,
    fs: f64,
    config: GatewayConfig,
    body: impl FnOnce(SocketAddr) -> R,
) -> (R, GatewayStats) {
    struct FlipOnDrop<'a>(&'a AtomicBool);
    impl Drop for FlipOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    let shutdown = AtomicBool::new(false);
    let gateway = Gateway::bind("127.0.0.1:0", fw, fs, config).expect("bind");
    let addr = gateway.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| gateway.run(&shutdown).expect("gateway runs"));
        let result = {
            let _flip = FlipOnDrop(&shutdown);
            body(addr)
        };
        let stats = handle.join().expect("gateway thread");
        (result, stats)
    })
}

/// Resumes with a deadline, retrying failed attempts.
fn recover(client: &mut NodeClient, addr: SocketAddr) {
    let start = Instant::now();
    loop {
        match client.reconnect_with_backoff(addr, 4, Duration::from_millis(5)) {
            Ok(()) => return,
            Err(e) => {
                assert!(
                    start.elapsed() < Duration::from_secs(30),
                    "could not resume within the deadline: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn wal_config(dir: &std::path::Path) -> GatewayConfig {
    GatewayConfig {
        wal: Some(WalConfig::new(dir)),
        ..GatewayConfig::default()
    }
}

#[test]
fn kill_mid_ingest_recovers_from_the_log_and_converges() {
    let fw = firmware();
    let record = wire_record(7100, 40);
    let fs = record.fs;
    let calib_len = 2048usize;
    let reference = reference_outcomes(&fw, &record, calib_len);
    assert!(!reference.is_empty(), "reference must emit beats");
    let tmp = support::TempDir::new("wal-kill");

    let lead = record.lead(Lead(0)).expect("lead 0");
    let cut = lead.len() / 2;
    assert!(cut > calib_len, "the kill must land after calibration");

    // Phase 1: stream the first half, drain the acks (everything sent is
    // logged *and* ingested), then the gateway dies — no close, no goodbye.
    let ((mut client, id), gw1) = with_gateway(&fw, fs, wal_config(tmp.path()), |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        client
            .set_io_timeout(Some(Duration::from_millis(750)))
            .expect("io timeout");
        let id = client
            .open_session(record.id, fs, calib_len as u32)
            .expect("open");
        for chunk in lead[..cut].chunks(512) {
            client.send_mv(id, chunk).expect("send");
        }
        let start = Instant::now();
        while client.replay_depth(id) > 0 {
            client.pump().expect("pump");
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "gateway never acked the first half"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        (client, id)
    });
    client.sever();
    assert_eq!(gw1.sessions_opened, 1);
    assert_eq!(gw1.sessions_closed, 0, "the kill preempted the close");

    // Phase 2: a fresh gateway on the same log directory rebuilds the
    // session before accepting a single connection.
    let gateway2 = Gateway::bind("127.0.0.1:0", &fw, fs, wal_config(tmp.path())).expect("rebind");
    assert_eq!(
        gateway2.stats().sessions_recovered,
        1,
        "the logged session must be rebuilt at bind time"
    );
    assert_eq!(gateway2.parked_sessions(), 1, "recovered ⇒ parked");
    let addr2 = gateway2.local_addr().expect("addr");
    let shutdown = AtomicBool::new(false);
    let (summary, gw2) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| gateway2.run(&shutdown).expect("gateway runs"));
        let summary = {
            struct FlipOnDrop<'a>(&'a AtomicBool);
            impl Drop for FlipOnDrop<'_> {
                fn drop(&mut self) {
                    self.0.store(true, Ordering::Release);
                }
            }
            let _flip = FlipOnDrop(&shutdown);
            recover(&mut client, addr2);
            for chunk in lead[cut..].chunks(512) {
                if client.send_mv(id, chunk).is_err() {
                    recover(&mut client, addr2);
                }
            }
            client.close_session(id).expect("close")
        };
        (summary, handle.join().expect("gateway thread"))
    });

    assert_full_match(&summary.outcomes, &reference, "kill mid-ingest");
    assert_eq!(
        summary.report.samples as usize,
        record.len(),
        "every sample counted exactly once across the crash"
    );
    assert_eq!(summary.report.beats as usize, reference.len());
    assert_eq!(
        gw2.sessions_opened, 0,
        "recovery must resume, never re-open (no re-calibration)"
    );
    assert_eq!(gw2.sessions_resumed, 1);
    assert_eq!(gw2.sessions_closed, 1);
}

#[test]
fn kill_during_calibration_recovers_the_partial_stretch() {
    let fw = firmware();
    let record = wire_record(7200, 30);
    let fs = record.fs;
    let calib_len = 2048usize;
    let reference = reference_outcomes(&fw, &record, calib_len);
    let tmp = support::TempDir::new("wal-calib");

    let lead = record.lead(Lead(0)).expect("lead 0");
    let cut = calib_len / 2; // the kill lands before promotion

    let ((mut client, id), gw1) = with_gateway(&fw, fs, wal_config(tmp.path()), |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        client
            .set_io_timeout(Some(Duration::from_millis(750)))
            .expect("io timeout");
        let id = client
            .open_session(record.id, fs, calib_len as u32)
            .expect("open");
        client.send_mv(id, &lead[..cut]).expect("send");
        // No credit flows during calibration, so there is no ack to drain;
        // give the reactor a moment to read (convergence below does not
        // depend on it — unlogged frames sit in the replay buffer).
        std::thread::sleep(Duration::from_millis(100));
        (client, id)
    });
    client.sever();
    assert_eq!(gw1.sessions_opened, 1);

    let gateway2 = Gateway::bind("127.0.0.1:0", &fw, fs, wal_config(tmp.path())).expect("rebind");
    assert_eq!(gateway2.stats().sessions_recovered, 1);
    let addr2 = gateway2.local_addr().expect("addr");
    let shutdown = AtomicBool::new(false);
    let (summary, gw2) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| gateway2.run(&shutdown).expect("gateway runs"));
        let summary = {
            struct FlipOnDrop<'a>(&'a AtomicBool);
            impl Drop for FlipOnDrop<'_> {
                fn drop(&mut self) {
                    self.0.store(true, Ordering::Release);
                }
            }
            let _flip = FlipOnDrop(&shutdown);
            recover(&mut client, addr2);
            for chunk in lead[cut..].chunks(1024) {
                if client.send_mv(id, chunk).is_err() {
                    recover(&mut client, addr2);
                }
            }
            client.close_session(id).expect("close")
        };
        (summary, handle.join().expect("gateway thread"))
    });

    assert_full_match(&summary.outcomes, &reference, "kill during calibration");
    assert_eq!(summary.report.samples as usize, record.len());
    assert_eq!(gw2.sessions_opened, 0);
    assert_eq!(gw2.sessions_resumed, 1);
}

#[test]
fn replay_rescores_the_log_bit_identically_for_any_thread_count() {
    let fw = firmware();
    let record = wire_record(7300, 35);
    let fs = record.fs;
    let calib_len = 2048usize;
    let tmp = support::TempDir::new("wal-replay");

    // Live run: stream the whole record in uneven chunks and close cleanly.
    let (summary, gw) = with_gateway(&fw, fs, wal_config(tmp.path()), |addr| {
        let mut client = NodeClient::connect(addr).expect("connect");
        let id = client
            .open_session(record.id, fs, calib_len as u32)
            .expect("open");
        let lead = record.lead(Lead(0)).expect("lead 0");
        for chunk in lead.chunks(777) {
            client.send_mv(id, chunk).expect("send");
        }
        client.close_session(id).expect("close")
    });
    assert_eq!(gw.sessions_closed, 1);
    assert!(!summary.outcomes.is_empty());

    // Replay the dead gateway's log through the same firmware: one worker,
    // many workers, default policy — all bit-identical to the live run.
    let single = replay_log(tmp.path(), &fw, NonZeroUsize::new(1)).expect("replay single");
    let wide = replay_log(tmp.path(), &fw, NonZeroUsize::new(8)).expect("replay wide");
    let auto = replay_log(tmp.path(), &fw, None).expect("replay auto");
    for (label, report) in [("single", &single), ("wide", &wide), ("auto", &auto)] {
        assert_eq!(report.sessions.len(), 1, "{label}: one logged session");
        assert!(!report.truncated, "{label}: clean log");
        let s = &report.sessions[0];
        assert!(s.closed, "{label}: the close was logged");
        assert!(s.calibrated, "{label}");
        assert_eq!(s.patient_id, record.id, "{label}");
        assert_eq!(s.samples as usize, record.len(), "{label}");
        assert_full_match(&s.outcomes, &summary.outcomes, label);
    }
}

/// Raw-socket helper: blocking-reads frames until `want` matches.
fn read_until(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    want: impl Fn(&Frame) -> bool,
) -> Frame {
    use std::io::Read;
    let mut buf = [0u8; 4096];
    loop {
        while let Some(frame) = decoder.next_frame().expect("valid") {
            if want(&frame) {
                return frame;
            }
        }
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "gateway hung up before the expected frame");
        decoder.feed(&buf[..n]);
    }
}

#[test]
fn lost_report_after_close_is_refetchable_within_the_window() {
    // The formerly documented hole: the link dies after the gateway
    // processed `CloseSession` but before the client read the `Report`.
    // The token must stay good for a re-fetch within the retention window —
    // via resume *and* via a retried close.
    let fw = firmware();
    let record = wire_record(7400, 30);
    let fs = record.fs;
    let fs_millihertz = (fs * 1000.0).round() as u32;
    let calib_len = 2048usize;
    let reference = reference_outcomes(&fw, &record, calib_len);

    let ((), stats) = with_gateway(&fw, fs, GatewayConfig::default(), |addr| {
        // Connection 1: open, stream everything, close — then lose the link
        // without reading a single reply past the open.
        let mut conn = TcpStream::connect(addr).expect("connect");
        let mut decoder = FrameDecoder::new();
        conn.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )
        .expect("hello");
        conn.write_all(
            &Frame::OpenSession {
                patient_id: record.id,
                fs_millihertz,
                calib_len: calib_len as u32,
            }
            .encode(),
        )
        .expect("open");
        let opened = read_until(&mut conn, &mut decoder, |f| {
            matches!(f, Frame::SessionOpened { .. })
        });
        let Frame::SessionOpened { session, token, .. } = opened else {
            unreachable!()
        };
        let mut codes = Vec::new();
        quantize_mv_into(record.lead(Lead(0)).expect("lead 0"), &mut codes);
        let mut sent_frames = 0u32;
        for chunk in codes.chunks(4096) {
            conn.write_all(
                &Frame::Samples {
                    session,
                    seq: sent_frames,
                    samples: chunk.to_vec(),
                }
                .encode(),
            )
            .expect("samples");
            sent_frames += 1;
        }
        conn.write_all(&Frame::CloseSession { session }.encode())
            .expect("close");
        // Half-close: the gateway reads everything (the close is processed,
        // the Report queued) and then drops the connection; every reply —
        // the Report included — is discarded unread. That *is* the lost
        // report.
        conn.shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        {
            use std::io::Read;
            let mut sink = [0u8; 4096];
            while conn.read(&mut sink).map(|n| n > 0).unwrap_or(false) {}
        }

        // Connection 2: re-fetch by resume token. The cached path answers
        // with the full outcome history and the report.
        let mut conn = TcpStream::connect(addr).expect("reconnect");
        let mut decoder = FrameDecoder::new();
        conn.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )
        .expect("hello");
        conn.write_all(
            &Frame::ResumeSession {
                patient_id: record.id,
                session_token: token,
                last_acked_seq: 0,
                outcomes_received: 0,
            }
            .encode(),
        )
        .expect("resume");
        let resumed = read_until(&mut conn, &mut decoder, |f| {
            matches!(f, Frame::SessionResumed { .. } | Frame::Deny { .. })
        });
        let Frame::SessionResumed {
            session: rid,
            next_expected_seq,
            credit,
        } = resumed
        else {
            panic!("re-fetch denied: {resumed:?}");
        };
        assert_eq!(rid, session);
        assert_eq!(
            next_expected_seq, sent_frames,
            "the cached position is the final receive position"
        );
        assert_eq!(credit, 0, "an ended session grants no credit");
        let mut outcomes = Vec::new();
        let report = loop {
            match read_until(&mut conn, &mut decoder, |f| {
                matches!(f, Frame::Outcomes { .. } | Frame::Report { .. })
            }) {
                Frame::Outcomes {
                    session: s,
                    outcomes: mut batch,
                } => {
                    assert_eq!(s, session);
                    outcomes.append(&mut batch);
                }
                Frame::Report { session: s, report } => {
                    assert_eq!(s, session);
                    break report;
                }
                _ => unreachable!(),
            }
        };
        let got: Vec<BeatOutcome> = outcomes
            .into_iter()
            .map(|o| o.to_outcome().expect("valid class code"))
            .collect();
        assert_full_match(&got, &reference, "re-fetched history");
        assert_eq!(report.beats as usize, reference.len());
        assert_eq!(report.samples as usize, record.len());

        // Connection 3: a *retried close* for the same (retired) wire id is
        // answered with the cached report too — idempotent, not a denial.
        let mut conn = TcpStream::connect(addr).expect("reconnect 2");
        let mut decoder = FrameDecoder::new();
        conn.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )
        .expect("hello");
        conn.write_all(&Frame::CloseSession { session }.encode())
            .expect("retried close");
        let again = read_until(&mut conn, &mut decoder, |f| {
            matches!(f, Frame::Report { .. })
        });
        let Frame::Report { session: s, report } = again else {
            unreachable!()
        };
        assert_eq!(s, session);
        assert_eq!(report.beats as usize, reference.len());
        assert_eq!(report.samples as usize, record.len());
    });

    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_closed, 1, "the close was processed once");
    assert_eq!(
        stats.sessions_resumed, 0,
        "the re-fetch is served from the cache, not a live resume"
    );
    assert_eq!(stats.reports_refetched, 2, "once by token, once by close");
    assert_eq!(stats.denials, 0, "no path through this scenario denies");
}
