//! A complete telemetry deployment on loopback: the TCP ingestion gateway
//! (`hbc-net`) serving a fleet of WBSN nodes that replay synthetic patient
//! records over real sockets, with live per-patient NDR/ARR.
//!
//! One process, three roles:
//!
//! 1. the **gateway** thread runs the single-threaded nonblocking reactor,
//!    feeding every connection's samples into the shared `StreamHub` (so
//!    classification fans out over all cores);
//! 2. one **node** thread per patient connects a blocking `NodeClient`,
//!    opens a session (the first seconds calibrate the detection
//!    thresholds, like a node's start-up phase) and replays its record in
//!    ragged chunks under credit-based flow control;
//! 3. the **monitor** (main thread) waits for the nodes, labels the beats
//!    each session received back against the held-back annotations and
//!    prints per-patient and fleet-wide figures of merit.
//!
//! ```text
//! cargo run --release --example telemetry_gateway            # 6 patients
//! cargo run --release --example telemetry_gateway -- paper   # paper-scale training
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use heartbeat_rp::hbc_dsp::window::match_peaks;
use heartbeat_rp::hbc_ecg::record::{EcgRecord, Lead};
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::firmware::BeatOutcome;
use heartbeat_rp::hbc_embedded::{int_classifier::AlphaQ16, WbsnFirmware};
use heartbeat_rp::hbc_net::{Gateway, GatewayConfig, NodeClient, SessionSummary};
use heartbeat_rp::hbc_nfc::EvaluationReport;
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;
use heartbeat_rp::{hbc_ecg::beat::BeatWindow, scale_from_args};

/// Labels received beats against the held-back annotations (position match
/// within the firmware's tolerance) and accumulates the confusion counts.
fn label(record: &EcgRecord, outcomes: &[BeatOutcome]) -> EvaluationReport {
    let tolerance = (0.06 * record.fs) as usize;
    let peaks: Vec<usize> = outcomes.iter().map(|o| o.peak).collect();
    let matching = match_peaks(&peaks, &record.annotations, tolerance);
    let mut report = EvaluationReport::new();
    for (outcome, matched) in outcomes.iter().zip(&matching.matched_annotation) {
        if let Some(ai) = matched {
            report.record(record.annotations[*ai].class, outcome.predicted);
        }
    }
    report
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train off-line and burn the firmware image.
    let config = scale_from_args();
    println!("training the classifier off-line...");
    let system = TrainedSystem::train(&config)?;
    let firmware = WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train)?,
        config.downsample,
        BeatWindow::PAPER,
    )?;

    // 2. A fleet of synthetic patients.
    let patients: Vec<EcgRecord> = (0..6u32)
        .map(|i| {
            let mut generator = SyntheticEcg::with_seed(7000 + u64::from(i));
            let rhythm = generator.rhythm(60 + 12 * i as usize, 0.10, 0.08);
            generator.record(i + 1, &rhythm, 1).expect("record")
        })
        .collect();
    let fs = patients[0].fs;
    let calib_len = (8.0 * fs) as u32;

    // 3. Gateway on an ephemeral loopback port.
    let gateway = Gateway::bind("127.0.0.1:0", &firmware, fs, GatewayConfig::default())?;
    let addr = gateway.local_addr()?;
    println!(
        "gateway listening on {addr} (credit budget {} samples/session)",
        GatewayConfig::default().credit_budget
    );
    let shutdown = AtomicBool::new(false);

    let (summaries, report) = std::thread::scope(|scope| {
        let gateway_thread = scope.spawn(|| gateway.run_with_report(&shutdown).expect("gateway"));

        // 4. One node per patient, each replaying its record in ragged
        //    chunks under credit-based flow control.
        let nodes: Vec<_> = patients
            .iter()
            .map(|record| {
                scope.spawn(move || -> SessionSummary {
                    let mut node = NodeClient::connect(addr).expect("connect");
                    let session = node
                        .open_session(record.id, record.fs, calib_len)
                        .expect("open session");
                    let lead = record.lead(Lead(0)).expect("lead 0");
                    // Ragged replay: chunk lengths cycle through a bursty
                    // pattern, nothing the gateway's parity depends on.
                    let mut at = 0usize;
                    let mut burst = 113usize;
                    while at < lead.len() {
                        let end = (at + burst).min(lead.len());
                        node.send_mv(session, &lead[at..end]).expect("send");
                        at = end;
                        burst = 113 + (burst * 31) % 1361;
                    }
                    node.close_session(session).expect("close")
                })
            })
            .collect();
        let summaries: Vec<SessionSummary> =
            nodes.into_iter().map(|n| n.join().expect("node")).collect();
        shutdown.store(true, Ordering::Release);
        let report = gateway_thread.join().expect("gateway thread");
        (summaries, report)
    });
    let stats = &report.stats;

    // 5. Score what came back over the wire.
    println!("\nper-patient results (beats classified on the gateway, labelled post hoc):");
    println!(
        "{:>8} {:>7} {:>10} {:>8} {:>8}",
        "patient", "beats", "forwarded", "NDR %", "ARR %"
    );
    let mut fleet = EvaluationReport::new();
    let mut transmitted_points = 0usize;
    for (record, summary) in patients.iter().zip(&summaries) {
        let report = label(record, &summary.outcomes);
        println!(
            "{:>8} {:>7} {:>10} {:>8.2} {:>8.2}",
            record.id,
            summary.report.beats,
            summary.report.forwarded,
            100.0 * report.ndr(),
            100.0 * report.arr(),
        );
        transmitted_points += summary
            .outcomes
            .iter()
            .map(|o| o.fiducials_transmitted)
            .sum::<usize>();
        fleet.merge(&report);
    }
    println!(
        "\nfleet: NDR = {:.2} %, ARR = {:.2} % over {} labelled beats; {} fiducial points transmitted",
        100.0 * fleet.ndr(),
        100.0 * fleet.arr(),
        fleet.total(),
        transmitted_points,
    );
    println!(
        "gateway: {} connections, {} frames in / {} out, {} samples in, {} beats out, peak \
         buffer {} samples/session",
        stats.connections,
        stats.frames_in,
        stats.frames_out,
        stats.samples_in,
        stats.beats_out,
        stats.peak_buffered_samples,
    );

    // 6. The shutdown telemetry: the final metrics snapshot (latency
    //    quantiles of every instrumented stage) and the trace-ring tail.
    println!("\ngateway telemetry at shutdown (hbc-obs):");
    println!(
        "{:>34} {:>9} {:>10} {:>10} {:>10}",
        "histogram", "count", "p50", "p90", "p99"
    );
    for name in [
        "hbc_gateway_beat_to_outcome_micros",
        "hbc_gateway_sweep_micros",
        "hbc_gateway_frame_micros",
        "hbc_gateway_ingest_batch_micros",
        "hbc_hub_ingest_micros",
        "hbc_stage_conditioning_nanos",
        "hbc_stage_projection_nanos",
        "hbc_stage_classify_nanos",
        "hbc_stage_delineation_nanos",
    ] {
        let Some(h) = report.metrics.histogram(name) else {
            continue;
        };
        println!(
            "{:>34} {:>9} {:>10} {:>10} {:>10}",
            name,
            h.count(),
            h.p50(),
            h.p90(),
            h.p99()
        );
    }
    let trace = &report.trace;
    let tail = &trace[trace.len().saturating_sub(12)..];
    println!(
        "\ntrace-ring tail ({} of {} events):",
        tail.len(),
        trace.len()
    );
    for rec in tail {
        println!("  tick={:<6} {}", rec.tick, rec.event);
    }
    // Abnormal beats ship up to nine fiducial points, normal ones only the
    // peak — the transmission asymmetry the paper's radio budget rests on.
    assert!(transmitted_points >= fleet.total());
    Ok(())
}
