//! Section IV-E — energy-efficiency improvement of the classifier-gated WBSN
//! over an always-on delineation node.
//!
//! ```text
//! cargo run --release --example energy_report            # quick scale
//! cargo run --release --example energy_report -- paper   # full scale (slow)
//! ```

use heartbeat_rp::experiments::energy_report;
use heartbeat_rp::scale_from_args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = scale_from_args();
    let experiment = energy_report(&config)?;
    println!("{experiment}");
    println!(
        "absolute session energies: compute {:.1} -> {:.1} mJ, radio {:.1} -> {:.1} mJ",
        experiment.report.baseline_compute_mj,
        experiment.report.gated_compute_mj,
        experiment.report.baseline_radio_mj,
        experiment.report.gated_radio_mj
    );
    Ok(())
}
