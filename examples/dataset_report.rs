//! Table I — dataset composition report.
//!
//! ```text
//! cargo run --release --example dataset_report            # quick scale
//! cargo run --release --example dataset_report -- paper   # exact Table I sizes
//! ```

use heartbeat_rp::experiments::table1_composition;
use heartbeat_rp::scale_from_args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = scale_from_args();
    let report = table1_composition(&config)?;
    println!("{report}");
    println!("total beats: {}", report.total());
    Ok(())
}
