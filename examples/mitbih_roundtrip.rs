//! MIT-BIH tooling demo: encode a synthetic record into the PhysioBank
//! format-212 + annotation byte formats, decode it back, and run the peak
//! detector on the decoded signal.
//!
//! When the real MIT-BIH Arrhythmia Database is available on disk, the same
//! `read_record` / `record_from_bytes` entry points load it directly; this
//! example exercises the identical code path without requiring the download.
//!
//! ```text
//! cargo run --release --example mitbih_roundtrip
//! ```

use heartbeat_rp::hbc_dsp::{MorphologicalFilter, PeakDetector};
use heartbeat_rp::hbc_ecg::mitbih::{
    encode_annotations, encode_format_212, record_from_bytes, MitAnnotationCode, DEFAULT_ADC_GAIN,
    DEFAULT_ADC_ZERO,
};
use heartbeat_rp::hbc_ecg::record::Lead;
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_ecg::BeatClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate a two-lead recording and express it in ADC units.
    let mut generator = SyntheticEcg::with_seed(7);
    let rhythm = generator.rhythm(40, 0.1, 0.1);
    let record = generator.record(207, &rhythm, 2)?;
    let to_adc = |mv: f64| ((mv * DEFAULT_ADC_GAIN) as i32 + DEFAULT_ADC_ZERO).clamp(-2048, 2047);
    let ch0: Vec<i32> = record.lead(Lead(0))?.iter().map(|&s| to_adc(s)).collect();
    let ch1: Vec<i32> = record.lead(Lead(1))?.iter().map(|&s| to_adc(s)).collect();

    // Encode signal and annotations into the PhysioBank byte formats.
    let dat = encode_format_212(&ch0, &ch1);
    let atr: Vec<(usize, MitAnnotationCode)> = record
        .annotations
        .iter()
        .map(|a| {
            let code = match a.class {
                BeatClass::Normal => MitAnnotationCode::Normal,
                BeatClass::PrematureVentricular => MitAnnotationCode::Pvc,
                BeatClass::LeftBundleBranchBlock => MitAnnotationCode::Lbbb,
                BeatClass::Unknown => MitAnnotationCode::Other(13),
            };
            (a.sample, code)
        })
        .collect();
    let atr_bytes = encode_annotations(&atr);
    println!(
        "encoded record 207: {} signal bytes (format 212), {} annotation bytes",
        dat.len(),
        atr_bytes.len()
    );

    // Decode it back exactly as a real .dat/.atr pair would be read.
    let decoded = record_from_bytes(207, &dat, &atr_bytes, DEFAULT_ADC_GAIN, DEFAULT_ADC_ZERO)?;
    println!(
        "decoded {} samples x {} leads, {} beat annotations",
        decoded.len(),
        decoded.num_leads(),
        decoded.annotations.len()
    );

    // Run the embedded conditioning chain on the decoded signal.
    let filtered =
        MorphologicalFilter::for_sampling_rate(decoded.fs).apply(decoded.lead(Lead(0))?)?;
    let peaks = PeakDetector::new(decoded.fs).detect(&filtered)?;
    println!(
        "peak detector found {} beats ({} annotated)",
        peaks.len(),
        decoded.annotations.len()
    );
    Ok(())
}
