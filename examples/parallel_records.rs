//! Multi-record parallel evaluation: trains the quick system, generates a
//! fleet of annotated synthetic records (one per "patient") and scores all
//! of them concurrently on every core through the evaluation engine,
//! printing per-record and aggregate figures plus the measured speed-up over
//! the single-threaded reference pass.
//!
//! ```text
//! cargo run --release --example parallel_records          # quick scale
//! cargo run --release --example parallel_records paper    # Table I scale
//! ```

use heartbeat_rp::engine::Engine;
use heartbeat_rp::hbc_ecg::beat::BeatWindow;
use heartbeat_rp::hbc_ecg::record::{EcgRecord, Lead};
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::TrainedSystem;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = heartbeat_rp::scale_from_args();
    println!("training the quick PC + WBSN system ...");
    let system = TrainedSystem::train(&config)?;

    // A fleet of synthetic ambulatory records with V/L arrhythmias
    // interleaved at realistic rates.
    let patients = 8;
    let beats_per_record = 400;
    println!("generating {patients} annotated records x {beats_per_record} beats ...");
    // Offset keeps the record-generation stream away from the dataset stream.
    let mut generator = SyntheticEcg::with_seed(config.seed ^ 0xF1EE7);
    let records: Vec<EcgRecord> = (0..patients)
        .map(|i| {
            let rhythm = generator.rhythm(beats_per_record, 0.08, 0.07);
            generator.record(200 + i, &rhythm, 2)
        })
        .collect::<Result<_, _>>()?;

    let sequential = Engine::sequential();
    let parallel = Engine::default();

    let start = Instant::now();
    let reference =
        sequential.evaluate_records(&system.wbsn, &records, Lead(0), BeatWindow::PAPER)?;
    let sequential_time = start.elapsed();

    let start = Instant::now();
    let report = parallel.evaluate_records(&system.wbsn, &records, Lead(0), BeatWindow::PAPER)?;
    let parallel_time = start.elapsed();

    assert_eq!(
        report, reference,
        "parallel evaluation must be bit-identical"
    );

    println!();
    println!("record      beats      NDR %      ARR %");
    for record in &report.per_record {
        println!(
            "{:<10} {:>6} {:>10.2} {:>10.2}",
            record.record_id,
            record.beats,
            100.0 * record.report.ndr(),
            100.0 * record.report.arr()
        );
    }
    println!(
        "merged     {:>6} {:>10.2} {:>10.2}",
        report.total_beats(),
        100.0 * report.merged.ndr(),
        100.0 * report.merged.arr()
    );
    println!();
    println!(
        "sequential: {sequential_time:>10.2?}   parallel ({} workers): {parallel_time:>10.2?}   speed-up: {:.2}x",
        parallel.workers_for(records.len()),
        sequential_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}
