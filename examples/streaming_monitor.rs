//! Live fleet monitoring: many patients streaming ECG into a [`StreamHub`],
//! each served by a push-based [`StreamingFirmware`] session with bounded
//! memory, scored concurrently over all cores.
//!
//! The simulation plays each patient's recording forward one second per
//! round — the hub never sees more than a chunk at a time, exactly like a
//! service terminating live sensor streams — and prints a rolling fleet
//! status. At the end, per-patient and fleet-wide NDR/ARR are computed by
//! matching the emitted beats against the (held-back) annotations, and the
//! streamed results are cross-checked against the batch firmware.
//!
//! ```text
//! cargo run --release --example streaming_monitor            # 8 patients
//! cargo run --release --example streaming_monitor -- paper   # paper-scale training
//! ```

use heartbeat_rp::hbc_ecg::record::{Annotation, EcgRecord, Lead};
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::{int_classifier::AlphaQ16, WbsnFirmware};
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;
use heartbeat_rp::stream::{SessionId, StreamHub};
use heartbeat_rp::{hbc_ecg::beat::BeatWindow, scale_from_args};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the classifier off-line and burn the firmware image.
    let config = scale_from_args();
    println!("training the classifier off-line...");
    let system = TrainedSystem::train(&config)?;
    let firmware = WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train)?,
        config.downsample,
        BeatWindow::PAPER,
    )?;

    // 2. A fleet of synthetic patients, each with their own rhythm mix.
    let patients: Vec<EcgRecord> = (0..8u32)
        .map(|i| {
            let mut generator = SyntheticEcg::with_seed(4000 + u64::from(i));
            let rhythm = generator.rhythm(80 + 10 * i as usize, 0.10, 0.08);
            generator.record(i + 1, &rhythm, 1).expect("record")
        })
        .collect();
    let fs = patients[0].fs;

    // 3. Register one streaming session per patient; thresholds are
    //    calibrated per patient from the first seconds of their signal,
    //    like a node's start-up calibration phase.
    let mut hub = StreamHub::new(&firmware, fs);
    let calibration_window = (8.0 * fs) as usize;
    let ids: Vec<SessionId> = patients
        .iter()
        .map(|record| {
            let lead = record.lead(Lead(0)).expect("lead 0");
            let stretch = &lead[..calibration_window.min(lead.len())];
            let thresholds = hub.calibrate_thresholds(stretch).expect("calibration");
            hub.add_patient(record.id, thresholds)
        })
        .collect();
    println!(
        "serving {} live sessions ({} worker threads available)",
        hub.num_sessions(),
        std::thread::available_parallelism().map_or(1, usize::from),
    );

    // 4. Play the recordings forward one second per round.
    let chunk = fs as usize;
    let longest = patients.iter().map(EcgRecord::len).max().unwrap_or(0);
    let mut offset = 0;
    let mut round = 0usize;
    while offset < longest {
        let feeds: Vec<(SessionId, &[f64])> = patients
            .iter()
            .zip(&ids)
            .filter_map(|(record, &id)| {
                let lead = record.lead(Lead(0)).expect("lead 0");
                (offset < lead.len()).then(|| (id, &lead[offset..(offset + chunk).min(lead.len())]))
            })
            .collect();
        hub.ingest(&feeds)?;
        offset += chunk;
        round += 1;
        if round.is_multiple_of(20) {
            println!(
                "  t = {:>4} s: {:>4} beats classified across {} live streams",
                round,
                hub.total_beats(),
                feeds.len()
            );
        }
    }
    hub.finish();

    // 5. Score the fleet: per-session labelling against the annotations,
    //    merged in session order (bit-identical for any thread count).
    let tolerance = (0.06 * fs) as usize;
    println!();
    println!("patient   beats  forwarded     NDR      ARR");
    for (record, &id) in patients.iter().zip(&ids) {
        let outcomes = hub.outcomes(id)?;
        let forwarded = outcomes.iter().filter(|o| o.delineated).count();
        let report = hub.session_report(id, &record.annotations, tolerance)?;
        println!(
            "  #{:<5} {:>6} {:>10} {:>7.2}% {:>7.2}%",
            hub.patient_id(id)?,
            outcomes.len(),
            forwarded,
            100.0 * report.ndr(),
            100.0 * report.arr(),
        );
    }
    let truths: Vec<(SessionId, &[Annotation])> = patients
        .iter()
        .zip(&ids)
        .map(|(record, &id)| (id, record.annotations.as_slice()))
        .collect();
    let fleet = hub.merged_report(&truths, tolerance)?;
    println!(
        "  fleet  {:>6} beats labelled    NDR {:>6.2}%  ARR {:>6.2}%",
        fleet.total(),
        100.0 * fleet.ndr(),
        100.0 * fleet.arr(),
    );

    // 6. Cross-check: the streamed fleet report equals scoring each record
    //    with the batch firmware (the parity the test suite guarantees).
    let mut batch_total = 0usize;
    for record in &patients {
        batch_total += firmware.process_record(record)?.beats.len();
    }
    println!();
    println!(
        "cross-check: streaming emitted {} beats, batch firmware {} beats",
        hub.total_beats(),
        batch_total
    );
    Ok(())
}
