//! Table II — Normal Discard Rate at ARR ≥ 97 % for 8/16/32 coefficients,
//! comparing the floating-point PC classifier, the integer WBSN classifier
//! and the PCA baseline.
//!
//! ```text
//! cargo run --release --example table2_coefficients            # quick scale
//! cargo run --release --example table2_coefficients -- paper   # full scale (slow)
//! cargo run --release --example table2_coefficients -- 0.05    # 5 % of the test set
//! ```

use heartbeat_rp::experiments::table2_ndr;
use heartbeat_rp::scale_from_args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = scale_from_args();
    println!(
        "Sweeping coefficient counts {:?} over {} test beats...",
        config.coefficient_sweep,
        config.dataset.test.total()
    );
    let report = table2_ndr(&config)?;
    println!();
    println!("{report}");
    println!(
        "largest NDR gap between the PC and WBSN rows: {:.2} percentage points",
        100.0 * report.max_pc_wbsn_gap()
    );
    Ok(())
}
