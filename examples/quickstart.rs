//! Quickstart: train the RP-based heartbeat classifier end to end and report
//! its figures of merit.
//!
//! ```text
//! cargo run --release --example quickstart            # quick scale
//! cargo run --release --example quickstart -- paper   # full Table I scale
//! cargo run --release --example quickstart -- 0.05    # 5 % of the test set
//! ```

use heartbeat_rp::pipeline::TrainedSystem;
use heartbeat_rp::scale_from_args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = scale_from_args();
    println!(
        "Training the RP + neuro-fuzzy classifier ({} coefficients, {} training beats)...",
        config.coefficients,
        config.dataset.training1.total() + config.dataset.training2.total()
    );

    let system = TrainedSystem::train(&config)?;

    let pc = system.evaluate_pc_on_test()?;
    let wbsn = system.evaluate_wbsn_on_test()?;

    println!();
    println!("PC (floating point, Gaussian MFs, 360 Hz windows)");
    println!(
        "  NDR = {:6.2} %   ARR = {:6.2} %",
        100.0 * pc.ndr(),
        100.0 * pc.arr()
    );
    println!("{}", pc.matrix_report());
    println!("WBSN (integer, linearised MFs, 90 Hz windows, 2-bit packed projection)");
    println!(
        "  NDR = {:6.2} %   ARR = {:6.2} %",
        100.0 * wbsn.ndr(),
        100.0 * wbsn.arr()
    );
    println!("{}", wbsn.matrix_report());

    println!(
        "projection memory: {} bytes packed ({} bytes unpacked), classifier tables: {} bytes",
        system.wbsn.projection.size_bytes(),
        system.wbsn.projection.unpacked_size_bytes(),
        system.wbsn.classifier.parameter_table_bytes()
    );
    Ok(())
}
