//! Figure 5 — NDR/ARR pareto fronts for Gaussian, linearised and triangular
//! membership functions (8 coefficients, 50 samples at 90 Hz).
//!
//! ```text
//! cargo run --release --example figure5_pareto            # quick scale
//! cargo run --release --example figure5_pareto -- paper   # full scale (slow)
//! ```

use heartbeat_rp::experiments::{figure5_pareto, MfFamily};
use heartbeat_rp::scale_from_args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = scale_from_args();
    let report = figure5_pareto(&config)?;
    println!("{report}");
    for family in [
        MfFamily::Gaussian,
        MfFamily::Linearized,
        MfFamily::Triangular,
    ] {
        match report.ndr_at_arr(family, 0.97) {
            Some(ndr) => println!("{family:>14}: NDR at ARR >= 97 % = {:.2} %", 100.0 * ndr),
            None => println!("{family:>14}: never reaches 97 % ARR on this sweep"),
        }
    }
    Ok(())
}
