//! Table III — code size and duty cycle of the embedded sub-systems on the
//! IcyHeart platform model (6 MHz), with delineation gated by the trained
//! classifier.
//!
//! ```text
//! cargo run --release --example table3_runtime            # quick scale
//! cargo run --release --example table3_runtime -- paper   # full scale (slow)
//! ```

use heartbeat_rp::experiments::table3_runtime;
use heartbeat_rp::scale_from_args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = scale_from_args();
    let report = table3_runtime(&config)?;
    println!("{report}");
    Ok(())
}
