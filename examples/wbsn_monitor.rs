//! WBSN monitoring scenario (Figure 6): stream a long three-lead synthetic
//! recording through the complete embedded firmware — filtering, peak
//! detection, RP classification and classifier-gated multi-lead delineation —
//! and report what the node would have computed and transmitted.
//!
//! ```text
//! cargo run --release --example wbsn_monitor              # ~3 minutes of ECG
//! cargo run --release --example wbsn_monitor -- paper     # trains at paper scale first
//! ```

use heartbeat_rp::hbc_ecg::record::Lead;
use heartbeat_rp::hbc_ecg::synthetic::SyntheticEcg;
use heartbeat_rp::hbc_embedded::{int_classifier::AlphaQ16, WbsnFirmware};
use heartbeat_rp::hbc_rp::PackedProjection;
use heartbeat_rp::pipeline::TrainedSystem;
use heartbeat_rp::scale_from_args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the classifier off-line (the PC half of Figure 2).
    let config = scale_from_args();
    println!("training the classifier off-line...");
    let system = TrainedSystem::train(&config)?;

    // 2. Burn the trained artefacts into a firmware image.
    let firmware = WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train)?,
        config.downsample,
        heartbeat_rp::hbc_ecg::beat::BeatWindow::PAPER,
    )?;

    // 3. Acquire a three-lead ambulatory recording (synthetic stand-in for a
    //    patient wearing the node) with occasional PVCs and LBBB beats.
    let mut generator = SyntheticEcg::with_seed(2026);
    let rhythm = generator.rhythm(200, 0.08, 0.08);
    let record = generator.record(100, &rhythm, 3)?;
    println!(
        "acquired record {}: {:.1} s of {}-lead ECG, {} annotated beats",
        record.id,
        record.duration_s(),
        record.num_leads(),
        record.annotations.len()
    );

    // 4. Run the node.
    let report = firmware.process_record(&record)?;

    println!();
    println!("node summary");
    println!("  beats detected            : {}", report.beats.len());
    println!(
        "  beats forwarded to delineation: {} ({:.1} %)",
        report.stats.forwarded_beats,
        100.0 * report.forwarded_fraction()
    );
    println!(
        "  NDR on this recording     : {:.2} %",
        100.0 * report.ndr()
    );
    println!(
        "  ARR on this recording     : {:.2} %",
        100.0 * report.arr()
    );
    println!(
        "  duty cycle (gated / always-on delineation): {:.3} / {:.3}",
        report.duty.subsystem3, report.duty.subsystem2
    );
    println!(
        "  energy savings: compute {:.1} %, radio {:.1} %, node total {:.1} %",
        100.0 * report.energy.compute_reduction(),
        100.0 * report.energy.radio_reduction(),
        100.0 * report.energy.total_node_reduction()
    );

    // 5. Show the first few per-beat decisions like a node log would.
    println!();
    println!("first beats (sample, truth, predicted, delineated, fiducials sent):");
    let lead0_len = record.lead(Lead(0))?.len();
    for beat in report.beats.iter().take(12) {
        println!(
            "  {:>7} / {:>7}   truth {}   predicted {}   delineated {}   fiducials {}",
            beat.peak,
            lead0_len,
            beat.truth.map(|c| c.symbol()).unwrap_or('?'),
            beat.predicted.symbol(),
            beat.delineated,
            beat.fiducials_transmitted
        );
    }
    Ok(())
}
