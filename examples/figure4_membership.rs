//! Figure 4 — Gaussian membership function vs its 4-segment linear
//! approximation and the simpler triangular interpolation.
//!
//! Prints the three curves as a CSV series (offset in σ units, then the three
//! normalised grades) followed by the approximation-error summary.
//!
//! ```text
//! cargo run --release --example figure4_membership
//! ```

use heartbeat_rp::experiments::figure4_curves;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let curves = figure4_curves(48)?;
    println!("offset_sigma,gaussian,linearized,triangular");
    for i in 0..curves.offsets_sigma.len() {
        println!(
            "{:.3},{:.4},{:.4},{:.4}",
            curves.offsets_sigma[i], curves.gaussian[i], curves.linearized[i], curves.triangular[i]
        );
    }
    println!();
    println!("{curves}");
    Ok(())
}
