//! Offline shim for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build container has no registry access, so the real `criterion` crate
//! cannot be fetched. This shim keeps the nine bench targets compiling and
//! running under `cargo bench` with a simple wall-clock harness: each
//! benchmark runs a short warm-up followed by `sample_size` timed samples and
//! prints the per-iteration mean and min. It intentionally implements only
//! what the benches call: `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{bench_function, bench_with_input, sample_size, finish}`,
//! `Bencher::iter`, `BenchmarkId::new`, `black_box` and the two macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier re-exported from std.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group (name + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration to populate caches and lazy statics.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Sample-count override for quick smoke runs: `HBC_BENCH_SAMPLES=2 cargo
/// bench` caps every benchmark at two timed samples (CI uses this to compile
/// and execute all bench targets cheaply).
fn sample_cap() -> Option<usize> {
    std::env::var("HBC_BENCH_SAMPLES").ok()?.parse().ok()
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let samples = sample_cap().map_or(samples, |cap| samples.min(cap.max(1)));
    // Calibrate the iteration count so one sample takes ≳1 ms but the whole
    // benchmark stays fast even for micro-benches.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples.max(1) {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per = bencher.elapsed / iters as u32;
        best = best.min(per);
        total += per;
    }
    let mean = total / samples.max(1) as u32;
    println!("bench {label:<48} mean {mean:>12.2?}   min {best:>12.2?}   ({samples} samples x {iters} iters)");
}

/// Group of related benchmarks sharing a common name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Registers and immediately runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; reporting happens eagerly).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (no-op in the shim).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one stand-alone benchmark with the default sample count.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 10, &mut f);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Prints the final summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion's
/// macro. When the harness is invoked by `cargo test` (with `--test`), the
/// benchmarks are skipped so test runs stay fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_ids_format() {
        let mut c = Criterion::default().configure_from_args();
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(2);
            group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
            group.bench_with_input(BenchmarkId::new("param", 8), &8usize, |b, &k| {
                b.iter(|| black_box(k * 2))
            });
            ran += 1;
            group.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| black_box(3 * 3)));
        assert_eq!(ran, 1);
        assert_eq!(BenchmarkId::new("f", 32).name, "f/32");
        assert_eq!(BenchmarkId::from_parameter(4).name, "4");
    }
}
