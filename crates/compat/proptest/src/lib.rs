//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build container has no registry access, so the real `proptest` crate
//! cannot be fetched. This shim keeps `tests/property_invariants.rs`
//! compiling and meaningful: the `proptest!` macro expands each property into
//! an ordinary `#[test]` that draws `ProptestConfig::cases` random inputs
//! from the declared strategies (seeded deterministically from the test name,
//! so failures are reproducible) and reports the first failing case. Input
//! shrinking — the main luxury of real proptest — is intentionally omitted;
//! the failure message instead prints every generated argument.
//!
//! Implemented surface: integer/float range strategies, `any::<T>()` for the
//! primitive integers, tuple strategies, `prop::collection::vec` with either
//! a fixed size or a size range, `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `label`
    /// (typically the test name), so every run replays the same cases.
    pub fn deterministic(label: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for byte in label.bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A source of random values of one type (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy producing any value of a primitive type (proptest's `any`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the `any::<T>()` strategy for a supported primitive type.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Number of elements a collection strategy may produce.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-property configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), left, right
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{} (both: `{:?}`)",
            format!($($fmt)+), left
        );
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg,)*
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(error) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, error, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 1usize..10,
            b in -5i32..=5,
            x in 0.25f64..0.75,
            raw in any::<u64>(),
            pair in (0u8..4, 10usize..20),
            items in prop::collection::vec(0i32..100, 3..7),
            fixed in prop::collection::vec(0u8..2, 5),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert_eq!(raw, raw);
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
            prop_assert!(items.len() >= 3 && items.len() < 7);
            prop_assert_eq!(fixed.len(), 5);
            prop_assert_ne!(a, 0);
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = TestRng::deterministic("label");
        let mut b = TestRng::deterministic("label");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn prop_assert_macros_produce_errors() {
        fn check(v: u8) -> Result<(), TestCaseError> {
            prop_assert!(v > 10, "v was {}", v);
            prop_assert_eq!(v, 11u8);
            prop_assert_ne!(v, 12u8);
            Ok(())
        }
        assert!(check(1).is_err());
        assert!(check(11).is_ok());
        assert!(check(12).unwrap_err().to_string().contains("left: `12`"));
    }
}
