//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The container this repository builds in has no access to crates.io, so the
//! real `rand` crate cannot be fetched. This shim provides the same *names*
//! (`Rng`, `SeedableRng`, `rngs::StdRng`) with a deterministic, seedable
//! xoshiro256++ generator behind them. The numeric streams differ from
//! upstream `rand`, but every consumer in this workspace only relies on the
//! streams being uniform, deterministic per seed and independent across
//! seeds — which xoshiro256++ provides with a large margin.
//!
//! Only the calls the workspace actually makes are implemented:
//!
//! * `StdRng::seed_from_u64(seed)`
//! * `rng.gen::<f64>()` / `rng.gen::<bool>()` / integer `gen`
//! * `rng.gen_range(lo..hi)` for the primitive integer types and `f64`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from an `Rng` (stand-in for rand's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly (stand-in for rand's `SampleRange`).
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value inside the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value interface (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators (subset of rand 0.8's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64
    /// exactly once so nearby seeds yield unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Bundled generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Upstream `StdRng` is ChaCha12; this shim trades cryptographic quality
    /// (not needed anywhere in the workspace) for a dependency-free,
    /// statistically solid generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<f64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<f64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..6u8);
            assert!(v < 6);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bins hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let u = rng.gen_range(10usize..11);
            assert_eq!(u, 10);
        }
    }
}
