//! # hbc-par — deterministic work-stealing parallelism
//!
//! The substrate the rest of the workspace parallelises on: a scoped-thread
//! runner that spreads independent work items over all cores while keeping
//! the result *bit-identical* to a sequential pass for any thread count.
//!
//! It started life inside `hbc_core::engine`, but training (`hbc-nfc`) needs
//! the same runner and must not depend on the framework crate, so the generic
//! half lives here. `hbc_core::engine` re-bases its beat/record evaluation on
//! this crate and adds the domain-specific batching and report merging on
//! top.
//!
//! Design constraints:
//!
//! * **Determinism** — results land in per-index slots and are read back in
//!   submission order, so [`Par::map`] returns exactly what a sequential
//!   `items.iter().map(f).collect()` would, regardless of scheduling. Any
//!   ordered reduction over the output (report merges, GA selection) is
//!   therefore bit-identical to the sequential run.
//! * **Dynamic load balance** — workers repeatedly claim the next unclaimed
//!   index from a shared atomic cursor (shared-queue work stealing), so one
//!   slow item never stalls the rest of the batch.
//! * **No external dependencies** — the build environment has no registry
//!   access, so the runner uses `std::thread::scope` instead of rayon. The
//!   API is deliberately rayon-shaped (`map`-style combinators) so a future
//!   PR can swap the substrate without touching call sites.
//! * **No `'static` bounds** — a [`Par`] holds no threads between calls; each
//!   call spins up a scoped pool and tears it down on return, so closures may
//!   freely borrow datasets and trained models from the caller's stack.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Work-stealing parallel runner.
///
/// Cheap to construct and `Copy`; the only state is the thread-count policy.
///
/// ```
/// use hbc_par::Par;
///
/// let squares = Par::default().map(&[1, 2, 3, 4], |&x: &i32| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Par {
    threads: Option<NonZeroUsize>,
}

impl Par {
    /// A runner using one worker per available core.
    pub fn new() -> Self {
        Par::default()
    }

    /// A runner with an explicit thread-count policy; `None` means one
    /// worker per available core.
    pub fn with_threads(threads: Option<NonZeroUsize>) -> Self {
        Par { threads }
    }

    /// A runner pinned to one worker — the reference sequential path that
    /// parallel runs are asserted bit-identical against.
    pub fn sequential() -> Self {
        Par {
            threads: NonZeroUsize::new(1),
        }
    }

    /// The configured thread-count policy (`None` = all cores).
    pub fn threads(&self) -> Option<NonZeroUsize> {
        self.threads
    }

    /// The number of workers a call on `items` items would use.
    pub fn workers_for(&self, items: usize) -> usize {
        let hw = self.threads.map(NonZeroUsize::get).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        hw.min(items).max(1)
    }

    /// Applies `f` to every item, returning the results in item order.
    ///
    /// Work is distributed dynamically: each worker repeatedly claims the
    /// next unclaimed index from a shared atomic cursor, so a slow item (a
    /// long record, an expensive training candidate) never stalls the others.
    /// Results land in per-index slots, making the output order — and
    /// therefore any ordered reduction over it — independent of scheduling.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.workers_for(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else {
                        break;
                    };
                    let result = f(item);
                    *slots[index]
                        .lock()
                        .expect("result slot poisoned: a worker panicked") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned: a worker panicked")
                    .expect("every index below the cursor was filled")
            })
            .collect()
    }

    /// Fallible [`Par::map`]: short-circuits on the first error *in item
    /// order* (all items still run, but the reported error is deterministic).
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing item.
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        self.map(items, f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Barrier;

    fn four_workers() -> Par {
        Par::with_threads(NonZeroUsize::new(4))
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = four_workers().map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(doubled, Par::sequential().map(&items, |&x| x * 2));
        assert!(Par::default().map(&[] as &[usize], |&x| x).is_empty());
    }

    #[test]
    fn try_map_reports_the_first_error_in_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let failed = four_workers().try_map(&items, |&x| -> Result<usize, String> {
            if x % 10 == 3 {
                Err(format!("bad item {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(failed.expect_err("items 3, 13, ... fail"), "bad item 3");
        let ok = four_workers().try_map(&items, |&x| Ok::<usize, String>(x));
        assert_eq!(ok.expect("no failures"), items);
    }

    #[test]
    fn workers_never_exceed_items() {
        let par = Par::default();
        assert_eq!(par.workers_for(0), 1);
        assert_eq!(par.workers_for(1), 1);
        assert!(par.workers_for(10_000) >= 1);
        let two = Par::with_threads(NonZeroUsize::new(2));
        assert_eq!(two.workers_for(10_000), 2);
        assert_eq!(Par::sequential().workers_for(10_000), 1);
        assert_eq!(two.threads(), NonZeroUsize::new(2));
    }

    #[test]
    fn map_runs_items_on_distinct_threads() {
        // Two items rendezvous on a barrier: the map can only complete if two
        // workers claim one item each and reach the barrier concurrently, so
        // completion proves genuine multi-threaded execution.
        let barrier = Barrier::new(2);
        let ids = Par::with_threads(NonZeroUsize::new(2)).map(&[0, 1], |_| {
            barrier.wait();
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert_eq!(distinct.len(), 2);
    }
}
