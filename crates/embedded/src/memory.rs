//! Code-size and memory-footprint model (the left column of Table III).
//!
//! Code size is a property of the compiled reference firmware, not of the
//! algorithms themselves, so the per-stage *code* constants below are
//! calibrated to the figures the paper reports for the icyflex
//! implementation of Rincón et al. (Table III). The *data* contributions —
//! the packed projection matrix, the membership parameter table, the filter
//! and delineation working buffers — are computed from the actual structures
//! built by this repository, which is how the model exposes the memory impact
//! of the design choices the paper discusses (2-bit packing, downsampling,
//! coefficient count).

use hbc_rp::PackedProjection;

use crate::int_classifier::IntegerNfc;

/// Bytes in a kilobyte, as used by the paper's tables.
pub const KIB: f64 = 1024.0;

/// Code-size constants (bytes) calibrated from Table III of the paper.
///
/// The RP-classifier row of Table III is 1.64 KB *including* its data tables
/// for 8 coefficients at 50 samples; the constant below is the code-only part
/// obtained by subtracting the computed table sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeSizeModel {
    /// Code bytes of the RP + NFC classification kernel (excluding its data
    /// tables).
    pub classifier_code: usize,
    /// Code bytes of the single-lead filtering + peak-detection front-end.
    pub conditioning_code: usize,
    /// Code bytes of the multi-lead MMD delineator.
    pub delineation_code: usize,
    /// Bytes of working RAM per lead of streaming buffers (filter history,
    /// wavelet scales, beat window).
    pub buffer_bytes_per_lead: usize,
}

impl Default for CodeSizeModel {
    fn default() -> Self {
        CodeSizeModel {
            // 1.64 KB total for the 8-coefficient classifier − ≈0.25 KB of
            // tables ⇒ ≈1.4 KB of code.
            classifier_code: 1_432,
            // Sub-system (1) is 30.29 KB; removing the classifier and its
            // tables and the streaming buffer leaves ≈26.9 KB for filtering +
            // peak detection code.
            conditioning_code: 27_540,
            // Sub-system (2) (3-lead delineation incl. filtering) is 46.39 KB;
            // code-only share after buffers ≈ 40.9 KB.
            delineation_code: 41_900,
            // 2 KB of streaming state per lead (ring buffers for the filter,
            // four wavelet scales and one beat window at 16-bit samples).
            buffer_bytes_per_lead: 2_048,
        }
    }
}

/// Memory footprint of one firmware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Code bytes.
    pub code_bytes: usize,
    /// Constant data bytes (projection matrix, membership tables).
    pub table_bytes: usize,
    /// Working RAM bytes (streaming buffers).
    pub buffer_bytes: usize,
}

impl MemoryFootprint {
    /// Total footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.code_bytes + self.table_bytes + self.buffer_bytes
    }

    /// Total footprint in KB (as reported in Table III).
    pub fn total_kib(&self) -> f64 {
        self.total_bytes() as f64 / KIB
    }
}

/// Memory model producing the Table III code-size column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryModel {
    /// Calibrated code-size constants.
    pub code: CodeSizeModel,
}

impl MemoryModel {
    /// Footprint of the RP classifier alone (code + projection table +
    /// membership table).
    pub fn rp_classifier(
        &self,
        projection: &PackedProjection,
        classifier: &IntegerNfc,
    ) -> MemoryFootprint {
        MemoryFootprint {
            code_bytes: self.code.classifier_code,
            table_bytes: projection.size_bytes() + classifier.parameter_table_bytes(),
            buffer_bytes: 0,
        }
    }

    /// Footprint of sub-system (1): classifier + single-lead conditioning.
    pub fn subsystem1(
        &self,
        projection: &PackedProjection,
        classifier: &IntegerNfc,
    ) -> MemoryFootprint {
        let rp = self.rp_classifier(projection, classifier);
        MemoryFootprint {
            code_bytes: rp.code_bytes + self.code.conditioning_code,
            table_bytes: rp.table_bytes,
            buffer_bytes: self.code.buffer_bytes_per_lead,
        }
    }

    /// Footprint of sub-system (2): always-on multi-lead delineation.
    pub fn subsystem2(&self, leads: usize) -> MemoryFootprint {
        MemoryFootprint {
            code_bytes: self.code.delineation_code,
            table_bytes: 0,
            buffer_bytes: self.code.buffer_bytes_per_lead * leads,
        }
    }

    /// Footprint of sub-system (3): the proposed gated system (classifier,
    /// conditioning and delineator all resident).
    pub fn subsystem3(
        &self,
        projection: &PackedProjection,
        classifier: &IntegerNfc,
        leads: usize,
    ) -> MemoryFootprint {
        let s1 = self.subsystem1(projection, classifier);
        let s2 = self.subsystem2(leads);
        MemoryFootprint {
            code_bytes: s1.code_bytes + s2.code_bytes,
            table_bytes: s1.table_bytes,
            buffer_bytes: self.code.buffer_bytes_per_lead * leads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int_classifier::MembershipKind;
    use crate::linear_mf::IntMembership;
    use hbc_rp::AchlioptasMatrix;

    fn classifier(k: usize) -> IntegerNfc {
        let rows = (0..k)
            .map(|_| {
                [
                    IntMembership::new(MembershipKind::Linearized, 0, 10),
                    IntMembership::new(MembershipKind::Linearized, 1, 10),
                    IntMembership::new(MembershipKind::Linearized, 2, 10),
                ]
            })
            .collect();
        IntegerNfc::new(rows).expect("non-empty")
    }

    fn projection(k: usize, d: usize) -> PackedProjection {
        PackedProjection::from_matrix(&AchlioptasMatrix::generate(k, d, 1))
    }

    #[test]
    fn classifier_footprint_matches_table3_scale() {
        // Paper: the RP classifier occupies 1.64 KB for 8 coefficients.
        let model = MemoryModel::default();
        let fp = model.rp_classifier(&projection(8, 50), &classifier(8));
        let kib = fp.total_kib();
        assert!(
            (1.4..=1.9).contains(&kib),
            "classifier footprint {kib:.2} KB should be close to the paper's 1.64 KB"
        );
        // The data tables are small compared to the 96 KB RAM.
        assert!(fp.table_bytes < 1024);
    }

    #[test]
    fn subsystem_footprints_follow_table3_ordering() {
        let model = MemoryModel::default();
        let p = projection(8, 50);
        let c = classifier(8);
        let rp = model.rp_classifier(&p, &c).total_kib();
        let s1 = model.subsystem1(&p, &c).total_kib();
        let s2 = model.subsystem2(3).total_kib();
        let s3 = model.subsystem3(&p, &c, 3).total_kib();
        assert!(rp < s1 && s1 < s2 && s2 < s3, "{rp} {s1} {s2} {s3}");
        // Rough agreement with the 30.29 / 46.39 / 76.68 KB of Table III.
        assert!((28.0..=33.0).contains(&s1), "sub-system 1: {s1:.2} KB");
        assert!((43.0..=50.0).contains(&s2), "sub-system 2: {s2:.2} KB");
        assert!((72.0..=80.0).contains(&s3), "sub-system 3: {s3:.2} KB");
        // The proposed system's overhead over the delineator is around 30 KB.
        assert!((25.0..=35.0).contains(&(s3 - s2)));
    }

    #[test]
    fn packing_and_downsampling_shrink_the_tables() {
        let model = MemoryModel::default();
        let c = classifier(8);
        let full_rate = model.rp_classifier(&projection(8, 200), &c);
        let downsampled = model.rp_classifier(&projection(8, 50), &c);
        assert_eq!(full_rate.table_bytes - c.parameter_table_bytes(), 400);
        assert_eq!(downsampled.table_bytes - c.parameter_table_bytes(), 100);
        // 2-bit packing: a byte matrix would be 4x larger.
        assert_eq!(projection(8, 200).unpacked_size_bytes(), 1600);
    }

    #[test]
    fn everything_fits_the_icyheart_ram() {
        let model = MemoryModel::default();
        let fp = model.subsystem3(&projection(32, 200), &classifier(32), 3);
        let platform = crate::platform::IcyHeartPlatform::paper();
        assert!(
            platform.fits_in_ram(fp.total_bytes()),
            "{} bytes exceed the 96 KB RAM",
            fp.total_bytes()
        );
    }
}
