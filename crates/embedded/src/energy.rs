//! Energy model of the smart WBSN (Section IV-E of the paper).
//!
//! Early classification saves energy in two places:
//!
//! * **signal processing** — the detailed delineation runs only for the beats
//!   the classifier forwards, so CPU energy follows the duty-cycle reduction
//!   of Table III;
//! * **wireless transmission** — instead of transmitting all nine fiducial
//!   points (onset/peak/end of P, QRS and T) for every beat, the node sends
//!   only the R-peak position for beats classified as normal and the full
//!   fiducial set for the forwarded ones.
//!
//! The paper reports a 63 % reduction of the bio-signal-analysis energy, a
//! 68 % reduction of the wireless energy and an estimated 23 % reduction of
//! the total node energy, computation and communication together accounting
//! for ≈34 % of a typical WBSN power budget.

use crate::cycles::DutyCycleReport;
use crate::platform::IcyHeartPlatform;

/// How many bytes one transmitted fiducial point occupies (16-bit sample
/// offset).
pub const BYTES_PER_FIDUCIAL: usize = 2;

/// Number of fiducial points produced for a fully delineated beat (onset,
/// peak and end of P, QRS and T).
pub const FIDUCIALS_PER_DELINEATED_BEAT: usize = 9;

/// Transmission policy of the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransmissionPolicy {
    /// Baseline: every beat is delineated and all of its fiducial points are
    /// transmitted.
    AllFiducials,
    /// Proposed: normal beats report only their R peak; forwarded
    /// (pathological or undecided) beats report the full fiducial set.
    GatedByClassifier,
}

/// Beat statistics the energy model needs for a monitoring session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionStats {
    /// Total number of beats processed.
    pub total_beats: usize,
    /// Number of beats the classifier forwarded to the delineator (truly
    /// abnormal beats recognised + normal beats misclassified as abnormal).
    pub forwarded_beats: usize,
    /// Duration of the session in seconds.
    pub duration_s: f64,
}

impl SessionStats {
    /// Fraction of beats forwarded.
    pub fn forwarded_fraction(&self) -> f64 {
        if self.total_beats == 0 {
            return 0.0;
        }
        self.forwarded_beats as f64 / self.total_beats as f64
    }
}

/// Relative weight of computation and communication in the node's total
/// power budget (the remainder covers acquisition, leakage, storage, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBudget {
    /// Fraction of the total node energy spent on bio-signal processing.
    pub compute_fraction: f64,
    /// Fraction of the total node energy spent on the wireless link.
    pub radio_fraction: f64,
}

impl PowerBudget {
    /// The paper's assumption: computation and communication together account
    /// for ≈34 % of the total energy of a typical WBSN, split evenly.
    pub fn paper() -> Self {
        PowerBudget {
            compute_fraction: 0.17,
            radio_fraction: 0.17,
        }
    }
}

impl Default for PowerBudget {
    fn default() -> Self {
        PowerBudget::paper()
    }
}

/// Energy evaluation of the two system configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Signal-processing energy of the always-on delineation baseline, in mJ.
    pub baseline_compute_mj: f64,
    /// Signal-processing energy of the proposed gated system, in mJ.
    pub gated_compute_mj: f64,
    /// Wireless energy of the all-fiducials baseline, in mJ.
    pub baseline_radio_mj: f64,
    /// Wireless energy of the gated transmission policy, in mJ.
    pub gated_radio_mj: f64,
    /// Relative weights used to extrapolate the total-node saving.
    pub budget: PowerBudget,
}

impl EnergyReport {
    /// Relative reduction of the signal-processing energy (paper: 63 %).
    pub fn compute_reduction(&self) -> f64 {
        reduction(self.baseline_compute_mj, self.gated_compute_mj)
    }

    /// Relative reduction of the wireless energy (paper: 68 %).
    pub fn radio_reduction(&self) -> f64 {
        reduction(self.baseline_radio_mj, self.gated_radio_mj)
    }

    /// Estimated reduction of the total node energy (paper: ≈23 %), obtained
    /// by weighting the two reductions with the power-budget fractions.
    pub fn total_node_reduction(&self) -> f64 {
        self.budget.compute_fraction * self.compute_reduction()
            + self.budget.radio_fraction * self.radio_reduction()
    }
}

fn reduction(baseline: f64, improved: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    1.0 - improved / baseline
}

/// The energy model: combines the platform, the duty-cycle report and the
/// transmission policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Platform providing per-cycle and per-bit energies.
    pub platform: IcyHeartPlatform,
    /// Power-budget weights for the total-node extrapolation.
    pub budget: PowerBudget,
}

impl EnergyModel {
    /// Creates a model for the paper's platform and power budget.
    pub fn paper() -> Self {
        EnergyModel {
            platform: IcyHeartPlatform::paper(),
            budget: PowerBudget::paper(),
        }
    }

    /// Bits transmitted over a session under a policy.
    pub fn transmitted_bits(&self, policy: TransmissionPolicy, stats: &SessionStats) -> u64 {
        let per_full_beat = (FIDUCIALS_PER_DELINEATED_BEAT * BYTES_PER_FIDUCIAL * 8) as u64;
        let per_peak_only = (BYTES_PER_FIDUCIAL * 8) as u64;
        match policy {
            TransmissionPolicy::AllFiducials => stats.total_beats as u64 * per_full_beat,
            TransmissionPolicy::GatedByClassifier => {
                let forwarded = stats.forwarded_beats as u64;
                let discarded = stats.total_beats as u64 - forwarded;
                forwarded * per_full_beat + discarded * per_peak_only
            }
        }
    }

    /// Builds the full energy report from the duty cycles of Table III and a
    /// session's beat statistics.
    pub fn report(&self, duty: &DutyCycleReport, stats: &SessionStats) -> EnergyReport {
        let span_cycles = |duty_cycle: f64| -> u64 {
            (duty_cycle * self.platform.clock_hz * stats.duration_s).round() as u64
        };
        let baseline_compute_mj = self.platform.cpu_energy_mj(span_cycles(duty.subsystem2));
        let gated_compute_mj = self.platform.cpu_energy_mj(span_cycles(duty.subsystem3));
        let baseline_radio_mj = self
            .platform
            .radio_energy_mj(self.transmitted_bits(TransmissionPolicy::AllFiducials, stats));
        let gated_radio_mj = self
            .platform
            .radio_energy_mj(self.transmitted_bits(TransmissionPolicy::GatedByClassifier, stats));
        EnergyReport {
            baseline_compute_mj,
            gated_compute_mj,
            baseline_radio_mj,
            gated_radio_mj,
            budget: self.budget,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like_stats(forwarded_fraction: f64) -> SessionStats {
        let total_beats = 89_012;
        SessionStats {
            total_beats,
            forwarded_beats: (total_beats as f64 * forwarded_fraction).round() as usize,
            duration_s: total_beats as f64 / 1.2,
        }
    }

    fn paper_like_duty() -> DutyCycleReport {
        // The shape of Table III: classifier negligible, conditioning ≈0.12,
        // delineation large, gated system in between.
        DutyCycleReport {
            rp_classifier: 0.005,
            subsystem1: 0.12,
            subsystem2: 0.83,
            subsystem3: 0.30,
        }
    }

    #[test]
    fn transmitted_bits_follow_the_policies() {
        let model = EnergyModel::paper();
        let stats = SessionStats {
            total_beats: 100,
            forwarded_beats: 20,
            duration_s: 60.0,
        };
        let all = model.transmitted_bits(TransmissionPolicy::AllFiducials, &stats);
        let gated = model.transmitted_bits(TransmissionPolicy::GatedByClassifier, &stats);
        assert_eq!(all, 100 * 9 * 2 * 8);
        assert_eq!(gated, 20 * 9 * 2 * 8 + 80 * 2 * 8);
        assert!(gated < all);
        assert!((stats.forwarded_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_savings_are_reproduced() {
        // With the paper's duty cycles and a ≈23 % forwarded fraction the
        // model must land near the reported 63 % / 68 % / 23 % savings.
        let model = EnergyModel::paper();
        let report = model.report(&paper_like_duty(), &paper_like_stats(0.23));
        let compute = report.compute_reduction();
        let radio = report.radio_reduction();
        let total = report.total_node_reduction();
        assert!(
            (0.58..=0.70).contains(&compute),
            "compute reduction {compute}"
        );
        assert!((0.60..=0.75).contains(&radio), "radio reduction {radio}");
        assert!((0.18..=0.28).contains(&total), "total reduction {total}");
    }

    #[test]
    fn forwarding_everything_removes_the_radio_saving() {
        let model = EnergyModel::paper();
        let report = model.report(&paper_like_duty(), &paper_like_stats(1.0));
        assert!(report.radio_reduction().abs() < 1e-9);
        // And forwarding nothing maximises it (8/9 of the bits disappear).
        let report0 = model.report(&paper_like_duty(), &paper_like_stats(0.0));
        assert!((report0.radio_reduction() - 8.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sessions_do_not_divide_by_zero() {
        let model = EnergyModel::paper();
        let stats = SessionStats {
            total_beats: 0,
            forwarded_beats: 0,
            duration_s: 0.0,
        };
        let report = model.report(&paper_like_duty(), &stats);
        assert_eq!(report.radio_reduction(), 0.0);
        assert_eq!(report.compute_reduction(), 0.0);
        assert_eq!(stats.forwarded_fraction(), 0.0);
    }

    #[test]
    fn total_reduction_is_a_weighted_sum() {
        let report = EnergyReport {
            baseline_compute_mj: 100.0,
            gated_compute_mj: 40.0,
            baseline_radio_mj: 200.0,
            gated_radio_mj: 60.0,
            budget: PowerBudget {
                compute_fraction: 0.2,
                radio_fraction: 0.1,
            },
        };
        let expected = 0.2 * 0.6 + 0.1 * 0.7;
        assert!((report.total_node_reduction() - expected).abs() < 1e-12);
    }
}
