//! The complete embedded application of Figure 6.
//!
//! [`WbsnFirmware`] assembles the blocks the WBSN executes online:
//!
//! 1. morphological filtering of the classification lead,
//! 2. wavelet-based R-peak detection,
//! 3. beat windowing, 4× downsampling and ADC-domain quantisation,
//! 4. random projection from the 2-bit packed matrix,
//! 5. integer neuro-fuzzy classification with α_test,
//! 6. three-lead MMD delineation, executed *only* for beats the classifier
//!    forwards (pathological or undecided),
//! 7. transmission bookkeeping (peak only for normal beats, all fiducial
//!    points for forwarded beats).
//!
//! Processing a record returns a [`FirmwareReport`] with the classification
//! outcome of every detected beat, the session statistics the energy model
//! consumes, and the duty-cycle report of the platform model.

use hbc_dsp::window::{match_peaks, windows_at_peaks};
use hbc_dsp::{Delineator, FrontendScratch, MorphologicalFilter, PeakDetector};
use hbc_ecg::beat::{BeatClass, BeatWindow};
use hbc_ecg::record::{EcgRecord, Lead};
use hbc_rp::PackedProjection;

use crate::cycles::{CycleModel, DutyCycleReport, Workload};
use crate::energy::{EnergyModel, EnergyReport, SessionStats};
use crate::fixed::AdcModel;
use crate::int_classifier::{AlphaQ16, IntegerNfc};
use crate::platform::IcyHeartPlatform;
use crate::{EmbeddedError, Result};

/// Outcome of one detected beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeatOutcome {
    /// Sample position of the detected R peak in the record.
    pub peak: usize,
    /// Ground-truth class when a matching annotation exists.
    pub truth: Option<BeatClass>,
    /// Class assigned by the embedded classifier.
    pub predicted: BeatClass,
    /// Whether the delineation stage ran for this beat.
    pub delineated: bool,
    /// Number of fiducial points transmitted for this beat.
    pub fiducials_transmitted: usize,
}

/// Aggregate report of one processed record.
#[derive(Debug, Clone, PartialEq)]
pub struct FirmwareReport {
    /// Per-beat outcomes in temporal order.
    pub beats: Vec<BeatOutcome>,
    /// Session statistics for the energy model.
    pub stats: SessionStats,
    /// Duty cycles of the Table III configurations under this record's
    /// workload.
    pub duty: DutyCycleReport,
    /// Energy comparison for this record.
    pub energy: EnergyReport,
}

impl FirmwareReport {
    /// Fraction of detected beats forwarded to the delineator.
    pub fn forwarded_fraction(&self) -> f64 {
        self.stats.forwarded_fraction()
    }

    /// Normal Discard Rate measured against the annotated ground truth
    /// (annotated normal beats classified as normal). Beats without a
    /// matching annotation are ignored.
    pub fn ndr(&self) -> f64 {
        let (mut discarded, mut normals) = (0usize, 0usize);
        for b in &self.beats {
            if b.truth == Some(BeatClass::Normal) {
                normals += 1;
                if b.predicted == BeatClass::Normal {
                    discarded += 1;
                }
            }
        }
        if normals == 0 {
            1.0
        } else {
            discarded as f64 / normals as f64
        }
    }

    /// Abnormal Recognition Rate measured against the annotated ground truth.
    pub fn arr(&self) -> f64 {
        let (mut recognised, mut abnormals) = (0usize, 0usize);
        for b in &self.beats {
            match b.truth {
                Some(t) if t.is_abnormal() => {
                    abnormals += 1;
                    if b.predicted.is_abnormal() {
                        recognised += 1;
                    }
                }
                _ => {}
            }
        }
        if abnormals == 0 {
            1.0
        } else {
            recognised as f64 / abnormals as f64
        }
    }
}

/// Reusable working buffers for the per-beat stage 3-5 path (downsampled
/// window, ADC codes, projected coefficients) — on the node these live in
/// statically allocated RAM; on the host they are reused across beats so
/// classification allocates nothing in steady state. Shared by
/// [`WbsnFirmware`] and `hbc_core`'s `WbsnPipeline`.
#[derive(Debug, Clone, Default)]
pub struct BeatScratch {
    downsampled: Vec<f64>,
    quantized: Vec<i32>,
    coefficients: Vec<i32>,
}

impl BeatScratch {
    /// Runs the per-beat classification stages — downsample, ADC
    /// quantisation, packed integer projection, integer NFC — against these
    /// buffers, allocating nothing once they have grown to size.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the downsampled window does
    /// not match the projection width or the classifier input size.
    ///
    /// # Panics
    ///
    /// Panics when `downsample` is zero.
    pub fn classify(
        &mut self,
        samples: &[f64],
        downsample: usize,
        adc: &AdcModel,
        projection: &PackedProjection,
        classifier: &IntegerNfc,
        alpha: AlphaQ16,
    ) -> Result<BeatClass> {
        self.downsampled.clear();
        self.downsampled.extend(samples.iter().step_by(downsample));
        adc.quantize_samples_into(&self.downsampled, &mut self.quantized);
        self.coefficients.resize(projection.rows(), 0);
        projection
            .project_into(&self.quantized, &mut self.coefficients)
            .map_err(|e| EmbeddedError::Dimension(e.to_string()))?;
        Ok(classifier.classify(&self.coefficients, alpha)?.class)
    }

    /// [`Self::classify`] with per-stage wall-clock attribution: runs the
    /// *identical* operations (bit-identical result) and additionally fills
    /// `stages` with the nanoseconds spent in window preparation
    /// (downsample + ADC quantisation), packed projection, and integer NFC.
    /// The untimed path stays clock-free for batch runs that do not need
    /// telemetry.
    ///
    /// # Errors
    ///
    /// As [`Self::classify`].
    ///
    /// # Panics
    ///
    /// Panics when `downsample` is zero.
    // One argument over clippy's limit: the signature is `classify` plus
    // the `stages` out-parameter, and grouping the model handles into a
    // struct here would fork the two call shapes apart.
    #[allow(clippy::too_many_arguments)]
    pub fn classify_timed(
        &mut self,
        samples: &[f64],
        downsample: usize,
        adc: &AdcModel,
        projection: &PackedProjection,
        classifier: &IntegerNfc,
        alpha: AlphaQ16,
        stages: &mut StageNanos,
    ) -> Result<BeatClass> {
        let t0 = std::time::Instant::now();
        self.downsampled.clear();
        self.downsampled.extend(samples.iter().step_by(downsample));
        adc.quantize_samples_into(&self.downsampled, &mut self.quantized);
        let t1 = std::time::Instant::now();
        self.coefficients.resize(projection.rows(), 0);
        projection
            .project_into(&self.quantized, &mut self.coefficients)
            .map_err(|e| EmbeddedError::Dimension(e.to_string()))?;
        let t2 = std::time::Instant::now();
        let class = classifier.classify(&self.coefficients, alpha)?.class;
        let t3 = std::time::Instant::now();
        stages.prepare = (t1 - t0).as_nanos() as u64;
        stages.project = (t2 - t1).as_nanos() as u64;
        stages.classify = (t3 - t2).as_nanos() as u64;
        Ok(class)
    }
}

/// Wall-clock nanoseconds one beat spent in each stage of
/// [`BeatScratch::classify_timed`]. A plain out-parameter so the scratch
/// path stays allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Window preparation: downsample + ADC quantisation.
    pub prepare: u64,
    /// Packed integer random projection.
    pub project: u64,
    /// Integer NFC classification.
    pub classify: u64,
}

impl StageNanos {
    /// Total nanoseconds across the three stages.
    pub fn total(&self) -> u64 {
        self.prepare + self.project + self.classify
    }
}

/// The embedded application: configuration plus all trained artefacts.
#[derive(Debug, Clone)]
pub struct WbsnFirmware {
    /// Packed projection matrix (already downsampled to the WBSN window).
    pub projection: PackedProjection,
    /// Integer classifier.
    pub classifier: IntegerNfc,
    /// Defuzzification coefficient used online.
    pub alpha: AlphaQ16,
    /// ADC front-end model.
    pub adc: AdcModel,
    /// Downsampling factor applied to beat windows before projection
    /// (4 in the paper: 360 Hz → 90 Hz).
    pub downsample: usize,
    /// Beat window at the acquisition rate.
    pub window: BeatWindow,
    /// Platform the firmware is deployed on.
    pub platform: IcyHeartPlatform,
}

impl WbsnFirmware {
    /// Assembles a firmware image.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the projection width does not
    /// equal the downsampled window length or the classifier does not match
    /// the projection height.
    pub fn new(
        projection: PackedProjection,
        classifier: IntegerNfc,
        alpha: AlphaQ16,
        downsample: usize,
        window: BeatWindow,
    ) -> Result<Self> {
        let expected = window.len().div_ceil(downsample.max(1));
        if projection.cols() != expected {
            return Err(EmbeddedError::Dimension(format!(
                "projection expects {} samples but the downsampled window has {expected}",
                projection.cols()
            )));
        }
        if classifier.num_coefficients() != projection.rows() {
            return Err(EmbeddedError::Dimension(format!(
                "classifier expects {} coefficients but the projection produces {}",
                classifier.num_coefficients(),
                projection.rows()
            )));
        }
        Ok(WbsnFirmware {
            projection,
            classifier,
            alpha,
            adc: AdcModel::default_frontend(),
            downsample: downsample.max(1),
            window,
            platform: IcyHeartPlatform::paper(),
        })
    }

    /// Replaces the online defuzzification coefficient (α_test), which the
    /// paper tunes independently of α_train.
    pub fn with_alpha(mut self, alpha: AlphaQ16) -> Self {
        self.alpha = alpha;
        self
    }

    /// Classifies one already-windowed beat (acquisition-rate samples in
    /// millivolts) exactly as the node would.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the window length does not
    /// match the firmware configuration.
    pub fn classify_window(&self, samples: &[f64]) -> Result<BeatClass> {
        self.classify_window_with(samples, &mut BeatScratch::default())
    }

    /// [`Self::classify_window`] against caller-owned scratch buffers — the
    /// firmware equivalent of the node's statically allocated working RAM:
    /// per-beat loops hold one [`BeatScratch`] and perform no allocation in
    /// steady state.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the window length does not
    /// match the firmware configuration.
    pub fn classify_window_with(
        &self,
        samples: &[f64],
        scratch: &mut BeatScratch,
    ) -> Result<BeatClass> {
        if samples.len() != self.window.len() {
            return Err(EmbeddedError::Dimension(format!(
                "expected a {}-sample window, got {}",
                self.window.len(),
                samples.len()
            )));
        }
        scratch.classify(
            samples,
            self.downsample,
            &self.adc,
            &self.projection,
            &self.classifier,
            self.alpha,
        )
    }

    /// [`Self::classify_window_with`] with per-stage timing attribution (see
    /// [`BeatScratch::classify_timed`]); the classification result is
    /// bit-identical to the untimed path.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the window length does not
    /// match the firmware configuration.
    pub fn classify_window_timed(
        &self,
        samples: &[f64],
        scratch: &mut BeatScratch,
        stages: &mut StageNanos,
    ) -> Result<BeatClass> {
        if samples.len() != self.window.len() {
            return Err(EmbeddedError::Dimension(format!(
                "expected a {}-sample window, got {}",
                self.window.len(),
                samples.len()
            )));
        }
        scratch.classify_timed(
            samples,
            self.downsample,
            &self.adc,
            &self.projection,
            &self.classifier,
            self.alpha,
            stages,
        )
    }

    /// Processes a full multi-lead record through the complete Figure 6
    /// pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the record has no leads or is
    /// too short for the conditioning front-end.
    pub fn process_record(&self, record: &EcgRecord) -> Result<FirmwareReport> {
        self.process_record_with(
            record,
            &mut FrontendScratch::default(),
            &mut BeatScratch::default(),
        )
    }

    /// [`Self::process_record`] against caller-owned scratch buffers: the
    /// conditioning front-end (morphological filter of every lead + wavelet
    /// peak detection) runs its intermediates — wedge, stage buffers,
    /// wavelet planes — through `frontend` and the per-beat classification
    /// stages through `beat`, so multi-record drivers (the evaluation
    /// engine, sweeps) reuse both working sets across records. The filtered
    /// per-lead output signals themselves are still per-record `Vec`s: they
    /// must outlive the scratch borrows (windowing and delineation read them
    /// for the whole record), so one O(n) allocation per lead per record
    /// remains. Output is identical to [`Self::process_record`].
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the record has no leads or is
    /// too short for the conditioning front-end.
    pub fn process_record_with(
        &self,
        record: &EcgRecord,
        frontend: &mut FrontendScratch,
        beat_scratch: &mut BeatScratch,
    ) -> Result<FirmwareReport> {
        let lead0 = record
            .lead(Lead(0))
            .map_err(|e| EmbeddedError::Dimension(e.to_string()))?;

        // Stage 1-2: filtering + peak detection on the classification lead,
        // all intermediates living in the shared frontend scratch.
        let filter = MorphologicalFilter::for_sampling_rate(record.fs);
        let mut filtered = Vec::with_capacity(lead0.len());
        filter
            .apply_into(lead0, frontend, &mut filtered)
            .map_err(|e| EmbeddedError::Dimension(e.to_string()))?;
        let detector = PeakDetector::new(record.fs);
        let peaks = detector
            .detect_with_scratch(&filtered, frontend)
            .map_err(|e| EmbeddedError::Dimension(e.to_string()))?;

        // Ground-truth association for reporting. The matching is indexed by
        // *peak*, and `windows_at_peaks` skips peaks too close to the record
        // borders, so each beat carries the index of its originating peak —
        // indexing the matching by beat position would shift every truth
        // label after a skipped border peak.
        let tolerance = (0.06 * record.fs) as usize;
        let matching = match_peaks(&peaks, &record.annotations, tolerance);

        // Pre-filter the remaining delineation leads once (the always-on
        // baseline does the same work, which is what the duty-cycle model
        // accounts for); lead 0 was already filtered for classification and
        // is reused as the first delineation lead.
        let delineator = Delineator::new(record.fs);
        let filtered_rest: Vec<Vec<f64>> = (1..record.num_leads())
            .map(|l| {
                let signal = record.lead(Lead(l)).expect("lead index < num_leads");
                let mut lead = Vec::with_capacity(signal.len());
                filter
                    .apply_into(signal, frontend, &mut lead)
                    .expect("same length as lead 0");
                lead
            })
            .collect();

        // Stage 3-7 per beat.
        let beats = windows_at_peaks(&filtered, &peaks, self.window, record.id);
        let mut outcomes = Vec::with_capacity(beats.len());
        let mut forwarded = 0usize;
        for (peak_index, beat) in &beats {
            let predicted = self.classify_window_with(&beat.samples, beat_scratch)?;
            let truth =
                matching.matched_annotation[*peak_index].map(|a| record.annotations[a].class);
            let delineated = predicted.is_abnormal();
            let fiducials_transmitted = if delineated {
                forwarded += 1;
                let rest_windows: Vec<Vec<f64>> = filtered_rest
                    .iter()
                    .map(|l| {
                        self.window
                            .extract(l, beat.record_position)
                            .unwrap_or_else(|| beat.samples.clone())
                    })
                    .collect();
                let mut refs: Vec<&[f64]> = Vec::with_capacity(record.num_leads());
                refs.push(&beat.samples);
                refs.extend(rest_windows.iter().map(Vec::as_slice));
                delineator
                    .delineate_multilead(&refs, self.window.pre)
                    .map(|f| f.count().max(1))
                    .unwrap_or(1)
            } else {
                1 // peak position only
            };
            outcomes.push(BeatOutcome {
                peak: beat.record_position,
                truth,
                predicted,
                delineated,
                fiducials_transmitted,
            });
        }

        let stats = SessionStats {
            total_beats: outcomes.len(),
            forwarded_beats: forwarded,
            duration_s: record.duration_s(),
        };
        let workload = Workload {
            fs: record.fs,
            beats_per_second: if record.duration_s() > 0.0 {
                outcomes.len() as f64 / record.duration_s()
            } else {
                0.0
            },
            delineation_leads: record.num_leads(),
            delineation_window: self.window.len(),
            forwarded_fraction: stats.forwarded_fraction(),
        };
        let cycle_model = CycleModel::new(self.platform);
        let duty = cycle_model.duty_cycles(&self.projection, &self.classifier, &workload);
        let energy_model = EnergyModel {
            platform: self.platform,
            budget: crate::energy::PowerBudget::paper(),
        };
        let energy = energy_model.report(&duty, &stats);

        Ok(FirmwareReport {
            beats: outcomes,
            stats,
            duty,
            energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Quantizer;
    use hbc_ecg::dataset::DatasetSpec;
    use hbc_ecg::synthetic::SyntheticEcg;
    use hbc_ecg::Dataset;
    use hbc_nfc::pipeline_fit_quick;
    use hbc_rp::AchlioptasMatrix;

    /// Trains a quick pipeline on downsampled windows and converts it to the
    /// embedded form.
    fn build_firmware() -> WbsnFirmware {
        let spec = DatasetSpec::tiny();
        let mut dataset = Dataset::synthetic(spec, 9);
        // The WBSN classifier is trained on 4x-downsampled 50-sample windows.
        for split in [
            &mut dataset.training1,
            &mut dataset.training2,
            &mut dataset.test,
        ] {
            for beat in split.iter_mut() {
                *beat = beat.downsample(4);
            }
        }
        let pipeline = pipeline_fit_quick(&dataset, 8, 11);
        let classifier = Quantizer::new()
            .quantize_classifier(&pipeline.classifier)
            .expect("quantise");
        let packed = PackedProjection::from_matrix(&pipeline.projection);
        WbsnFirmware::new(
            packed,
            classifier,
            AlphaQ16::from_f64(pipeline.alpha_train).expect("alpha in range"),
            4,
            BeatWindow::PAPER,
        )
        .expect("consistent dimensions")
    }

    #[test]
    fn construction_checks_dimensions() {
        let projection = PackedProjection::from_matrix(&AchlioptasMatrix::generate(8, 50, 1));
        let classifier = {
            use crate::int_classifier::MembershipKind;
            use crate::linear_mf::IntMembership;
            IntegerNfc::new(
                (0..4)
                    .map(|_| [IntMembership::new(MembershipKind::Linearized, 0, 1); 3])
                    .collect(),
            )
            .expect("non-empty")
        };
        // 4-coefficient classifier with an 8-row projection: mismatch.
        assert!(matches!(
            WbsnFirmware::new(
                projection.clone(),
                classifier,
                AlphaQ16(0),
                4,
                BeatWindow::PAPER
            ),
            Err(EmbeddedError::Dimension(_))
        ));
        // Wrong downsampling factor for the window: mismatch.
        let good_classifier = {
            use crate::int_classifier::MembershipKind;
            use crate::linear_mf::IntMembership;
            IntegerNfc::new(
                (0..8)
                    .map(|_| [IntMembership::new(MembershipKind::Linearized, 0, 1); 3])
                    .collect(),
            )
            .expect("non-empty")
        };
        assert!(matches!(
            WbsnFirmware::new(
                projection,
                good_classifier,
                AlphaQ16(0),
                2,
                BeatWindow::PAPER
            ),
            Err(EmbeddedError::Dimension(_))
        ));
    }

    #[test]
    fn window_classification_rejects_wrong_lengths() {
        let fw = build_firmware();
        assert!(fw.classify_window(&[0.0; 199]).is_err());
        assert!(fw.classify_window(&[0.0; 200]).is_ok());
    }

    #[test]
    fn full_record_processing_classifies_and_gates_delineation() {
        let fw = build_firmware();
        let mut gen = SyntheticEcg::with_seed(77);
        let rhythm = gen.rhythm(60, 0.12, 0.12);
        let record = gen.record(50, &rhythm, 3).expect("record");
        let report = fw.process_record(&record).expect("process");

        assert!(
            report.beats.len() >= 50,
            "most of the 60 beats should be detected, got {}",
            report.beats.len()
        );
        // Delineation must have run exactly for the forwarded beats.
        for b in &report.beats {
            assert_eq!(b.delineated, b.predicted.is_abnormal());
            if b.delineated {
                assert!(b.fiducials_transmitted >= 1);
            } else {
                assert_eq!(b.fiducials_transmitted, 1);
            }
        }
        assert_eq!(
            report.stats.forwarded_beats,
            report.beats.iter().filter(|b| b.delineated).count()
        );
        // The classifier must do better than chance on both figures of merit.
        assert!(report.arr() > 0.6, "ARR {}", report.arr());
        assert!(report.ndr() > 0.5, "NDR {}", report.ndr());
        // Gating must reduce the duty cycle and the energy relative to the
        // always-on delineator.
        assert!(report.duty.subsystem3 < report.duty.subsystem2);
        assert!(report.energy.compute_reduction() > 0.0);
        assert!(report.energy.radio_reduction() > 0.0);
    }

    #[test]
    fn alpha_test_can_be_retuned_after_deployment() {
        let fw = build_firmware();
        let mut gen = SyntheticEcg::with_seed(5);
        let record = gen
            .record(51, &gen.clone().rhythm(40, 0.1, 0.1), 1)
            .expect("record");
        let strict = fw
            .clone()
            .with_alpha(AlphaQ16::from_f64(0.9).expect("valid"))
            .process_record(&record)
            .expect("process");
        let lax = fw
            .with_alpha(AlphaQ16::from_f64(0.0).expect("valid"))
            .process_record(&record)
            .expect("process");
        // A stricter alpha can only forward more beats (more Unknown).
        assert!(strict.stats.forwarded_beats >= lax.stats.forwarded_beats);
    }
}
