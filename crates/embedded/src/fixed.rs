//! Fixed-point quantisation: ADC front-end model and conversion of trained
//! classifier parameters into integer coefficient units.
//!
//! The embedded execution path never sees a floating-point number. Beat
//! samples arrive as signed ADC codes, the projection produces 32-bit integer
//! coefficients, and the membership functions must therefore be expressed in
//! the same integer coefficient units. [`Quantizer`] performs that conversion
//! from a trained floating-point [`NeuroFuzzyClassifier`].

use hbc_ecg::beat::Beat;
use hbc_nfc::NeuroFuzzyClassifier;

use crate::int_classifier::{IntegerNfc, MembershipKind};
use crate::linear_mf::IntMembership;
use crate::{EmbeddedError, Result};

/// Model of the acquisition ADC: full-scale range and bit width.
///
/// The IcyHeart SoC integrates a multi-channel ADC; the MIT-BIH recordings
/// are 11-bit over ±5 mV, and the synthetic generator produces millivolt
/// signals, so the default maps ±5 mV onto a signed 12-bit code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcModel {
    /// Full-scale amplitude in millivolts (the code saturates beyond ±this).
    pub full_scale_mv: f64,
    /// Resolution in bits (including the sign).
    pub bits: u32,
}

impl AdcModel {
    /// 12-bit, ±5 mV: the default front-end model.
    pub fn default_frontend() -> Self {
        AdcModel {
            full_scale_mv: 5.0,
            bits: 12,
        }
    }

    /// Number of ADC codes per millivolt.
    pub fn codes_per_mv(&self) -> f64 {
        (1i64 << (self.bits - 1)) as f64 / self.full_scale_mv
    }

    /// Quantises a beat window to ADC codes.
    pub fn quantize_beat(&self, beat: &Beat) -> Vec<i32> {
        beat.quantize(self.full_scale_mv, self.bits)
    }

    /// Quantises a raw sample vector (millivolts) to ADC codes.
    pub fn quantize_samples(&self, samples: &[f64]) -> Vec<i32> {
        let mut out = Vec::with_capacity(samples.len());
        self.quantize_samples_into(samples, &mut out);
        out
    }

    /// Quantises one millivolt sample to its ADC code — **the** transfer
    /// function of this front-end (round-to-nearest, saturating at the
    /// rails). Every quantisation path, including the wire protocol of
    /// `hbc-net`, routes through here so the firmware and the network can
    /// never disagree bit-wise.
    #[inline]
    pub fn quantize_sample(&self, mv: f64) -> i32 {
        let half = (1i64 << (self.bits - 1)) as f64;
        (mv / self.full_scale_mv * half)
            .round()
            .clamp(-half, half - 1.0) as i32
    }

    /// Millivolt value of one ADC code — the exact inverse step of
    /// [`Self::quantize_sample`] in `f64` (codes are small integers, the
    /// scale a power-of-two quotient), so quantise → dequantise → quantise
    /// is the identity on codes.
    #[inline]
    pub fn dequantize_sample(&self, code: i32) -> f64 {
        let half = (1i64 << (self.bits - 1)) as f64;
        f64::from(code) * self.full_scale_mv / half
    }

    /// Allocation-free [`Self::quantize_samples`]: clears `out` and refills it
    /// with one code per sample, reusing the buffer's capacity (the per-beat
    /// hot paths call this with a scratch vector).
    pub fn quantize_samples_into(&self, samples: &[f64], out: &mut Vec<i32>) {
        out.clear();
        out.extend(samples.iter().map(|&s| self.quantize_sample(s)));
    }
}

impl Default for AdcModel {
    fn default() -> Self {
        AdcModel::default_frontend()
    }
}

/// Converts a trained floating-point classifier into the integer-only form
/// executed on the WBSN.
///
/// The conversion scales membership centres and spreads by the ADC gain
/// (codes per millivolt), because the integer projection of ADC codes is, up
/// to that gain, the same linear functional the float classifier was trained
/// on (the Achlioptas matrix has exactly the same ±1/0 entries in both
/// paths).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    /// ADC front-end model used on the WBSN.
    pub adc: AdcModel,
    /// Membership-function family to instantiate (linearised or triangular).
    pub kind: MembershipKind,
}

impl Quantizer {
    /// Creates a quantizer with the default ADC and the 4-segment linearised
    /// membership functions of the paper.
    pub fn new() -> Self {
        Quantizer {
            adc: AdcModel::default_frontend(),
            kind: MembershipKind::Linearized,
        }
    }

    /// Selects the membership family (builder style).
    pub fn with_kind(mut self, kind: MembershipKind) -> Self {
        self.kind = kind;
        self
    }

    /// Selects the ADC model (builder style).
    pub fn with_adc(mut self, adc: AdcModel) -> Self {
        self.adc = adc;
        self
    }

    /// Converts a trained float classifier into the integer classifier.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Range`] when a scaled centre does not fit in
    /// an `i32` (which would indicate the float classifier was trained on
    /// wildly out-of-range data).
    pub fn quantize_classifier(&self, classifier: &NeuroFuzzyClassifier) -> Result<IntegerNfc> {
        let gain = self.adc.codes_per_mv();
        let mut rows = Vec::with_capacity(classifier.num_coefficients());
        for mfs in classifier.memberships() {
            let mut row = [IntMembership::default(); hbc_ecg::beat::NUM_CLASSES];
            for (l, mf) in mfs.iter().enumerate() {
                let center = mf.center * gain;
                let half_width = mf.linearization_half_width() * gain;
                if !center.is_finite() || center.abs() > i32::MAX as f64 / 4.0 {
                    return Err(EmbeddedError::Range(format!(
                        "membership centre {center} does not fit the integer domain"
                    )));
                }
                let s = half_width.round().max(1.0) as i32;
                row[l] = IntMembership::new(self.kind, center.round() as i32, s);
            }
            rows.push(row);
        }
        IntegerNfc::new(rows)
    }
}

impl Default for Quantizer {
    fn default() -> Self {
        Quantizer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_ecg::BeatClass;
    use hbc_nfc::GaussianMf;

    #[test]
    fn adc_gain_and_quantization() {
        let adc = AdcModel::default_frontend();
        assert!((adc.codes_per_mv() - 2048.0 / 5.0).abs() < 1e-9);
        let beat = Beat::new(vec![0.0, 1.0, -1.0, 10.0, -10.0], BeatClass::Normal);
        let q = adc.quantize_beat(&beat);
        assert_eq!(q[0], 0);
        assert_eq!(q[1], 410); // 1 mV * 409.6 rounded
        assert_eq!(q[2], -410);
        assert_eq!(q[3], 2047); // saturated
        assert_eq!(q[4], -2048); // saturated
        assert_eq!(adc.quantize_samples(&beat.samples), q);
    }

    #[test]
    fn quantizer_scales_centers_by_the_adc_gain() {
        let mfs = vec![[
            GaussianMf::new(1.0, 0.5),
            GaussianMf::new(-2.0, 1.0),
            GaussianMf::new(0.0, 2.0),
        ]];
        let classifier = NeuroFuzzyClassifier::new(mfs).expect("valid");
        let q = Quantizer::new()
            .quantize_classifier(&classifier)
            .expect("fits");
        assert_eq!(q.num_coefficients(), 1);
        let gain = AdcModel::default_frontend().codes_per_mv();
        let m = q.membership(0);
        assert_eq!(m[0].center(), (1.0 * gain).round() as i32);
        assert_eq!(m[1].center(), (-2.0 * gain).round() as i32);
        // Half width = 2.35 sigma scaled by the gain.
        assert_eq!(m[0].half_width(), (2.35 * 0.5 * gain).round() as i32);
    }

    #[test]
    fn out_of_range_centers_are_rejected() {
        let mfs = vec![[
            GaussianMf::new(1e12, 0.5),
            GaussianMf::new(0.0, 1.0),
            GaussianMf::new(0.0, 1.0),
        ]];
        let classifier = NeuroFuzzyClassifier::new(mfs).expect("valid");
        assert!(matches!(
            Quantizer::new().quantize_classifier(&classifier),
            Err(EmbeddedError::Range(_))
        ));
    }

    #[test]
    fn builder_style_configuration() {
        let q = Quantizer::new()
            .with_kind(MembershipKind::Triangular)
            .with_adc(AdcModel {
                full_scale_mv: 10.0,
                bits: 10,
            });
        assert_eq!(q.kind, MembershipKind::Triangular);
        assert!((q.adc.codes_per_mv() - 51.2).abs() < 1e-9);
    }
}
