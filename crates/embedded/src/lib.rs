//! # hbc-embedded — resource-constrained classifier and WBSN platform model
//!
//! Section III-B of the paper: the projection and the classifier trained in
//! floating point on a PC cannot run "as they are" on a WBSN. This crate
//! implements the optimisation phase that converts them to the embedded form
//! and the platform model used to evaluate them:
//!
//! * [`fixed`] — quantisation of beat windows (ADC model) and of the trained
//!   membership parameters into integer coefficient units;
//! * [`linear_mf`] — the 4-segment linearised membership function on
//!   `[0, 2¹⁶−1]` and the simpler triangular variant of Figure 4;
//! * [`int_classifier`] — the integer-only NFC: shift-normalised product
//!   fuzzification in 32 bits and a division-free defuzzification rule with
//!   an independently tunable α_test;
//! * [`platform`] — the IcyHeart SoC model (6 MHz clock, 96 KB RAM) and its
//!   cycle, memory and energy accounting;
//! * [`cycles`] / [`memory`] — per-stage duty-cycle and code/data-size models
//!   reproducing the structure of Table III;
//! * [`energy`] — the computation + wireless energy model of Section IV-E;
//! * [`firmware`] — the complete embedded application of Figure 6: filtering,
//!   peak detection and RP classification on one lead, triggering three-lead
//!   delineation only for beats flagged pathological;
//! * [`streaming`] — the same application as a push-based stream processor
//!   ([`StreamingFirmware`]): one ADC sample per `push`, bounded ring
//!   buffers, zero steady-state allocation, bit-identical per-beat
//!   classifications to the batch path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codegen;
pub mod cycles;
pub mod energy;
pub mod firmware;
pub mod fixed;
pub mod int_classifier;
pub mod linear_mf;
pub mod memory;
pub mod platform;
pub mod streaming;

pub use energy::{EnergyModel, EnergyReport, TransmissionPolicy};
pub use firmware::{BeatOutcome, BeatScratch, FirmwareReport, StageNanos, WbsnFirmware};
pub use fixed::{AdcModel, Quantizer};
pub use int_classifier::{IntegerNfc, MembershipKind};
pub use linear_mf::{IntMembership, LinearizedMf, TriangularMf, MF_FULL_SCALE};
pub use platform::{IcyHeartPlatform, StageCycles};
pub use streaming::{StageMetrics, StreamingFirmware};

/// Errors produced by the embedded crate.
#[derive(Debug, Clone, PartialEq)]
pub enum EmbeddedError {
    /// A dimension mismatch between the projection, the classifier and the
    /// input window.
    Dimension(String),
    /// A configuration value is out of the representable range.
    Range(String),
    /// The firmware image does not fit the platform resources.
    Resources(String),
}

impl std::fmt::Display for EmbeddedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddedError::Dimension(m) => write!(f, "dimension mismatch: {m}"),
            EmbeddedError::Range(m) => write!(f, "value out of range: {m}"),
            EmbeddedError::Resources(m) => write!(f, "platform resources exceeded: {m}"),
        }
    }
}

impl std::error::Error for EmbeddedError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, EmbeddedError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_category() {
        assert!(EmbeddedError::Dimension("a".into())
            .to_string()
            .contains("dimension"));
        assert!(EmbeddedError::Range("b".into())
            .to_string()
            .contains("range"));
        assert!(EmbeddedError::Resources("c".into())
            .to_string()
            .contains("resources"));
    }
}
