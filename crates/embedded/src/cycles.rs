//! Per-stage cycle accounting reproducing the structure of Table III.
//!
//! The run-time evaluation of the paper (Section IV-D) compares four
//! configurations on the IcyHeart SoC at 6 MHz:
//!
//! 1. the RP classifier alone,
//! 2. sub-system (1): single-lead filtering + peak detection + RP classifier,
//! 3. sub-system (2): always-on three-lead MMD delineation,
//! 4. sub-system (3): the proposed system, where delineation runs only for
//!    the beats the classifier forwards.
//!
//! This module estimates the operation mix of each stage from the actual
//! kernel parameters (structuring-element lengths, wavelet scales, projection
//! density, coefficient count) and converts it to cycles through the platform
//! cost table. Absolute duty cycles depend on the modelled core, but the
//! *relative* ordering and the gating benefit — the quantities the paper's
//! conclusions rest on — derive directly from the kernels implemented in this
//! repository.

use hbc_dsp::MorphologicalFilter;
use hbc_rp::PackedProjection;

use crate::int_classifier::IntegerNfc;
use crate::platform::{IcyHeartPlatform, OperationCounts};

/// Operation mix of the morphological filtering stage, per input sample of
/// one lead, charged at the cost of the **shipped monotone-deque kernel**
/// (`hbc_dsp::filter`): each sample enters the wedge once and leaves it at
/// most once per pass, so the per-sample comparison count is
/// ~`DEQUE_COMPARISONS_PER_SAMPLE` per pass *independent of the
/// structuring-element length* — against one comparison per window element
/// for the naive scan the model charged before (kept as
/// [`naive_filtering_ops_per_sample`] so reports can call out the delta).
pub fn filtering_ops_per_sample(filter: &MorphologicalFilter) -> OperationCounts {
    let compares = filter.comparisons_per_sample() as u64;
    let passes = hbc_dsp::filter::MORPHOLOGY_PASSES as u64;
    OperationCounts {
        compares,
        // Each wedge comparison reads one buffered sample.
        loads: compares,
        // Wedge push + output write per pass.
        stores: 2 * passes,
        // Window-index bookkeeping per pass, plus the baseline averaging and
        // subtraction.
        adds: passes + 2,
        branches: compares,
        ..Default::default()
    }
}

/// Operation mix of the morphological filtering stage under the **naive
/// window rescan** (one comparison per effective-window element per pass) —
/// the pre-deque kernel and the cost a literal reading of the original
/// firmware loop would charge. Kept as the reference point for the
/// model-delta callout in the Table III report.
pub fn naive_filtering_ops_per_sample(filter: &MorphologicalFilter) -> OperationCounts {
    let compares = filter.naive_comparisons_per_sample() as u64;
    OperationCounts {
        compares,
        // Each comparison reads one sample; results are written once per pass
        // (8 passes: erosion+dilation for 2 openings and 2 closings).
        loads: compares,
        stores: 8,
        adds: 2, // baseline averaging and subtraction
        branches: compares / 4,
        ..Default::default()
    }
}

/// How many times cheaper the deque morphology kernel is than the naive
/// window scan on `platform`, per filtered sample — the model delta the
/// Table III report calls out.
pub fn morphology_model_speedup(filter: &MorphologicalFilter, platform: &IcyHeartPlatform) -> f64 {
    let naive = platform.cycles(&naive_filtering_ops_per_sample(filter));
    let deque = platform.cycles(&filtering_ops_per_sample(filter));
    if deque == 0 {
        return 1.0;
    }
    naive as f64 / deque as f64
}

/// Operation mix of the à-trous wavelet decomposition + peak search, per
/// input sample of one lead.
pub fn peak_detection_ops_per_sample(scales: usize) -> OperationCounts {
    let scales = scales as u64;
    OperationCounts {
        // Low-pass (4 taps) and high-pass (2 taps) per scale.
        adds: 6 * scales,
        muls: scales,         // the 3·x terms of the low-pass filter
        compares: 4 * scales, // extremum tracking and thresholding
        loads: 8 * scales,
        stores: 2 * scales,
        branches: 2 * scales,
    }
}

/// Operation mix of one random projection (per beat): one addition or
/// subtraction per non-zero matrix entry, plus the unpacking loads.
pub fn projection_ops_per_beat(projection: &PackedProjection) -> OperationCounts {
    let entries = (projection.rows() * projection.cols()) as u64;
    // Expected non-zero fraction of an Achlioptas matrix is 1/3.
    let nonzero = entries / 3;
    OperationCounts {
        adds: nonzero,
        loads: entries / 4 + projection.cols() as u64, // packed bytes + samples
        stores: projection.rows() as u64,
        compares: entries, // the 2-bit decode tests
        branches: entries / 4,
        ..Default::default()
    }
}

/// Operation mix of one integer NFC evaluation (per beat).
pub fn nfc_ops_per_beat(classifier: &IntegerNfc) -> OperationCounts {
    let k = classifier.num_coefficients() as u64;
    let classes = hbc_ecg::beat::NUM_CLASSES as u64;
    OperationCounts {
        // Membership evaluation: distance + segment selection + interpolation.
        adds: k * classes * 3,
        muls: classifier.multiplications_per_beat() as u64,
        compares: k * classes * 4 + 8, // segment tests + defuzzification
        loads: k * classes * 2,
        stores: classes * (k + 1),
        branches: k * classes,
    }
}

/// Operation mix of the MMD delineation of one beat on one lead
/// (`window` samples analysed at `scales` morphological scales), charged at
/// the cost of the **shipped monotone-wedge kernel**
/// (`hbc_dsp::Delineator::mmd`): two deque passes per scale (trailing max,
/// leading min) at ~`DEQUE_COMPARISONS_PER_SAMPLE` amortised comparisons per
/// sample each, *independent of the scale length*, plus the three-term
/// combine — against a full `s`-sample max and min rescan per output sample
/// for the naive operator the model charged before (kept as
/// [`naive_delineation_ops_per_beat_per_lead`]).
pub fn delineation_ops_per_beat_per_lead(window: usize, scales: &[usize]) -> OperationCounts {
    let window = window as u64;
    // One trailing-max and one leading-min wedge pass per scale.
    let passes = 2 * scales.len() as u64;
    let compares = hbc_dsp::filter::DEQUE_COMPARISONS_PER_SAMPLE as u64 * passes * window;
    OperationCounts {
        compares,
        // Each wedge comparison reads one buffered sample.
        loads: compares,
        // Wedge push + output write per pass.
        stores: 2 * passes * window,
        // The (max + min) − 2·x combine per output sample per scale (the
        // doubling is a shift/add on the integer core).
        adds: 3 * window * scales.len() as u64,
        branches: compares,
        muls: 0,
    }
}

/// Operation mix of the MMD delineation under the **naive per-output window
/// rescan** (`hbc_dsp::Delineator::mmd_naive`: a max over `s` samples and a
/// min over `s` samples per output sample per scale) — the cost the model
/// charged before the delineator was ported to the wedge kernel, expressed
/// with the same memory-traffic convention as
/// [`naive_filtering_ops_per_sample`]: every rescan comparison loads the
/// sample it compares. Kept as the reference point for the model-delta
/// callout in the Table III report.
pub fn naive_delineation_ops_per_beat_per_lead(window: usize, scales: &[usize]) -> OperationCounts {
    let window = window as u64;
    let scale_sum: u64 = scales.iter().map(|&s| s as u64).sum();
    // A `s + 1`-sample max and a `s + 1`-sample min rescan per output
    // sample per scale (clamped windows make the borders slightly cheaper;
    // charged at the interior cost like the naive morphology model).
    let compares = 2 * window * scale_sum;
    OperationCounts {
        compares,
        loads: compares,
        adds: 3 * window * scales.len() as u64,
        stores: window * scales.len() as u64,
        branches: compares / 4,
        muls: 0,
    }
}

/// How many times cheaper the wedge MMD delineation is charged than the
/// naive window rescan on `platform`, per analysed beat — the second model
/// delta the Table III report calls out (alongside
/// [`morphology_model_speedup`]).
pub fn delineation_model_speedup(
    window: usize,
    scales: &[usize],
    platform: &IcyHeartPlatform,
) -> f64 {
    let naive = platform.cycles(&naive_delineation_ops_per_beat_per_lead(window, scales));
    let deque = platform.cycles(&delineation_ops_per_beat_per_lead(window, scales));
    if deque == 0 {
        return 1.0;
    }
    naive as f64 / deque as f64
}

/// The three MMD analysis scales (in samples) the delineation stage runs at
/// a given sampling rate — 60, 100 and 140 ms, as in the reference
/// delineator. Shared by the duty-cycle model and the Table III report.
pub fn delineation_scales(fs: f64) -> [usize; 3] {
    [
        (0.06 * fs) as usize,
        (0.10 * fs) as usize,
        (0.14 * fs) as usize,
    ]
}

/// Parameters describing the workload the duty-cycle model is evaluated on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Sampling frequency of the acquisition front-end in Hz.
    pub fs: f64,
    /// Average heart rate in beats per second (the MIT-BIH average is ≈1.2).
    pub beats_per_second: f64,
    /// Number of leads processed by the delineation stage.
    pub delineation_leads: usize,
    /// Beat-window length (in samples at `fs`) analysed by the delineator.
    pub delineation_window: usize,
    /// Fraction of beats the classifier forwards to the delineation stage
    /// (abnormal beats plus misclassified normals).
    pub forwarded_fraction: f64,
}

impl Workload {
    /// The paper's evaluation workload: 360 Hz acquisition, three delineation
    /// leads, 200-sample windows, and the test-set beat rate.
    pub fn paper(forwarded_fraction: f64) -> Self {
        Workload {
            fs: 360.0,
            beats_per_second: 1.2,
            delineation_leads: 3,
            delineation_window: 200,
            forwarded_fraction,
        }
    }
}

/// Duty cycles of the four configurations of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycleReport {
    /// RP classifier alone (projection + NFC, per beat).
    pub rp_classifier: f64,
    /// Sub-system (1): filtering + peak detection + RP classifier.
    pub subsystem1: f64,
    /// Sub-system (2): always-on three-lead delineation (including its own
    /// three-lead filtering).
    pub subsystem2: f64,
    /// Sub-system (3): the proposed gated system.
    pub subsystem3: f64,
}

impl DutyCycleReport {
    /// Relative run-time reduction of the proposed system over the always-on
    /// delineator: `1 − duty₃ / duty₂` (the paper reports 63 %).
    pub fn runtime_reduction(&self) -> f64 {
        if self.subsystem2 <= 0.0 {
            return 0.0;
        }
        1.0 - self.subsystem3 / self.subsystem2
    }
}

/// Cycle/duty-cycle model for the embedded application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Platform executing the firmware.
    pub platform: IcyHeartPlatform,
}

impl CycleModel {
    /// Creates a model for the given platform.
    pub fn new(platform: IcyHeartPlatform) -> Self {
        CycleModel { platform }
    }

    /// Cycles per second of the single-lead conditioning front-end
    /// (morphological filtering + wavelet peak detection).
    pub fn conditioning_cycles_per_second(&self, fs: f64) -> f64 {
        let filter = MorphologicalFilter::for_sampling_rate(fs);
        let per_sample = self.platform.cycles(&filtering_ops_per_sample(&filter))
            + self.platform.cycles(&peak_detection_ops_per_sample(
                hbc_dsp::wavelet::DEFAULT_SCALES,
            ));
        per_sample as f64 * fs
    }

    /// Cycles per second of the RP classifier alone.
    pub fn classifier_cycles_per_second(
        &self,
        projection: &PackedProjection,
        classifier: &IntegerNfc,
        beats_per_second: f64,
    ) -> f64 {
        let per_beat = self.platform.cycles(&projection_ops_per_beat(projection))
            + self.platform.cycles(&nfc_ops_per_beat(classifier));
        per_beat as f64 * beats_per_second
    }

    /// Cycles per second of the always-on multi-lead delineation (its own
    /// filtering of every lead plus per-beat MMD analysis).
    pub fn delineation_cycles_per_second(&self, workload: &Workload) -> f64 {
        let filter = MorphologicalFilter::for_sampling_rate(workload.fs);
        let filtering = self.platform.cycles(&filtering_ops_per_sample(&filter)) as f64
            * workload.fs
            * workload.delineation_leads as f64;
        let scales = delineation_scales(workload.fs);
        let per_beat_per_lead = self.platform.cycles(&delineation_ops_per_beat_per_lead(
            workload.delineation_window,
            &scales,
        ));
        let delineation = per_beat_per_lead as f64
            * workload.delineation_leads as f64
            * workload.beats_per_second;
        filtering + delineation
    }

    /// Builds the full Table III style duty-cycle report for a fitted
    /// embedded classifier and a workload.
    pub fn duty_cycles(
        &self,
        projection: &PackedProjection,
        classifier: &IntegerNfc,
        workload: &Workload,
    ) -> DutyCycleReport {
        let clock = self.platform.clock_hz;
        let rp =
            self.classifier_cycles_per_second(projection, classifier, workload.beats_per_second)
                / clock;
        let conditioning = self.conditioning_cycles_per_second(workload.fs) / clock;
        let subsystem1 = rp + conditioning;
        let subsystem2 = self.delineation_cycles_per_second(workload) / clock;
        let subsystem3 = subsystem1 + workload.forwarded_fraction * subsystem2;
        DutyCycleReport {
            rp_classifier: rp,
            subsystem1,
            subsystem2,
            subsystem3,
        }
    }
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel::new(IcyHeartPlatform::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int_classifier::MembershipKind;
    use crate::linear_mf::IntMembership;
    use hbc_rp::AchlioptasMatrix;

    fn toy_classifier(k: usize) -> IntegerNfc {
        let rows = (0..k)
            .map(|_| {
                [
                    IntMembership::new(MembershipKind::Linearized, 0, 100),
                    IntMembership::new(MembershipKind::Linearized, 500, 100),
                    IntMembership::new(MembershipKind::Linearized, -500, 100),
                ]
            })
            .collect();
        IntegerNfc::new(rows).expect("non-empty")
    }

    fn toy_projection(k: usize, d: usize) -> PackedProjection {
        PackedProjection::from_matrix(&AchlioptasMatrix::generate(k, d, 5))
    }

    #[test]
    fn classifier_alone_is_a_tiny_fraction_of_the_duty_cycle() {
        // Paper: the RP classifier uses less than 1 % of the duty cycle.
        let model = CycleModel::default();
        let workload = Workload::paper(0.25);
        let report = model.duty_cycles(&toy_projection(8, 50), &toy_classifier(8), &workload);
        assert!(
            report.rp_classifier < 0.01,
            "RP classifier duty cycle {} should be below 1 %",
            report.rp_classifier
        );
    }

    #[test]
    fn conditioning_dominates_subsystem1() {
        // Paper: most of sub-system (1) is filtering + peak detection, not
        // the classifier itself. The band reflects the deque morphology
        // kernel: ~24 comparisons per sample instead of the ~1000 of the
        // naive window scan, so sub-system (1) sits around 1–2 % duty.
        let model = CycleModel::default();
        let workload = Workload::paper(0.25);
        let report = model.duty_cycles(&toy_projection(8, 50), &toy_classifier(8), &workload);
        assert!(report.subsystem1 > 10.0 * report.rp_classifier);
        assert!(
            report.subsystem1 > 0.005 && report.subsystem1 < 0.05,
            "sub-system (1) duty cycle {} outside the plausible band",
            report.subsystem1
        );
    }

    #[test]
    fn deque_morphology_is_charged_far_below_the_naive_scan() {
        // The cost-model delta the Table III report calls out: at 360 Hz the
        // naive scan compares ~1000 samples per input sample (4 passes with
        // a 73-sample window + 4 with a 191-sample one) while the deque
        // kernel is window-length-independent.
        let filter = MorphologicalFilter::for_sampling_rate(360.0);
        let platform = IcyHeartPlatform::paper();
        let speedup = morphology_model_speedup(&filter, &platform);
        assert!(
            speedup > 10.0,
            "deque-vs-naive model speedup {speedup} should be an order of magnitude"
        );
        // The deque charge is window-independent; the naive one is not.
        let slow = MorphologicalFilter::for_sampling_rate(1000.0);
        assert_eq!(
            platform.cycles(&filtering_ops_per_sample(&filter)),
            platform.cycles(&filtering_ops_per_sample(&slow))
        );
        assert!(
            platform.cycles(&naive_filtering_ops_per_sample(&slow))
                > platform.cycles(&naive_filtering_ops_per_sample(&filter))
        );
    }

    #[test]
    fn always_on_delineation_costs_far_more_than_the_gated_system() {
        let model = CycleModel::default();
        let workload = Workload::paper(0.23); // the paper's forwarded fraction
        let report = model.duty_cycles(&toy_projection(8, 50), &toy_classifier(8), &workload);
        assert!(report.subsystem2 > report.subsystem1);
        assert!(report.subsystem3 < report.subsystem2);
        let reduction = report.runtime_reduction();
        // The paper reports 63 % against naive kernels. With both morphology
        // and MMD charged at the wedge-kernel cost, the always-on delineator
        // is far cheaper in absolute terms, so the *relative* benefit of
        // gating it shrinks in the model (~35 % here) — the gating ordering
        // (asserted above) is what the paper's conclusion rests on, and the
        // Table III report calls out both model deltas explicitly.
        assert!(
            reduction > 0.25 && reduction < 0.6,
            "run-time reduction {reduction} outside the wedge-charged band"
        );
    }

    #[test]
    fn wedge_delineation_is_charged_far_below_the_naive_scan() {
        // The second model delta the Table III report calls out: at 360 Hz
        // the naive MMD rescans ~2·s samples per output sample per scale
        // while the wedge charge is scale-independent.
        let platform = IcyHeartPlatform::paper();
        let scales = [21, 36, 50];
        let speedup = delineation_model_speedup(200, &scales, &platform);
        assert!(
            speedup > 3.0,
            "wedge-vs-naive delineation model speedup {speedup} should be substantial"
        );
        // The wedge charge does not grow with the scale lengths; the naive
        // one does.
        let coarse = [42, 72, 100];
        assert_eq!(
            platform.cycles(&delineation_ops_per_beat_per_lead(200, &scales)),
            platform.cycles(&delineation_ops_per_beat_per_lead(200, &coarse))
        );
        assert!(
            platform.cycles(&naive_delineation_ops_per_beat_per_lead(200, &coarse))
                > platform.cycles(&naive_delineation_ops_per_beat_per_lead(200, &scales))
        );
    }

    #[test]
    fn forwarding_everything_removes_the_gating_benefit() {
        let model = CycleModel::default();
        let all = model.duty_cycles(
            &toy_projection(8, 50),
            &toy_classifier(8),
            &Workload::paper(1.0),
        );
        let none = model.duty_cycles(
            &toy_projection(8, 50),
            &toy_classifier(8),
            &Workload::paper(0.0),
        );
        assert!(
            all.subsystem3 > all.subsystem2,
            "gating overhead when everything is forwarded"
        );
        assert!(none.subsystem3 < 0.5 * all.subsystem3);
        assert!(none.runtime_reduction() > all.runtime_reduction());
    }

    #[test]
    fn more_coefficients_cost_more_classifier_cycles() {
        let model = CycleModel::default();
        let c8 =
            model.classifier_cycles_per_second(&toy_projection(8, 50), &toy_classifier(8), 1.2);
        let c32 =
            model.classifier_cycles_per_second(&toy_projection(32, 50), &toy_classifier(32), 1.2);
        assert!(c32 > 3.0 * c8);
    }

    #[test]
    fn duty_report_reduction_handles_degenerate_input() {
        let r = DutyCycleReport {
            rp_classifier: 0.0,
            subsystem1: 0.0,
            subsystem2: 0.0,
            subsystem3: 0.0,
        };
        assert_eq!(r.runtime_reduction(), 0.0);
    }
}
