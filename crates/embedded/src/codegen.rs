//! Firmware table generation.
//!
//! The deployment step the paper only hints at ("the optimized projection and
//! the trained classifier [are transformed] according to the embedded
//! platform capabilities") ends, in practice, with the trained artefacts
//! being burned into the node's firmware image as constant tables. This
//! module emits those tables as a self-contained C header so the classifier
//! produced by the Rust training pipeline can be dropped into an embedded
//! C project targeting the IcyHeart-class microcontroller:
//!
//! * the 2-bit packed projection matrix,
//! * the integer membership-function parameter table (centre, half-width) in
//!   coefficient units,
//! * the defuzzification coefficient in Q16,
//! * the window geometry and downsampling factor.
//!
//! The emitted header is plain C99, uses only `stdint.h` types and contains
//! no code — decoding the 2-bit entries and evaluating the linear segments is
//! a dozen lines on the firmware side, mirroring
//! [`crate::int_classifier::IntegerNfc`].

use hbc_ecg::beat::BeatWindow;
use hbc_rp::PackedProjection;

use crate::int_classifier::{AlphaQ16, IntegerNfc, MembershipKind};

/// Configuration of the generated header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Prefix applied to every emitted identifier (upper-cased for macros).
    pub symbol_prefix: String,
    /// Include-guard macro name.
    pub include_guard: String,
    /// Downsampling factor the firmware must apply before projecting.
    pub downsample: usize,
    /// Beat window at the acquisition rate.
    pub window: BeatWindow,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            symbol_prefix: "hbc".to_string(),
            include_guard: "HBC_CLASSIFIER_TABLES_H".to_string(),
            downsample: 4,
            window: BeatWindow::PAPER,
        }
    }
}

/// Emits a C header containing the classifier tables.
///
/// The header defines, for a prefix `hbc`:
///
/// * `HBC_NUM_COEFFICIENTS`, `HBC_WINDOW_SAMPLES`, `HBC_DOWNSAMPLE`,
///   `HBC_ALPHA_Q16`, `HBC_MF_KIND` (0 = linearised, 1 = triangular);
/// * `hbc_projection_packed[]` — the row-major 2-bit packed matrix;
/// * `hbc_mf_center[][3]` and `hbc_mf_half_width[][3]` — membership
///   parameters per (coefficient, class), classes ordered N, V, L.
pub fn emit_c_header(
    projection: &PackedProjection,
    classifier: &IntegerNfc,
    alpha: AlphaQ16,
    options: &CodegenOptions,
) -> String {
    let prefix = options.symbol_prefix.as_str();
    let upper = prefix.to_uppercase();
    let mut out = String::with_capacity(4096);

    out.push_str(&format!(
        "/* Auto-generated classifier tables — do not edit.\n\
         * projection: {} coefficients x {} samples (2-bit packed, {} bytes)\n\
         * membership functions: {}\n\
         */\n",
        projection.rows(),
        projection.cols(),
        projection.size_bytes(),
        classifier.kind(),
    ));
    out.push_str(&format!(
        "#ifndef {guard}\n#define {guard}\n\n#include <stdint.h>\n\n",
        guard = options.include_guard
    ));

    // Scalar configuration.
    out.push_str(&format!(
        "#define {upper}_NUM_COEFFICIENTS {}\n",
        projection.rows()
    ));
    out.push_str(&format!(
        "#define {upper}_PROJECTED_SAMPLES {}\n",
        projection.cols()
    ));
    out.push_str(&format!(
        "#define {upper}_WINDOW_SAMPLES {}\n",
        options.window.len()
    ));
    out.push_str(&format!(
        "#define {upper}_DOWNSAMPLE {}\n",
        options.downsample
    ));
    out.push_str(&format!("#define {upper}_ALPHA_Q16 {}u\n", alpha.0));
    let kind_code = match classifier.kind() {
        MembershipKind::Linearized => 0,
        MembershipKind::Triangular => 1,
    };
    out.push_str(&format!("#define {upper}_MF_KIND {kind_code}\n\n"));

    // Packed projection matrix.
    out.push_str(&format!(
        "static const uint8_t {prefix}_projection_packed[{}] = {{\n",
        projection.size_bytes()
    ));
    for chunk in projection.as_bytes().chunks(16) {
        out.push_str("    ");
        for byte in chunk {
            out.push_str(&format!("0x{byte:02x}, "));
        }
        out.push('\n');
    }
    out.push_str("};\n\n");

    // Membership parameter tables.
    let k = classifier.num_coefficients();
    out.push_str(&format!(
        "static const int32_t {prefix}_mf_center[{k}][3] = {{\n"
    ));
    for c in 0..k {
        let row = classifier.membership(c);
        out.push_str(&format!(
            "    {{ {}, {}, {} }},\n",
            row[0].center(),
            row[1].center(),
            row[2].center()
        ));
    }
    out.push_str("};\n\n");

    out.push_str(&format!(
        "static const int32_t {prefix}_mf_half_width[{k}][3] = {{\n"
    ));
    for c in 0..k {
        let row = classifier.membership(c);
        out.push_str(&format!(
            "    {{ {}, {}, {} }},\n",
            row[0].half_width(),
            row[1].half_width(),
            row[2].half_width()
        ));
    }
    out.push_str("};\n\n");

    out.push_str(&format!("#endif /* {} */\n", options.include_guard));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_mf::IntMembership;
    use hbc_rp::AchlioptasMatrix;

    fn artefacts() -> (PackedProjection, IntegerNfc, AlphaQ16) {
        let projection = PackedProjection::from_matrix(&AchlioptasMatrix::generate(8, 50, 3));
        let classifier = IntegerNfc::new(
            (0..8)
                .map(|i| {
                    [
                        IntMembership::new(MembershipKind::Linearized, i, 10 + i),
                        IntMembership::new(MembershipKind::Linearized, 100 + i, 20),
                        IntMembership::new(MembershipKind::Linearized, -100 - i, 30),
                    ]
                })
                .collect(),
        )
        .expect("non-empty");
        (
            projection,
            classifier,
            AlphaQ16::from_f64(0.125).expect("valid"),
        )
    }

    #[test]
    fn header_contains_guards_constants_and_tables() {
        let (projection, classifier, alpha) = artefacts();
        let header = emit_c_header(&projection, &classifier, alpha, &CodegenOptions::default());
        assert!(header.starts_with("/* Auto-generated"));
        assert!(header.contains("#ifndef HBC_CLASSIFIER_TABLES_H"));
        assert!(header.contains("#define HBC_NUM_COEFFICIENTS 8"));
        assert!(header.contains("#define HBC_PROJECTED_SAMPLES 50"));
        assert!(header.contains("#define HBC_WINDOW_SAMPLES 200"));
        assert!(header.contains("#define HBC_DOWNSAMPLE 4"));
        assert!(header.contains("#define HBC_ALPHA_Q16 8192u"));
        assert!(header.contains("#define HBC_MF_KIND 0"));
        assert!(header.contains("static const uint8_t hbc_projection_packed[100]"));
        assert!(header.contains("static const int32_t hbc_mf_center[8][3]"));
        assert!(header.contains("static const int32_t hbc_mf_half_width[8][3]"));
        assert!(header
            .trim_end()
            .ends_with("#endif /* HBC_CLASSIFIER_TABLES_H */"));
    }

    #[test]
    fn every_packed_byte_is_emitted() {
        let (projection, classifier, alpha) = artefacts();
        let header = emit_c_header(&projection, &classifier, alpha, &CodegenOptions::default());
        let hex_count = header.matches("0x").count();
        assert_eq!(hex_count, projection.size_bytes());
        // Spot-check the first byte value.
        let first = format!("0x{:02x}", projection.as_bytes()[0]);
        assert!(header.contains(&first));
    }

    #[test]
    fn membership_rows_match_the_classifier() {
        let (projection, classifier, alpha) = artefacts();
        let header = emit_c_header(&projection, &classifier, alpha, &CodegenOptions::default());
        // One centre row per coefficient with the exact values.
        for c in 0..classifier.num_coefficients() {
            let row = classifier.membership(c);
            let expected = format!(
                "{{ {}, {}, {} }},",
                row[0].center(),
                row[1].center(),
                row[2].center()
            );
            assert!(
                header.contains(&expected),
                "missing centre row {c}: {expected}"
            );
        }
    }

    #[test]
    fn custom_prefix_and_guard_are_respected() {
        let (projection, classifier, alpha) = artefacts();
        let options = CodegenOptions {
            symbol_prefix: "ecg_node".to_string(),
            include_guard: "ECG_NODE_TABLES_H".to_string(),
            downsample: 2,
            window: BeatWindow::new(50, 50),
        };
        let header = emit_c_header(&projection, &classifier, alpha, &options);
        assert!(header.contains("#ifndef ECG_NODE_TABLES_H"));
        assert!(header.contains("ECG_NODE_NUM_COEFFICIENTS"));
        assert!(header.contains("static const uint8_t ecg_node_projection_packed"));
        assert!(header.contains("#define ECG_NODE_WINDOW_SAMPLES 100"));
        assert!(header.contains("#define ECG_NODE_DOWNSAMPLE 2"));
    }

    #[test]
    fn generation_is_deterministic() {
        let (projection, classifier, alpha) = artefacts();
        let a = emit_c_header(&projection, &classifier, alpha, &CodegenOptions::default());
        let b = emit_c_header(&projection, &classifier, alpha, &CodegenOptions::default());
        assert_eq!(a, b);
    }
}
