//! Integer membership functions: the 4-segment linearisation and the
//! triangular approximation of Figure 4.
//!
//! Gaussian membership functions need an exponential, which the WBSN cannot
//! afford. The paper approximates them on the integer range `[0, 2¹⁶−1]`
//! with four segments built around `S = 2.35σ` (the full width at half
//! maximum of the Gaussian):
//!
//! ```text
//! MF_lin(x) = 0              if |c − x| ≥ 4S
//!           = 1              if 4S > |c − x| ≥ 2S
//!           = lin.approx 1   if 2S > |c − x| ≥ S
//!           = lin.approx 2   if S  > |c − x|
//! ```
//!
//! The two linear segments interpolate the Gaussian at `|c − x| ∈ {0, S, 2S}`
//! so the approximation hugs the true curve where it matters, while staying
//! strictly positive out to `4S` — which keeps the product fuzzification from
//! collapsing to zero (the property the paper calls out as desirable).
//! The simpler triangular membership function, which Figure 5 shows scaling
//! poorly at high recognition rates, is provided for the same comparison.

/// Full-scale value of an integer membership grade (`2¹⁶ − 1`).
pub const MF_FULL_SCALE: u32 = u16::MAX as u32;

/// Gaussian value at `|c − x| = S = 2.35σ`, scaled to the integer range:
/// `round(65535 · exp(−2.35²/2)) = 4143`.
pub const MF_VALUE_AT_S: u32 = 4143;

/// Gaussian value at `|c − x| = 2S = 4.7σ`, scaled to the integer range:
/// `round(65535 · exp(−4.7²/2)) = 1`.
pub const MF_VALUE_AT_2S: u32 = 1;

/// The 4-segment linearised membership function of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinearizedMf {
    /// Centre in integer coefficient units.
    pub center: i32,
    /// Half width `S = 2.35σ` in integer coefficient units (always ≥ 1).
    pub s: i32,
}

impl LinearizedMf {
    /// Creates a linearised membership function; `s` is clamped to at least 1.
    pub fn new(center: i32, s: i32) -> Self {
        LinearizedMf {
            center,
            s: s.max(1),
        }
    }

    /// Evaluates the membership grade at `x`, in `[0, 65535]`.
    ///
    /// Only integer additions, comparisons, one multiplication and one
    /// division by the constant `S` are used (the division can be turned into
    /// a reciprocal multiplication at firmware-generation time; it is kept
    /// explicit here for clarity and counted as a multiplication by the cycle
    /// model).
    pub fn grade(&self, x: i32) -> u16 {
        let d = (x as i64 - self.center as i64).unsigned_abs();
        let s = self.s as u64;
        if d >= 4 * s {
            0
        } else if d >= 2 * s {
            MF_VALUE_AT_2S as u16
        } else if d >= s {
            // Segment from (S, MF_VALUE_AT_S) to (2S, MF_VALUE_AT_2S).
            let drop = (MF_VALUE_AT_S - MF_VALUE_AT_2S) as u64;
            let value = MF_VALUE_AT_S as u64 - drop * (d - s) / s;
            value as u16
        } else {
            // Segment from (0, FULL_SCALE) to (S, MF_VALUE_AT_S).
            let drop = (MF_FULL_SCALE - MF_VALUE_AT_S) as u64;
            let value = MF_FULL_SCALE as u64 - drop * d / s;
            value as u16
        }
    }
}

/// The triangular membership function used as the simpler comparison point in
/// Figures 4 and 5: full scale at the centre, linearly decaying to zero at
/// `|c − x| = 2S = 4.7σ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriangularMf {
    /// Centre in integer coefficient units.
    pub center: i32,
    /// Half width `S = 2.35σ` in integer coefficient units (always ≥ 1); the
    /// triangle reaches zero at `2S`.
    pub s: i32,
}

impl TriangularMf {
    /// Creates a triangular membership function; `s` is clamped to at least 1.
    pub fn new(center: i32, s: i32) -> Self {
        TriangularMf {
            center,
            s: s.max(1),
        }
    }

    /// Evaluates the membership grade at `x`, in `[0, 65535]`.
    pub fn grade(&self, x: i32) -> u16 {
        let d = (x as i64 - self.center as i64).unsigned_abs();
        let reach = 2 * self.s as u64;
        if d >= reach {
            0
        } else {
            (MF_FULL_SCALE as u64 * (reach - d) / reach) as u16
        }
    }
}

/// A membership function of either family, dispatched without boxing so the
/// integer classifier stays allocation-free per beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntMembership {
    /// The paper's 4-segment linearisation.
    Linearized(LinearizedMf),
    /// The triangular comparison point.
    Triangular(TriangularMf),
}

impl IntMembership {
    /// Creates a membership of the requested family.
    pub fn new(kind: crate::int_classifier::MembershipKind, center: i32, s: i32) -> Self {
        match kind {
            crate::int_classifier::MembershipKind::Linearized => {
                IntMembership::Linearized(LinearizedMf::new(center, s))
            }
            crate::int_classifier::MembershipKind::Triangular => {
                IntMembership::Triangular(TriangularMf::new(center, s))
            }
        }
    }

    /// Membership grade at `x`.
    pub fn grade(&self, x: i32) -> u16 {
        match self {
            IntMembership::Linearized(mf) => mf.grade(x),
            IntMembership::Triangular(mf) => mf.grade(x),
        }
    }

    /// Centre of the membership function.
    pub fn center(&self) -> i32 {
        match self {
            IntMembership::Linearized(mf) => mf.center,
            IntMembership::Triangular(mf) => mf.center,
        }
    }

    /// Half width `S` of the membership function.
    pub fn half_width(&self) -> i32 {
        match self {
            IntMembership::Linearized(mf) => mf.s,
            IntMembership::Triangular(mf) => mf.s,
        }
    }

    /// Which family this membership belongs to.
    pub fn kind(&self) -> crate::int_classifier::MembershipKind {
        match self {
            IntMembership::Linearized(_) => crate::int_classifier::MembershipKind::Linearized,
            IntMembership::Triangular(_) => crate::int_classifier::MembershipKind::Triangular,
        }
    }
}

impl Default for IntMembership {
    fn default() -> Self {
        IntMembership::Linearized(LinearizedMf::new(0, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_gaussian_interpolation_points() {
        let at_s = (MF_FULL_SCALE as f64 * (-0.5f64 * 2.35 * 2.35).exp()).round() as u32;
        let at_2s = (MF_FULL_SCALE as f64 * (-0.5f64 * 4.7 * 4.7).exp()).round() as u32;
        assert_eq!(MF_VALUE_AT_S, at_s);
        assert_eq!(MF_VALUE_AT_2S, at_2s);
    }

    #[test]
    fn linearized_segments_follow_the_paper_definition() {
        let mf = LinearizedMf::new(1000, 100);
        assert_eq!(mf.grade(1000), MF_FULL_SCALE as u16);
        assert_eq!(mf.grade(1000 + 100), MF_VALUE_AT_S as u16);
        assert_eq!(mf.grade(1000 - 100), MF_VALUE_AT_S as u16);
        assert_eq!(mf.grade(1000 + 200), MF_VALUE_AT_2S as u16);
        assert_eq!(mf.grade(1000 + 350), 1, "flat segment between 2S and 4S");
        assert_eq!(mf.grade(1000 + 400), 0, "zero beyond 4S");
        assert_eq!(mf.grade(1000 - 400), 0);
        // Strictly positive over (−4S, 4S): the property the paper highlights.
        for d in -399..400 {
            assert!(mf.grade(1000 + d) >= 1);
        }
    }

    #[test]
    fn linearized_is_monotone_away_from_the_center() {
        let mf = LinearizedMf::new(0, 57);
        let mut prev = mf.grade(0);
        for d in 1..(4 * 57 + 5) {
            let g = mf.grade(d);
            assert!(
                g <= prev,
                "grade must not increase with distance: {g} > {prev} at {d}"
            );
            assert_eq!(g, mf.grade(-d), "symmetry around the centre");
            prev = g;
        }
    }

    #[test]
    fn linearized_tracks_the_gaussian_closely_inside_2s() {
        // Maximum relative deviation from the true Gaussian inside |d| < 2S
        // stays below 12 % of full scale (the linear interpolation error).
        let sigma = 40.0f64;
        let s = (2.35 * sigma).round() as i32;
        let mf = LinearizedMf::new(0, s);
        let mut worst = 0.0f64;
        for d in -(2 * s)..(2 * s) {
            let gauss = (MF_FULL_SCALE as f64) * (-0.5 * (d as f64 / sigma).powi(2)).exp();
            let diff = (mf.grade(d) as f64 - gauss).abs() / MF_FULL_SCALE as f64;
            worst = worst.max(diff);
        }
        assert!(worst < 0.12, "worst-case deviation {worst} too large");
    }

    #[test]
    fn triangular_reaches_zero_at_twice_the_half_width() {
        let mf = TriangularMf::new(500, 80);
        assert_eq!(u32::from(mf.grade(500)), MF_FULL_SCALE);
        assert_eq!(mf.grade(500 + 160), 0);
        assert_eq!(mf.grade(500 - 160), 0);
        assert!(mf.grade(500 + 80) > 30000 && mf.grade(500 + 80) < 35000);
        // Triangular dies off much faster than the linearised MF in the tail.
        let lin = LinearizedMf::new(500, 80);
        assert!(lin.grade(500 + 250) > mf.grade(500 + 250));
    }

    #[test]
    fn degenerate_width_is_clamped() {
        let mf = LinearizedMf::new(0, 0);
        assert_eq!(mf.s, 1);
        let mf = TriangularMf::new(0, -5);
        assert_eq!(mf.s, 1);
        assert_eq!(mf.grade(0), (MF_FULL_SCALE) as u16);
    }

    #[test]
    fn dispatch_enum_matches_the_concrete_types() {
        use crate::int_classifier::MembershipKind;
        let lin = IntMembership::new(MembershipKind::Linearized, 10, 20);
        let tri = IntMembership::new(MembershipKind::Triangular, 10, 20);
        assert_eq!(lin.grade(15), LinearizedMf::new(10, 20).grade(15));
        assert_eq!(tri.grade(15), TriangularMf::new(10, 20).grade(15));
        assert_eq!(lin.center(), 10);
        assert_eq!(tri.half_width(), 20);
        assert_eq!(lin.kind(), MembershipKind::Linearized);
        assert_eq!(tri.kind(), MembershipKind::Triangular);
    }

    #[test]
    fn extreme_inputs_do_not_overflow() {
        let mf = LinearizedMf::new(i32::MAX - 10, 1000);
        assert_eq!(mf.grade(i32::MIN), 0);
        let mf = TriangularMf::new(i32::MIN + 10, 1000);
        assert_eq!(mf.grade(i32::MAX), 0);
    }
}
