//! The online firmware: the Figure 6 pipeline fed one ADC sample at a time.
//!
//! [`WbsnFirmware::process_record`](crate::firmware::WbsnFirmware::process_record)
//! runs the embedded application over a complete stored record — convenient
//! for experiments, but not how the node of the paper operates. The node
//! sees *one sample per ADC tick* and must hold only a bounded slice of the
//! past. [`StreamingFirmware`] is that execution model on the host:
//!
//! 1. [`StreamingBaselineFilter`] corrects each sample online (group delay
//!    `4·⌊qrs/2⌋ + 2·⌊beat/2⌋` samples);
//! 2. [`StreamingPeakDetector`] — the push-based à-trous wavelet cascade
//!    feeding the incremental R-peak scanner with pre-calibrated thresholds;
//! 3. a [`StreamingBeatWindower`] cuts the 200-sample window of every
//!    finalized peak from a bounded ring buffer;
//! 4. the shared [`BeatScratch`] runs phase-correct decimation (the grid
//!    anchors at each window start, so the classifier sees the same
//!    4×-downsampled view wherever the beat occurred in the stream — the
//!    semantics `hbc_dsp::streaming::StreamingDecimator` captures as a
//!    standalone operator), ADC quantisation, packed projection and the
//!    integer NFC without allocating in steady state;
//! 5. beats flagged pathological are delineated on the classification lead
//!    and their fiducial count recorded, as the node would transmit them.
//!
//! Every stage is bit-identical to its batch counterpart (see
//! `hbc_dsp::streaming`), so — given thresholds calibrated on the same
//! signal — the per-beat classifications produced here are *exactly* those
//! of `process_record`, for any chunking of the input. The only divergence
//! is the delineation stage, which online sees the classification lead only
//! (the batch path fuses all record leads), affecting the transmitted
//! fiducial count but never the classification.
//!
//! Ground truth is unknown online, so emitted [`BeatOutcome`]s carry
//! `truth: None`; serving layers label them after the fact by matching
//! positions against annotations (see `hbc_core`'s `StreamHub`).

use std::collections::VecDeque;
use std::time::Instant;

use hbc_dsp::peak::{PeakDetector, PeakThresholds};
use hbc_dsp::streaming::{StreamingBaselineFilter, StreamingBeatWindower};
use hbc_dsp::{Delineator, StreamingPeakDetector};
use hbc_obs::Histogram;

use crate::firmware::{BeatOutcome, BeatScratch, StageNanos, WbsnFirmware};

/// Per-stage latency histograms for one online pipeline (nanoseconds).
///
/// `conditioning` is recorded once per [`StreamingFirmware::push_chunk`]
/// call and covers the front-end DSP — baseline filter, wavelet cascade,
/// peak scan and windowing — with the per-beat stage time subtracted out.
/// The remaining histograms are per beat. Histogram merge is deterministic
/// (element-wise bucket addition), so per-session metrics aggregate to
/// hub- or fleet-level distributions independent of how sessions were
/// sharded.
#[derive(Debug, Clone, Default)]
pub struct StageMetrics {
    /// Front-end conditioning per ingested chunk.
    pub conditioning_nanos: Histogram,
    /// Window preparation + packed projection per beat.
    pub projection_nanos: Histogram,
    /// Integer NFC classification per beat.
    pub classify_nanos: Histogram,
    /// MMD delineation per forwarded (abnormal) beat.
    pub delineation_nanos: Histogram,
}

impl StageMetrics {
    /// Merges another pipeline's stage histograms into this one
    /// (deterministic: any split/merge order yields the same result).
    pub fn merge(&mut self, other: &StageMetrics) {
        self.conditioning_nanos.merge(&other.conditioning_nanos);
        self.projection_nanos.merge(&other.projection_nanos);
        self.classify_nanos.merge(&other.classify_nanos);
        self.delineation_nanos.merge(&other.delineation_nanos);
    }
}

/// The Figure 6 application as a push-based stream processor with bounded
/// memory and zero steady-state allocation.
#[derive(Debug, Clone)]
pub struct StreamingFirmware<'fw> {
    firmware: &'fw WbsnFirmware,
    filter: StreamingBaselineFilter,
    detector: StreamingPeakDetector,
    windower: StreamingBeatWindower,
    delineator: Delineator,
    scratch: BeatScratch,
    /// Reused full-rate window buffer (classification + delineation input).
    window_buf: Vec<f64>,
    outcomes: VecDeque<BeatOutcome>,
    samples_in: usize,
    beats_out: usize,
    forwarded: usize,
    finished: bool,
    stages: StageMetrics,
    /// Nanoseconds spent in per-beat stages since construction; `push_chunk`
    /// subtracts its delta from the chunk wall-clock to attribute the rest
    /// to front-end conditioning.
    beat_nanos_acc: u64,
}

impl<'fw> StreamingFirmware<'fw> {
    /// Builds the online pipeline around a trained firmware image.
    ///
    /// `fs` is the acquisition sampling rate; `thresholds` are the fixed
    /// detection thresholds of the deployment (calibrate with
    /// [`PeakDetector::calibrate`] over a baseline-filtered stretch of the
    /// patient's signal, or reuse host-side thresholds).
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive (propagated from the DSP stages).
    pub fn new(firmware: &'fw WbsnFirmware, fs: f64, thresholds: PeakThresholds) -> Self {
        let detector_cfg = PeakDetector::new(fs);
        let detector = StreamingPeakDetector::new(&detector_cfg, thresholds);
        // The windower must retain enough history to serve a window whose
        // peak is only finalized `detector.delay()` samples later.
        let history = firmware.window.len() + detector.delay() + 64;
        StreamingFirmware {
            filter: StreamingBaselineFilter::for_sampling_rate(fs),
            windower: StreamingBeatWindower::new(firmware.window, history),
            delineator: Delineator::new(fs),
            detector,
            scratch: BeatScratch::default(),
            window_buf: Vec::new(),
            outcomes: VecDeque::new(),
            samples_in: 0,
            beats_out: 0,
            forwarded: 0,
            finished: false,
            stages: StageMetrics::default(),
            beat_nanos_acc: 0,
            firmware,
        }
    }

    /// Total end-to-end latency bound, in samples, between an R peak
    /// entering the node and its [`BeatOutcome`] becoming available.
    pub fn delay(&self) -> usize {
        self.filter.delay() + self.detector.delay() + self.firmware.window.post
    }

    /// Samples pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.samples_in
    }

    /// Beat outcomes emitted so far (drained or not).
    pub fn beats_emitted(&self) -> usize {
        self.beats_out
    }

    /// Beats forwarded to the delineation stage so far.
    pub fn forwarded_beats(&self) -> usize {
        self.forwarded
    }

    /// Fraction of emitted beats forwarded to delineation.
    pub fn forwarded_fraction(&self) -> f64 {
        if self.beats_out == 0 {
            0.0
        } else {
            self.forwarded as f64 / self.beats_out as f64
        }
    }

    /// Pushes one raw ADC-rate sample (classification lead, millivolts).
    ///
    /// # Panics
    ///
    /// Panics if called after [`Self::finish`].
    pub fn push(&mut self, sample: f64) {
        assert!(!self.finished, "push after finish");
        self.samples_in += 1;
        if let Some(filtered) = self.filter.push(sample) {
            self.ingest_filtered(filtered);
        }
    }

    /// Pushes a chunk of consecutive samples. Chunking is immaterial: any
    /// partition of the signal into `push_chunk`/`push` calls produces the
    /// identical outcome stream.
    ///
    /// Each call records one observation in the conditioning-stage
    /// histogram (chunk wall-clock minus the per-beat stage time), so the
    /// serving path's batch ingestion is telemetered for free; the
    /// per-sample [`Self::push`] entry point stays clock-free.
    pub fn push_chunk(&mut self, samples: &[f64]) {
        if samples.is_empty() {
            return;
        }
        let started = Instant::now();
        let beats_before = self.beat_nanos_acc;
        for &s in samples {
            self.push(s);
        }
        let total = started.elapsed().as_nanos() as u64;
        let beat_time = self.beat_nanos_acc - beats_before;
        self.stages
            .conditioning_nanos
            .record(total.saturating_sub(beat_time));
    }

    /// Declares the end of the stream: the filter drains its right border
    /// (bit-identical to the batch filter's clamping), the wavelet reflects
    /// its tail, the scan runs to completion and all remaining beats are
    /// emitted. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let mut tail = Vec::new();
        self.filter.finish_into(&mut tail);
        for v in tail {
            self.ingest_filtered(v);
        }
        self.detector.finish();
        self.drain_peaks();
        self.drain_windows();
    }

    /// Next classified beat, in temporal order.
    pub fn pop_outcome(&mut self) -> Option<BeatOutcome> {
        self.outcomes.pop_front()
    }

    /// The firmware image this stream currently classifies with.
    pub fn firmware(&self) -> &'fw WbsnFirmware {
        self.firmware
    }

    /// Replaces the firmware image mid-stream (model hot-swap).
    ///
    /// Beats are classified atomically inside [`Self::push`] — a window is
    /// cut, classified and emitted before the call returns — so a swap
    /// between pushes always lands on a beat boundary: every beat is scored
    /// entirely by the old image or entirely by the new one, never by a
    /// mixture, and already-emitted outcomes are untouched. The detector
    /// thresholds and filter state are per-patient calibration, not part of
    /// the image, and survive the swap.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the new image's beat window
    /// differs from the current one: the windower's ring buffer and history
    /// are sized for the deployed window, so an image with a different
    /// geometry needs a fresh session, not a swap.
    pub fn swap_firmware(&mut self, firmware: &'fw WbsnFirmware) -> crate::Result<()> {
        if firmware.window != self.firmware.window {
            return Err(crate::EmbeddedError::Dimension(format!(
                "cannot hot-swap to a firmware with window {:?} (deployed: {:?})",
                firmware.window, self.firmware.window
            )));
        }
        self.firmware = firmware;
        Ok(())
    }

    fn ingest_filtered(&mut self, filtered: f64) {
        self.windower.push_sample(filtered);
        self.detector.push(filtered);
        self.drain_peaks();
        self.drain_windows();
    }

    fn drain_peaks(&mut self) {
        while let Some(peak) = self.detector.pop_peak() {
            self.windower.push_peak(peak);
        }
    }

    fn drain_windows(&mut self) {
        let mut window = std::mem::take(&mut self.window_buf);
        while let Some(peak) = self.windower.pop_window(&mut window) {
            self.emit_beat(peak, &window);
        }
        self.window_buf = window;
    }

    /// Per-stage latency histograms accumulated by this pipeline.
    pub fn stage_metrics(&self) -> &StageMetrics {
        &self.stages
    }

    fn emit_beat(&mut self, peak: usize, window: &[f64]) {
        // Stage 3-5 exactly as the batch path runs them: the decimation grid
        // anchors at the window start (phase-correct relative to the R peak,
        // the `step_by` inside the shared scratch), then ADC quantisation,
        // packed projection and integer NFC against reused buffers.
        let fw = self.firmware;
        let mut beat_stages = StageNanos::default();
        let predicted = fw
            .classify_window_timed(window, &mut self.scratch, &mut beat_stages)
            .expect("windower emits firmware-sized windows");
        let delineated = predicted.is_abnormal();
        let fiducials_transmitted = if delineated {
            self.forwarded += 1;
            let del_started = Instant::now();
            let fiducials = self
                .delineator
                .delineate_multilead(&[window], fw.window.pre)
                .map(|f| f.count().max(1))
                .unwrap_or(1);
            let del_nanos = del_started.elapsed().as_nanos() as u64;
            self.stages.delineation_nanos.record(del_nanos);
            self.beat_nanos_acc += del_nanos;
            fiducials
        } else {
            1 // peak position only
        };
        self.stages
            .projection_nanos
            .record(beat_stages.prepare + beat_stages.project);
        self.stages.classify_nanos.record(beat_stages.classify);
        self.beat_nanos_acc += beat_stages.total();
        self.beats_out += 1;
        self.outcomes.push_back(BeatOutcome {
            peak,
            truth: None,
            predicted,
            delineated,
            fiducials_transmitted,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Quantizer;
    use crate::int_classifier::AlphaQ16;
    use hbc_dsp::MorphologicalFilter;
    use hbc_ecg::beat::BeatWindow;
    use hbc_ecg::dataset::DatasetSpec;
    use hbc_ecg::record::Lead;
    use hbc_ecg::synthetic::SyntheticEcg;
    use hbc_ecg::Dataset;
    use hbc_nfc::pipeline_fit_quick;
    use hbc_rp::PackedProjection;

    fn build_firmware() -> WbsnFirmware {
        let spec = DatasetSpec::tiny();
        let mut dataset = Dataset::synthetic(spec, 9);
        for split in [
            &mut dataset.training1,
            &mut dataset.training2,
            &mut dataset.test,
        ] {
            for beat in split.iter_mut() {
                *beat = beat.downsample(4);
            }
        }
        let pipeline = pipeline_fit_quick(&dataset, 8, 11);
        let classifier = Quantizer::new()
            .quantize_classifier(&pipeline.classifier)
            .expect("quantise");
        let packed = PackedProjection::from_matrix(&pipeline.projection);
        WbsnFirmware::new(
            packed,
            classifier,
            AlphaQ16::from_f64(pipeline.alpha_train).expect("alpha in range"),
            4,
            BeatWindow::PAPER,
        )
        .expect("consistent dimensions")
    }

    #[test]
    fn streaming_firmware_reproduces_process_record_sample_by_sample() {
        let fw = build_firmware();
        let mut gen = SyntheticEcg::with_seed(77);
        let rhythm = gen.rhythm(60, 0.12, 0.12);
        let record = gen.record(50, &rhythm, 1).expect("record");
        let batch = fw.process_record(&record).expect("batch run");

        // Calibrate thresholds exactly as the batch path derives them: over
        // the filtered classification lead.
        let raw = record.lead(Lead(0)).expect("lead 0");
        let filtered = MorphologicalFilter::for_sampling_rate(record.fs)
            .apply(raw)
            .expect("filter");
        let thresholds = PeakDetector::new(record.fs)
            .calibrate(&filtered)
            .expect("calibrate");

        let mut streaming = StreamingFirmware::new(&fw, record.fs, thresholds);
        let mut outcomes = Vec::new();
        for &s in raw {
            streaming.push(s);
            while let Some(o) = streaming.pop_outcome() {
                outcomes.push(o);
            }
        }
        streaming.finish();
        while let Some(o) = streaming.pop_outcome() {
            outcomes.push(o);
        }

        assert_eq!(
            outcomes.len(),
            batch.beats.len(),
            "streaming and batch must see the same beats"
        );
        for (s, b) in outcomes.iter().zip(&batch.beats) {
            assert_eq!(s.peak, b.peak, "peak positions must agree");
            assert_eq!(s.predicted, b.predicted, "classes must agree");
            assert_eq!(s.delineated, b.delineated);
            assert_eq!(s.truth, None, "online beats carry no ground truth");
        }
        assert_eq!(streaming.beats_emitted(), batch.beats.len());
        assert_eq!(streaming.forwarded_beats(), batch.stats.forwarded_beats);
        assert_eq!(streaming.samples_pushed(), raw.len());
        assert!(streaming.delay() > 0);
        assert!(streaming.forwarded_fraction() >= 0.0);
    }

    #[test]
    fn finishing_twice_is_harmless_and_push_after_finish_panics() {
        let fw = build_firmware();
        let thresholds = PeakThresholds {
            first_scale: 1.0,
            cross_scale: vec![1.0; 3],
        };
        let mut streaming = StreamingFirmware::new(&fw, 360.0, thresholds);
        streaming.push_chunk(&[0.0; 500]);
        streaming.finish();
        streaming.finish();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            streaming.push(0.0);
        }));
        assert!(result.is_err(), "push after finish must panic");
    }
}
