//! Integer-only neuro-fuzzy classifier (the WBSN execution path).
//!
//! This is the classifier that actually runs on the node after the
//! optimisation phase: membership grades come from the integer membership
//! functions of [`crate::linear_mf`], the fuzzification layer multiplies them
//! with the overflow-safe shift-normalisation scheme of Section III-B, and the
//! defuzzification layer applies the `(M1 − M2) ≥ α·S` rule without any
//! division, with an α_test that can be retuned after deployment
//! independently of the α_train chosen during training.

use hbc_ecg::beat::{BeatClass, NUM_CLASSES};

use crate::linear_mf::IntMembership;
use crate::{EmbeddedError, Result};

/// Which integer membership family the classifier uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MembershipKind {
    /// The paper's 4-segment linearisation of the Gaussian.
    Linearized,
    /// The simpler triangular approximation (Figure 4 / Figure 5 comparison).
    Triangular,
}

impl std::fmt::Display for MembershipKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipKind::Linearized => write!(f, "linearized"),
            MembershipKind::Triangular => write!(f, "triangular"),
        }
    }
}

/// Defuzzification coefficient expressed as a Q16 fraction so the decision
/// rule needs no division: `alpha_q16 = round(α · 2¹⁶)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AlphaQ16(pub u32);

impl AlphaQ16 {
    /// Converts a floating-point α in `[0, 1]` to the Q16 representation.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Range`] when α is outside `[0, 1]`.
    pub fn from_f64(alpha: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(EmbeddedError::Range(format!(
                "alpha must be in [0, 1], got {alpha}"
            )));
        }
        Ok(AlphaQ16((alpha * 65536.0).round() as u32))
    }

    /// Converts back to floating point (for reporting only).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / 65536.0
    }
}

/// Decision produced by the integer classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntDecision {
    /// Assigned class (possibly Unknown).
    pub class: BeatClass,
    /// Raw fuzzy values after shift-normalised fuzzification (16-bit range).
    pub fuzzy: [u32; NUM_CLASSES],
}

impl IntDecision {
    /// Whether the decision routes the beat to the detailed-analysis path.
    pub fn is_abnormal(&self) -> bool {
        self.class.is_abnormal()
    }
}

/// The integer-only neuro-fuzzy classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegerNfc {
    mfs: Vec<[IntMembership; NUM_CLASSES]>,
}

impl IntegerNfc {
    /// Builds a classifier from integer membership functions
    /// (`mfs[coefficient][class]`).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when `mfs` is empty.
    pub fn new(mfs: Vec<[IntMembership; NUM_CLASSES]>) -> Result<Self> {
        if mfs.is_empty() {
            return Err(EmbeddedError::Dimension(
                "the classifier needs at least one coefficient".into(),
            ));
        }
        Ok(IntegerNfc { mfs })
    }

    /// Number of projected coefficients the classifier expects.
    pub fn num_coefficients(&self) -> usize {
        self.mfs.len()
    }

    /// Membership functions of one coefficient.
    ///
    /// # Panics
    ///
    /// Panics when `coefficient >= num_coefficients()`.
    pub fn membership(&self, coefficient: usize) -> &[IntMembership; NUM_CLASSES] {
        &self.mfs[coefficient]
    }

    /// Which membership family the classifier uses (taken from its first
    /// membership function; construction keeps the family homogeneous).
    pub fn kind(&self) -> MembershipKind {
        self.mfs[0][0].kind()
    }

    /// Fuzzification with the overflow-safe scheme of the paper.
    ///
    /// The membership grades of the first coefficient initialise three 32-bit
    /// accumulators (one per class). For every further coefficient the
    /// accumulators are multiplied by the 16-bit grades, left-shifted by the
    /// largest amount that keeps all three within 32 bits, and the rightmost
    /// 16 bits are discarded — thereby retaining the maximum precision the
    /// 32-bit representation allows while keeping only the *ratios* between
    /// classes, which is all the defuzzification rule needs.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the input length does not
    /// match the classifier.
    pub fn fuzzify(&self, coefficients: &[i32]) -> Result<[u32; NUM_CLASSES]> {
        if coefficients.len() != self.mfs.len() {
            return Err(EmbeddedError::Dimension(format!(
                "expected {} coefficients, got {}",
                self.mfs.len(),
                coefficients.len()
            )));
        }
        // First coefficient initialises the accumulators.
        let mut f = [0u32; NUM_CLASSES];
        for (l, acc) in f.iter_mut().enumerate() {
            *acc = self.mfs[0][l].grade(coefficients[0]) as u32;
        }
        // Subsequent coefficients: multiply, renormalise, truncate.
        for (k, &u) in coefficients.iter().enumerate().skip(1) {
            for (l, acc) in f.iter_mut().enumerate() {
                // acc <= 0xFFFF after the previous truncation, grade <= 0xFFFF,
                // so the product fits in u32.
                *acc *= self.mfs[k][l].grade(u) as u32;
            }
            let max = f.iter().copied().max().unwrap_or(0);
            if max == 0 {
                // Every class collapsed to zero; nothing left to normalise.
                return Ok(f);
            }
            let shift = max.leading_zeros();
            for acc in &mut f {
                *acc = (*acc << shift) >> 16;
            }
        }
        Ok(f)
    }

    /// Division-free defuzzification: the beat is assigned to the class with
    /// the largest fuzzy value when `(M1 − M2)·2¹⁶ ≥ alpha_q16 · S` (all in
    /// 64-bit integer arithmetic), and to Unknown otherwise.
    ///
    /// α = 1 (the top of the Q16 grid) is the all-Unknown operating point of
    /// the paper's sweeps. The `≥` comparison alone would keep a beat whose
    /// fuzzy mass saturates one class (`M1 = S`, `M2 = 0`) confidently
    /// classified there, so that grid point is handled explicitly — this is
    /// what guarantees the ARR = 1 anchor the α calibration binary-searches
    /// against.
    pub fn defuzzify(&self, fuzzy: &[u32; NUM_CLASSES], alpha: AlphaQ16) -> BeatClass {
        if alpha.0 >= 65_536 {
            return BeatClass::Unknown;
        }
        let mut best = 0usize;
        for l in 1..NUM_CLASSES {
            if fuzzy[l] > fuzzy[best] {
                best = l;
            }
        }
        let mut second = if best == 0 { 1 } else { 0 };
        for l in 0..NUM_CLASSES {
            if l != best && fuzzy[l] > fuzzy[second] {
                second = l;
            }
        }
        let sum: u64 = fuzzy.iter().map(|&v| v as u64).sum();
        if sum == 0 {
            // No class retained any evidence: the beat is undecidable.
            return BeatClass::Unknown;
        }
        let margin = (fuzzy[best] - fuzzy[second]) as u64;
        if margin << 16 >= alpha.0 as u64 * sum {
            BeatClass::from_index(best).expect("index within NUM_CLASSES")
        } else {
            BeatClass::Unknown
        }
    }

    /// Full classification of one integer coefficient vector.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddedError::Dimension`] when the input length does not
    /// match the classifier.
    pub fn classify(&self, coefficients: &[i32], alpha: AlphaQ16) -> Result<IntDecision> {
        let fuzzy = self.fuzzify(coefficients)?;
        Ok(IntDecision {
            class: self.defuzzify(&fuzzy, alpha),
            fuzzy,
        })
    }

    /// Number of 16×16→32 multiplications one classification performs (used
    /// by the cycle model).
    pub fn multiplications_per_beat(&self) -> usize {
        // One grade evaluation per (coefficient, class) costs one
        // multiplication in the linear-segment interpolation, plus the
        // fuzzification product itself.
        self.mfs.len() * NUM_CLASSES * 2
    }

    /// Size in bytes of the membership parameter table stored in RAM/flash
    /// (centre and half-width per membership function, 4 + 2 bytes each).
    pub fn parameter_table_bytes(&self) -> usize {
        self.mfs.len() * NUM_CLASSES * 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_mf::MF_FULL_SCALE;

    fn toy_classifier(kind: MembershipKind, k: usize) -> IntegerNfc {
        // Class N centred at 0, V at +1000, L at −1000 on every coefficient.
        let rows = (0..k)
            .map(|_| {
                [
                    IntMembership::new(kind, 0, 200),
                    IntMembership::new(kind, 1000, 200),
                    IntMembership::new(kind, -1000, 200),
                ]
            })
            .collect();
        IntegerNfc::new(rows).expect("non-empty")
    }

    #[test]
    fn construction_and_accessors() {
        assert!(IntegerNfc::new(vec![]).is_err());
        let c = toy_classifier(MembershipKind::Linearized, 8);
        assert_eq!(c.num_coefficients(), 8);
        assert_eq!(c.kind(), MembershipKind::Linearized);
        assert_eq!(c.membership(0)[1].center(), 1000);
        assert!(c.multiplications_per_beat() > 0);
        assert_eq!(c.parameter_table_bytes(), 8 * 3 * 6);
    }

    #[test]
    fn alpha_q16_conversion() {
        assert_eq!(AlphaQ16::from_f64(0.0).expect("valid").0, 0);
        assert_eq!(AlphaQ16::from_f64(1.0).expect("valid").0, 65536);
        let a = AlphaQ16::from_f64(0.25).expect("valid");
        assert_eq!(a.0, 16384);
        assert!((a.to_f64() - 0.25).abs() < 1e-9);
        assert!(AlphaQ16::from_f64(1.5).is_err());
        assert!(AlphaQ16::from_f64(-0.1).is_err());
    }

    #[test]
    fn clear_inputs_are_classified_correctly() {
        for kind in [MembershipKind::Linearized, MembershipKind::Triangular] {
            let c = toy_classifier(kind, 8);
            let alpha = AlphaQ16::from_f64(0.1).expect("valid");
            let n = c.classify(&[0; 8], alpha).expect("classify");
            assert_eq!(n.class, BeatClass::Normal, "kind {kind}");
            let v = c.classify(&[1000; 8], alpha).expect("classify");
            assert_eq!(v.class, BeatClass::PrematureVentricular);
            assert!(v.is_abnormal());
            let l = c.classify(&[-1000; 8], alpha).expect("classify");
            assert_eq!(l.class, BeatClass::LeftBundleBranchBlock);
        }
    }

    #[test]
    fn ambiguous_inputs_become_unknown() {
        let c = toy_classifier(MembershipKind::Linearized, 8);
        let alpha = AlphaQ16::from_f64(0.2).expect("valid");
        // Exactly between N and V.
        let d = c.classify(&[500; 8], alpha).expect("classify");
        assert_eq!(d.class, BeatClass::Unknown);
    }

    #[test]
    fn far_inputs_with_triangular_mfs_lose_all_evidence() {
        let c = toy_classifier(MembershipKind::Triangular, 8);
        // Far from every centre: triangular grades are all zero, which the
        // defuzzifier must treat as Unknown rather than panic.
        let d = c
            .classify(&[100_000; 8], AlphaQ16::from_f64(0.0).expect("valid"))
            .expect("classify");
        assert_eq!(d.class, BeatClass::Unknown);
        assert_eq!(d.fuzzy, [0, 0, 0]);
    }

    #[test]
    fn linearized_mfs_keep_evidence_where_triangular_collapses() {
        // Between 2S and 4S from the best centre the linearised MF still
        // returns 1 while the triangular one returns 0 — the paper's argument
        // for the 4-segment shape.
        let lin = toy_classifier(MembershipKind::Linearized, 4);
        let tri = toy_classifier(MembershipKind::Triangular, 4);
        let x = [1000 + 3 * 200; 4]; // 3S away from the V centre
        let alpha = AlphaQ16::from_f64(0.0).expect("valid");
        let dl = lin.classify(&x, alpha).expect("classify");
        let dt = tri.classify(&x, alpha).expect("classify");
        assert_eq!(dl.class, BeatClass::PrematureVentricular);
        assert_eq!(dt.class, BeatClass::Unknown);
    }

    #[test]
    fn fuzzification_never_overflows_with_many_coefficients() {
        let c = toy_classifier(MembershipKind::Linearized, 32);
        let f = c.fuzzify(&[3; 32]).expect("dims ok");
        // The winning class keeps a 16-bit-scale value after normalisation.
        assert!(f[0] > 0);
        assert!(f[0] <= MF_FULL_SCALE);
    }

    #[test]
    fn higher_alpha_only_moves_decisions_to_unknown() {
        let c = toy_classifier(MembershipKind::Linearized, 8);
        for x in [-1200, -400, 0, 300, 700, 1000] {
            let lo = c
                .classify(&[x; 8], AlphaQ16::from_f64(0.05).expect("valid"))
                .expect("classify");
            let hi = c
                .classify(&[x; 8], AlphaQ16::from_f64(0.9).expect("valid"))
                .expect("classify");
            if hi.class != BeatClass::Unknown {
                assert_eq!(hi.class, lo.class);
            }
            if lo.class == BeatClass::Unknown {
                assert_eq!(hi.class, BeatClass::Unknown);
            }
        }
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let c = toy_classifier(MembershipKind::Linearized, 8);
        assert!(matches!(
            c.classify(&[0; 7], AlphaQ16::from_f64(0.1).expect("valid")),
            Err(EmbeddedError::Dimension(_))
        ));
    }

    #[test]
    fn integer_decisions_track_the_float_classifier() {
        // Build a float classifier, quantise it, and check the two agree on
        // confidently classified inputs.
        use crate::fixed::Quantizer;
        use hbc_nfc::{GaussianMf, NeuroFuzzyClassifier};
        let mfs: Vec<[GaussianMf; NUM_CLASSES]> = (0..8)
            .map(|_| {
                [
                    GaussianMf::new(0.0, 0.5),
                    GaussianMf::new(3.0, 0.5),
                    GaussianMf::new(-3.0, 0.5),
                ]
            })
            .collect();
        let float_nfc = NeuroFuzzyClassifier::new(mfs).expect("valid");
        let int_nfc = Quantizer::new()
            .quantize_classifier(&float_nfc)
            .expect("quantise");
        let gain = crate::fixed::AdcModel::default_frontend().codes_per_mv();
        let alpha = 0.1;
        let alpha_q = AlphaQ16::from_f64(alpha).expect("valid");
        for value in [-3.0f64, 0.0, 3.0] {
            let float_dec = float_nfc.classify(&[value; 8], alpha).expect("float");
            let int_input = [(value * gain).round() as i32; 8];
            let int_dec = int_nfc.classify(&int_input, alpha_q).expect("int");
            assert_eq!(float_dec.class, int_dec.class, "disagreement at {value}");
        }
    }
}
