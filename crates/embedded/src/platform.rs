//! Model of the IcyHeart WBSN platform.
//!
//! The paper evaluates the embedded application on the IcyHeart
//! System-on-Chip: a single die integrating a low-power microprocessor
//! (icyflex family) clocked at 6 MHz with 96 KB of embedded RAM, a
//! multi-channel ADC and a wireless transmitter.
//!
//! Since the physical SoC is not available, this module provides the
//! *platform model* used throughout the repository (see the substitution
//! table in `DESIGN.md`): a cycle-cost table for the integer operations the
//! embedded kernels execute, the memory budget, and per-stage cycle
//! accounting. Per-operation costs are representative of a small in-order
//! integer core (single-cycle ALU, multi-cycle multiply, no divide unit), and
//! the resulting *relative* stage costs are what Table III and Section IV-E
//! depend on.

/// Operation mix executed by a processing stage over some amount of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperationCounts {
    /// Additions / subtractions.
    pub adds: u64,
    /// Integer multiplications.
    pub muls: u64,
    /// Comparisons (including min/max selections).
    pub compares: u64,
    /// Memory loads.
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// Branches / loop overhead.
    pub branches: u64,
}

impl OperationCounts {
    /// Sums two operation mixes.
    pub fn merged(&self, other: &OperationCounts) -> OperationCounts {
        OperationCounts {
            adds: self.adds + other.adds,
            muls: self.muls + other.muls,
            compares: self.compares + other.compares,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            branches: self.branches + other.branches,
        }
    }

    /// Scales every count by an integer factor.
    pub fn scaled(&self, factor: u64) -> OperationCounts {
        OperationCounts {
            adds: self.adds * factor,
            muls: self.muls * factor,
            compares: self.compares * factor,
            loads: self.loads * factor,
            stores: self.stores * factor,
            branches: self.branches * factor,
        }
    }

    /// Total number of operations.
    pub fn total(&self) -> u64 {
        self.adds + self.muls + self.compares + self.loads + self.stores + self.branches
    }
}

/// Cycle cost of each operation class on the modelled core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleCosts {
    /// Cycles per addition/subtraction.
    pub add: u64,
    /// Cycles per integer multiplication.
    pub mul: u64,
    /// Cycles per comparison.
    pub compare: u64,
    /// Cycles per load.
    pub load: u64,
    /// Cycles per store.
    pub store: u64,
    /// Cycles per branch.
    pub branch: u64,
}

impl Default for CycleCosts {
    fn default() -> Self {
        // Small in-order integer core: single-cycle ALU and memory (embedded
        // SRAM), 3-cycle multiplier, 2-cycle taken branch.
        CycleCosts {
            add: 1,
            mul: 3,
            compare: 1,
            load: 1,
            store: 1,
            branch: 2,
        }
    }
}

impl CycleCosts {
    /// Cycles needed to execute an operation mix.
    pub fn cycles(&self, ops: &OperationCounts) -> u64 {
        ops.adds * self.add
            + ops.muls * self.mul
            + ops.compares * self.compare
            + ops.loads * self.load
            + ops.stores * self.store
            + ops.branches * self.branch
    }
}

/// Cycle count attributed to one processing stage over a known time span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCycles {
    /// Cycles spent in the stage.
    pub cycles: u64,
    /// Wall-clock span the cycles refer to, in seconds.
    pub span_s: f64,
}

impl StageCycles {
    /// Creates a stage accounting entry.
    pub fn new(cycles: u64, span_s: f64) -> Self {
        StageCycles { cycles, span_s }
    }

    /// Duty cycle on a platform with the given clock: the fraction of CPU
    /// time the stage consumes.
    pub fn duty_cycle(&self, clock_hz: f64) -> f64 {
        if self.span_s <= 0.0 || clock_hz <= 0.0 {
            return 0.0;
        }
        (self.cycles as f64 / self.span_s) / clock_hz
    }
}

/// The IcyHeart platform model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcyHeartPlatform {
    /// CPU clock frequency in Hz (6 MHz in the paper).
    pub clock_hz: f64,
    /// Embedded RAM size in bytes (96 KB in the paper).
    pub ram_bytes: usize,
    /// Cycle cost table of the core.
    pub costs: CycleCosts,
    /// Active-mode CPU energy per cycle, in nanojoules. Representative of a
    /// 90 nm low-power core (~0.1 nJ/cycle); only *relative* energy figures
    /// are reported, so the absolute value is not critical.
    pub cpu_energy_nj_per_cycle: f64,
    /// Radio energy per transmitted bit, in nanojoules (~200 nJ/bit for a
    /// low-power 2.4 GHz transmitter including protocol overhead).
    pub radio_energy_nj_per_bit: f64,
}

impl IcyHeartPlatform {
    /// The paper's platform: 6 MHz clock, 96 KB RAM.
    pub fn paper() -> Self {
        IcyHeartPlatform {
            clock_hz: 6.0e6,
            ram_bytes: 96 * 1024,
            costs: CycleCosts::default(),
            cpu_energy_nj_per_cycle: 0.1,
            radio_energy_nj_per_bit: 200.0,
        }
    }

    /// Cycles needed for an operation mix on this platform.
    pub fn cycles(&self, ops: &OperationCounts) -> u64 {
        self.costs.cycles(ops)
    }

    /// Duty cycle of a stage running `cycles` cycles every `span_s` seconds.
    pub fn duty_cycle(&self, cycles: u64, span_s: f64) -> f64 {
        StageCycles::new(cycles, span_s).duty_cycle(self.clock_hz)
    }

    /// Energy (in millijoules) of running `cycles` CPU cycles.
    pub fn cpu_energy_mj(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cpu_energy_nj_per_cycle * 1e-6
    }

    /// Energy (in millijoules) of transmitting `bits` over the radio.
    pub fn radio_energy_mj(&self, bits: u64) -> f64 {
        bits as f64 * self.radio_energy_nj_per_bit * 1e-6
    }

    /// Whether an image of `bytes` bytes fits the platform RAM.
    pub fn fits_in_ram(&self, bytes: usize) -> bool {
        bytes <= self.ram_bytes
    }
}

impl Default for IcyHeartPlatform {
    fn default() -> Self {
        IcyHeartPlatform::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_constants() {
        let p = IcyHeartPlatform::paper();
        assert_eq!(p.clock_hz, 6.0e6);
        assert_eq!(p.ram_bytes, 98_304);
        assert!(p.fits_in_ram(96 * 1024));
        assert!(!p.fits_in_ram(96 * 1024 + 1));
    }

    #[test]
    fn operation_counts_merge_and_scale() {
        let a = OperationCounts {
            adds: 10,
            muls: 2,
            compares: 5,
            loads: 8,
            stores: 3,
            branches: 1,
        };
        let b = a.scaled(3);
        assert_eq!(b.adds, 30);
        assert_eq!(b.total(), a.total() * 3);
        let c = a.merged(&b);
        assert_eq!(c.adds, 40);
        assert_eq!(c.total(), a.total() * 4);
    }

    #[test]
    fn cycle_costs_weigh_multiplications_more() {
        let costs = CycleCosts::default();
        let adds_only = OperationCounts {
            adds: 100,
            ..Default::default()
        };
        let muls_only = OperationCounts {
            muls: 100,
            ..Default::default()
        };
        assert!(costs.cycles(&muls_only) > costs.cycles(&adds_only));
        assert_eq!(costs.cycles(&adds_only), 100);
        assert_eq!(costs.cycles(&muls_only), 300);
    }

    #[test]
    fn duty_cycle_computation() {
        let p = IcyHeartPlatform::paper();
        // 600 000 cycles every second on a 6 MHz clock is a 10 % duty cycle.
        assert!((p.duty_cycle(600_000, 1.0) - 0.1).abs() < 1e-12);
        // Degenerate spans yield zero rather than infinity.
        assert_eq!(p.duty_cycle(1000, 0.0), 0.0);
        let s = StageCycles::new(1000, 1.0);
        assert_eq!(s.duty_cycle(0.0), 0.0);
    }

    #[test]
    fn energy_helpers_scale_linearly() {
        let p = IcyHeartPlatform::paper();
        assert!((p.cpu_energy_mj(10_000_000) - 1.0).abs() < 1e-9);
        assert!((p.radio_energy_mj(5_000) - 1.0).abs() < 1e-9);
        assert_eq!(p.cpu_energy_mj(0), 0.0);
    }
}
