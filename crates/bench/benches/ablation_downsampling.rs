//! Ablation: effect of the 4× downsampling (360 Hz → 90 Hz) the paper applies
//! in the WBSN version. Reports the NDR at the ARR target for factors 1, 2
//! and 4 and measures the corresponding per-beat classification cost and
//! projection-matrix size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbc_bench::bench_config;
use hbc_core::pipeline::TrainedSystem;

fn bench_downsampling(c: &mut Criterion) {
    let base = bench_config();

    println!("\nAblation — downsampling factor (NDR at ARR >= 97 % on the test split)");
    println!(
        "{:<10} {:>10} {:>14} {:>18}",
        "factor", "window", "NDR-WBSN (%)", "matrix bytes"
    );
    let mut systems = Vec::new();
    for &factor in &[1usize, 2, 4] {
        let mut config = base;
        config.downsample = factor;
        let system = TrainedSystem::train(&config).expect("training succeeds");
        let (_, report) = system
            .wbsn
            .calibrate_alpha(&system.dataset.test, config.target_arr)
            .expect("calibration");
        println!(
            "{:<10} {:>10} {:>14.2} {:>18}",
            factor,
            200usize.div_ceil(factor),
            100.0 * report.ndr(),
            system.wbsn.projection.size_bytes()
        );
        systems.push((factor, system));
    }

    let mut group = c.benchmark_group("ablation_downsampling");
    group.sample_size(20);
    for (factor, system) in &systems {
        let beat = system.dataset.test[0].clone();
        group.bench_with_input(
            BenchmarkId::new("wbsn_classify_per_beat", factor),
            factor,
            |b, _| b.iter(|| system.wbsn.classify(&beat).expect("window matches")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_downsampling);
criterion_main!(benches);
