//! Cost of leaving the `hbc-obs` instrumentation enabled on the ingest
//! path.
//!
//! Records a baseline in `BENCH_obs.json` (opt-in via `HBC_BENCH_BASELINE=1`)
//! and gates regressions in CI (`HBC_BENCH_REGRESSION=1`). Wall-clock
//! nanoseconds do not transfer between hosts, so the gated quantity is the
//! **cost ratio of the instrumented hub ingest (a single-worker
//! [`StreamHub::ingest`], which times every batch into its latency
//! histogram and every pipeline stage into the per-stage nanosecond
//! histograms) to the bare streaming pipeline ([`StreamingFirmware::push_chunk`]
//! fed directly)** over the same signal — both sides measured on the same
//! host, here and in the baseline. The instrumentation is designed to be
//! cheap enough for release builds (a clock read and a bucket increment
//! per batch and per stage); an overhead regression (allocation on the
//! record path, a histogram behind a hot lock, accidental per-sample
//! timing) inflates the ratio and fails the job; machine speed cancels
//! out.

use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hbc_core::config::ExperimentConfig;
use hbc_core::pipeline::TrainedSystem;
use hbc_core::StreamHub;
use hbc_dsp::PeakThresholds;
use hbc_ecg::beat::BeatWindow;
use hbc_ecg::record::Lead;
use hbc_ecg::synthetic::SyntheticEcg;
use hbc_embedded::int_classifier::AlphaQ16;
use hbc_embedded::streaming::StreamingFirmware;
use hbc_embedded::WbsnFirmware;
use hbc_rp::PackedProjection;

fn quick_firmware() -> WbsnFirmware {
    let system = TrainedSystem::train(&ExperimentConfig::quick()).expect("training");
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions")
}

/// The shared workload: a synthetic lead and the detection thresholds its
/// calibration stretch produces.
struct Workload {
    firmware: WbsnFirmware,
    lead: Vec<f64>,
    fs: f64,
}

impl Workload {
    fn new() -> Self {
        let firmware = quick_firmware();
        let mut gen = SyntheticEcg::with_seed(47);
        let rhythm = gen.rhythm(24, 0.1, 0.1);
        let record = gen.record(1, &rhythm, 1).expect("record");
        let lead = record.lead(Lead(0)).expect("lead 0").to_vec();
        let fs = record.fs;
        Workload { firmware, lead, fs }
    }

    /// One full pass of the lead through a single-worker instrumented hub
    /// session (batch latency histogram + per-stage timing live).
    fn hub_pass(&self, hub: &mut StreamHub<'_>, chunk: usize) -> usize {
        let thresholds = hub
            .calibrate_thresholds(&self.lead[..(4.0 * self.fs) as usize])
            .expect("calibrate");
        let id = hub.add_patient(1, thresholds);
        for feed in self.lead.chunks(chunk) {
            hub.ingest(&[(id, feed)]).expect("ingest");
        }
        hub.close_session(id).expect("close").outcomes.len()
    }

    /// The same pass through the bare pipeline, no hub and no telemetry on
    /// the batch path.
    fn bare_pass(&self, thresholds: &PeakThresholds, chunk: usize) -> usize {
        let mut stream = StreamingFirmware::new(&self.firmware, self.fs, thresholds.clone());
        for feed in self.lead.chunks(chunk) {
            stream.push_chunk(feed);
        }
        stream.finish();
        let mut n = 0usize;
        while stream.pop_outcome().is_some() {
            n += 1;
        }
        n
    }
}

fn bench_overhead(c: &mut Criterion) {
    let workload = Workload::new();
    let mut hub = StreamHub::with_threads(&workload.firmware, workload.fs, NonZeroUsize::new(1));
    let thresholds = hub
        .calibrate_thresholds(&workload.lead[..(4.0 * workload.fs) as usize])
        .expect("calibrate");
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(10);
    for chunk in [256usize, 4096] {
        group.bench_function(format!("hub_instrumented/{chunk}spc"), |b| {
            b.iter(|| black_box(workload.hub_pass(&mut hub, chunk)))
        });
        group.bench_function(format!("bare_pipeline/{chunk}spc"), |b| {
            b.iter(|| black_box(workload.bare_pass(&thresholds, chunk)))
        });
    }
    group.finish();
}

/// Minimum per-iteration time of `f` in nanoseconds (same calibrated-min
/// estimator as the other gated benches).
fn min_ns_per_iter<F: FnMut()>(mut f: F, samples: usize) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= Duration::from_millis(2) || iters >= 1 << 28 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Measures instrumented-vs-bare cost per sample for one chunk size.
fn measure_ratio(workload: &Workload, chunk: usize, samples: usize) -> (f64, f64, f64) {
    let n = workload.lead.len() as f64;
    let mut hub = StreamHub::with_threads(&workload.firmware, workload.fs, NonZeroUsize::new(1));
    let thresholds = hub
        .calibrate_thresholds(&workload.lead[..(4.0 * workload.fs) as usize])
        .expect("calibrate");
    let hub_ns = min_ns_per_iter(
        || {
            black_box(workload.hub_pass(&mut hub, chunk));
        },
        samples,
    ) / n;
    let bare_ns = min_ns_per_iter(
        || {
            black_box(workload.bare_pass(&thresholds, chunk));
        },
        samples,
    ) / n;
    (hub_ns, bare_ns, hub_ns / bare_ns)
}

/// Writes `BENCH_obs.json` (opt-in: the file is a checked-in reviewed
/// baseline; see the other `baseline_json` writers).
fn baseline_json(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_BASELINE").map_or(true, |v| v != "1") {
        println!("baseline_json: skipped (set HBC_BENCH_BASELINE=1 to rewrite BENCH_obs.json)");
        return;
    }
    let workload = Workload::new();
    let mut rows = String::new();
    for (i, chunk) in [256usize, 4096].into_iter().enumerate() {
        let (hub_ns, bare_ns, ratio) = measure_ratio(&workload, chunk, 9);
        println!(
            "baseline samples_per_chunk={chunk:>5}  instrumented {hub_ns:>8.3} ns/sample  bare \
             {bare_ns:>8.3} ns/sample  cost_ratio {ratio:.2}"
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"samples_per_chunk\": {chunk}, \"instrumented_ns_per_sample\": {hub_ns:.3}, \
             \"bare_ns_per_sample\": {bare_ns:.3}, \"cost_ratio\": {ratio:.3}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"metrics_overhead\",\n  \"units\": \"ns_per_sample\",\n  \"kernel\": \
         \"single-worker StreamHub::ingest with hbc-obs instrumentation live (batch latency + \
         per-stage histograms) vs the bare StreamingFirmware::push_chunk pipeline on the same \
         lead\",\n  \"estimator\": \"min of 9 calibrated samples\",\n  \"gate\": \"cost_ratio \
         (instrumented/bare) must stay within HBC_BENCH_MARGIN (default 2x) of this \
         baseline\",\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, json).expect("write BENCH_obs.json");
    println!("baseline_json: wrote {path}");
}

/// Parses `(samples_per_chunk, cost_ratio)` rows out of the baseline (same
/// dependency-free scraping as the other gates).
fn parse_baseline(json: &str) -> Vec<(usize, f64)> {
    json.lines()
        .filter_map(|line| {
            let chunk = line
                .split("\"samples_per_chunk\":")
                .nth(1)?
                .split([',', '}'])
                .next()?
                .trim()
                .parse()
                .ok()?;
            let ratio = line
                .split("\"cost_ratio\":")
                .nth(1)?
                .split([',', '}'])
                .next()?
                .trim()
                .parse()
                .ok()?;
            Some((chunk, ratio))
        })
        .collect()
}

/// CI regression gate (`HBC_BENCH_REGRESSION=1`): the instrumented-vs-bare
/// cost ratio must stay within the noise margin of the checked-in baseline.
fn regression_gate(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_REGRESSION").map_or(true, |v| v != "1") {
        println!("regression_gate: skipped (set HBC_BENCH_REGRESSION=1 to enable)");
        return;
    }
    let margin: f64 = std::env::var("HBC_BENCH_MARGIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let json = std::fs::read_to_string(path).expect("checked-in BENCH_obs.json");
    let baseline = parse_baseline(&json);
    assert!(!baseline.is_empty(), "no rows parsed from BENCH_obs.json");

    let workload = Workload::new();
    let mut failures = Vec::new();
    for (chunk, baseline_ratio) in baseline {
        let (hub_ns, bare_ns, ratio) = measure_ratio(&workload, chunk, 5);
        let ceiling = baseline_ratio * margin;
        let verdict = if ratio <= ceiling { "ok" } else { "REGRESSION" };
        println!(
            "regression_gate chunk={chunk:>5}  instrumented {hub_ns:>8.3} ns/sample  bare \
             {bare_ns:>8.3} ns/sample  cost_ratio {ratio:.2} (baseline {baseline_ratio:.2}, \
             ceiling {ceiling:.2})  {verdict}"
        );
        if ratio > ceiling {
            failures.push(format!(
                "samples_per_chunk={chunk}: cost ratio {ratio:.2} above ceiling {ceiling:.2} \
                 (baseline {baseline_ratio:.2} x margin {margin})"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "instrumentation overhead regressed:\n{}",
        failures.join("\n")
    );
}

criterion_group!(benches, bench_overhead, baseline_json, regression_gate);
criterion_main!(benches);
