//! Throughput of the network ingestion path: the pure [`FrameDecoder`] on a
//! pre-encoded `Samples` stream, frame encoding, and the full
//! gateway-on-loopback pipeline (sockets → decoder → credit flow →
//! `StreamHub` classification).
//!
//! Records a baseline in `BENCH_net.json` (opt-in via `HBC_BENCH_BASELINE=1`)
//! and gates regressions in CI (`HBC_BENCH_REGRESSION=1`). Wall-clock
//! nanoseconds do not transfer between hosts, so the gated quantity is the
//! **cost ratio of decoding to a raw `crc32` scan of the same bytes**: the
//! decoder's hot loop is dominated by its CRC trailer check, so a healthy
//! decoder sits within a small constant of the bare checksum pass — both
//! sides measured on the same host, here and in the baseline. A decoder
//! regression (quadratic buffering, extra copies) inflates the ratio and
//! fails the job; machine speed cancels out.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hbc_core::config::ExperimentConfig;
use hbc_core::pipeline::TrainedSystem;
use hbc_ecg::beat::BeatWindow;
use hbc_ecg::record::Lead;
use hbc_ecg::synthetic::SyntheticEcg;
use hbc_embedded::int_classifier::AlphaQ16;
use hbc_embedded::WbsnFirmware;
use hbc_net::proto::{crc32, Frame, FrameDecoder};
use hbc_net::{Gateway, GatewayConfig, NodeClient};
use hbc_rp::PackedProjection;

/// Pre-encodes `frames` Samples frames of `samples_per_frame` codes each.
fn encoded_stream(frames: usize, samples_per_frame: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for seq in 0..frames {
        Frame::Samples {
            session: 1,
            seq: seq as u32,
            samples: (0..samples_per_frame)
                .map(|i| ((i * 37 + seq * 11) % 4096) as i16 - 2048)
                .collect(),
        }
        .encode_into(&mut out);
    }
    out
}

/// Decodes a whole byte stream, returning the number of frames (consumed
/// fully, panics on protocol errors).
fn decode_all(bytes: &[u8]) -> usize {
    let mut decoder = FrameDecoder::new();
    let mut frames = 0usize;
    for chunk in bytes.chunks(16 * 1024) {
        decoder.feed(chunk);
        while decoder.next_frame().expect("valid stream").is_some() {
            frames += 1;
        }
    }
    frames
}

fn bench_decoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_ingest");
    group.sample_size(10);
    for samples_per_frame in [64usize, 4096] {
        let frames = (1 << 20) / (2 * samples_per_frame).max(1);
        let bytes = encoded_stream(frames, samples_per_frame);
        group.bench_function(format!("decode/{samples_per_frame}spf"), |b| {
            b.iter(|| black_box(decode_all(black_box(&bytes))))
        });
        group.bench_function(format!("crc32_scan/{samples_per_frame}spf"), |b| {
            b.iter(|| black_box(crc32(black_box(&bytes))))
        });
    }
    let mut sink = Vec::new();
    group.bench_function("encode/256spf", |b| {
        b.iter(|| {
            sink.clear();
            for seq in 0..64u32 {
                Frame::Samples {
                    session: 1,
                    seq,
                    samples: vec![0i16; 256],
                }
                .encode_into(&mut sink);
            }
            black_box(sink.len())
        })
    });
    group.finish();
}

fn quick_firmware() -> WbsnFirmware {
    let system = TrainedSystem::train(&ExperimentConfig::quick()).expect("training");
    WbsnFirmware::new(
        PackedProjection::from_matrix(&system.pc_downsampled.projection),
        system.wbsn.classifier.clone(),
        AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha"),
        system.config.downsample,
        BeatWindow::PAPER,
    )
    .expect("firmware dimensions")
}

/// End-to-end loopback throughput: one session streamed through sockets,
/// decoder, credit flow and the hub, per iteration.
fn bench_loopback(c: &mut Criterion) {
    let firmware = quick_firmware();
    let mut gen = SyntheticEcg::with_seed(31);
    let rhythm = gen.rhythm(20, 0.1, 0.1);
    let record = gen.record(1, &rhythm, 1).expect("record");
    let lead = record.lead(Lead(0)).expect("lead 0").to_vec();
    let fs = record.fs;
    let calib_len = ((2.0 * fs) as usize).min(lead.len()) as u32;

    let shutdown = AtomicBool::new(false);
    let gateway =
        Gateway::bind("127.0.0.1:0", &firmware, fs, GatewayConfig::default()).expect("bind");
    let addr = gateway.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| gateway.run(&shutdown).expect("gateway"));
        {
            let mut group = c.benchmark_group("net_ingest");
            group.sample_size(10);
            let mut client = NodeClient::connect(addr).expect("connect");
            group.bench_function("loopback_session", |b| {
                b.iter(|| {
                    let session = client.open_session(1, fs, calib_len).expect("open");
                    for chunk in lead.chunks(1024) {
                        client.send_mv(session, chunk).expect("send");
                    }
                    let summary = client.close_session(session).expect("close");
                    black_box(summary.report.beats)
                })
            });
            group.finish();
        }
        shutdown.store(true, Ordering::Release);
        handle.join().expect("gateway thread");
    });
}

/// Minimum per-iteration time of `f` in nanoseconds (same calibrated-min
/// estimator as the other gated benches).
fn min_ns_per_iter<F: FnMut()>(mut f: F, samples: usize) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= Duration::from_millis(2) || iters >= 1 << 28 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Measures decode-vs-crc32 cost per byte for one frame size.
fn measure_ratio(samples_per_frame: usize, samples: usize) -> (f64, f64, f64) {
    let frames = (1 << 20) / (2 * samples_per_frame).max(1);
    let bytes = encoded_stream(frames, samples_per_frame);
    let n = bytes.len() as f64;
    let decode_ns = min_ns_per_iter(
        || {
            black_box(decode_all(black_box(&bytes)));
        },
        samples,
    ) / n;
    let crc_ns = min_ns_per_iter(
        || {
            black_box(crc32(black_box(&bytes)));
        },
        samples,
    ) / n;
    (decode_ns, crc_ns, decode_ns / crc_ns)
}

/// Writes `BENCH_net.json` (opt-in: the file is a checked-in reviewed
/// baseline; see the other `baseline_json` writers).
fn baseline_json(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_BASELINE").map_or(true, |v| v != "1") {
        println!("baseline_json: skipped (set HBC_BENCH_BASELINE=1 to rewrite BENCH_net.json)");
        return;
    }
    let mut rows = String::new();
    for (i, spf) in [64usize, 4096].into_iter().enumerate() {
        let (decode_ns, crc_ns, ratio) = measure_ratio(spf, 9);
        println!(
            "baseline samples_per_frame={spf:>5}  decode {decode_ns:>7.3} ns/B  crc32 \
             {crc_ns:>7.3} ns/B  cost_ratio {ratio:.2}"
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"samples_per_frame\": {spf}, \"decode_ns_per_byte\": {decode_ns:.3}, \
             \"crc32_ns_per_byte\": {crc_ns:.3}, \"cost_ratio\": {ratio:.3}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"net_ingest\",\n  \"units\": \"ns_per_byte\",\n  \"kernel\": \
         \"incremental FrameDecoder on a Samples stream vs a bare crc32 scan of the same \
         bytes\",\n  \"estimator\": \"min of 9 calibrated samples\",\n  \"gate\": \"cost_ratio \
         (decode/crc32) must stay within HBC_BENCH_MARGIN (default 2x) of this baseline\",\n  \
         \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    std::fs::write(path, json).expect("write BENCH_net.json");
    println!("baseline_json: wrote {path}");
}

/// Parses `(samples_per_frame, cost_ratio)` rows out of the baseline (same
/// dependency-free scraping as the other gates).
fn parse_baseline(json: &str) -> Vec<(usize, f64)> {
    json.lines()
        .filter_map(|line| {
            let spf = line
                .split("\"samples_per_frame\":")
                .nth(1)?
                .split([',', '}'])
                .next()?
                .trim()
                .parse()
                .ok()?;
            let ratio = line
                .split("\"cost_ratio\":")
                .nth(1)?
                .split([',', '}'])
                .next()?
                .trim()
                .parse()
                .ok()?;
            Some((spf, ratio))
        })
        .collect()
}

/// CI regression gate (`HBC_BENCH_REGRESSION=1`): the decode-vs-crc32 cost
/// ratio must stay within the noise margin of the checked-in baseline.
fn regression_gate(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_REGRESSION").map_or(true, |v| v != "1") {
        println!("regression_gate: skipped (set HBC_BENCH_REGRESSION=1 to enable)");
        return;
    }
    let margin: f64 = std::env::var("HBC_BENCH_MARGIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    let json = std::fs::read_to_string(path).expect("checked-in BENCH_net.json");
    let baseline = parse_baseline(&json);
    assert!(!baseline.is_empty(), "no rows parsed from BENCH_net.json");

    let mut failures = Vec::new();
    for (spf, baseline_ratio) in baseline {
        let (decode_ns, crc_ns, ratio) = measure_ratio(spf, 5);
        let ceiling = baseline_ratio * margin;
        let verdict = if ratio <= ceiling { "ok" } else { "REGRESSION" };
        println!(
            "regression_gate spf={spf:>5}  decode {decode_ns:>7.3} ns/B  crc32 {crc_ns:>7.3} \
             ns/B  cost_ratio {ratio:.2} (baseline {baseline_ratio:.2}, ceiling {ceiling:.2})  \
             {verdict}"
        );
        if ratio > ceiling {
            failures.push(format!(
                "samples_per_frame={spf}: cost ratio {ratio:.2} above ceiling {ceiling:.2} \
                 (baseline {baseline_ratio:.2} x margin {margin})"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "frame decoder regressed:\n{}",
        failures.join("\n")
    );
}

criterion_group!(
    benches,
    bench_decoder,
    bench_loopback,
    baseline_json,
    regression_gate
);
criterion_main!(benches);
