//! Ablation: how much the genetic optimisation of the projection matrix
//! improves over a single random draw (Section III-A argues that "certain
//! projections perform better than others" and that a few GA generations find
//! a good one). Reports the training-set-2 fitness (NDR at the ARR target)
//! of a plain random projection versus the GA-optimised one, and measures the
//! cost of one GA generation.

use criterion::{criterion_group, criterion_main, Criterion};
use hbc_bench::bench_config;
use hbc_ecg::Dataset;
use hbc_nfc::{TwoStepConfig, TwoStepTrainer};
use hbc_rp::GeneticConfig;

fn bench_ga_gain(c: &mut Criterion) {
    let config = bench_config();
    let dataset = Dataset::synthetic(config.dataset, config.seed);

    // Baseline: single random projections (a handful of seeds).
    let quick = TwoStepConfig::quick(config.coefficients);
    let trainer = TwoStepTrainer::new(quick).expect("valid config");
    let mut single_fitness = Vec::new();
    for seed in 0..4u64 {
        let fitted = trainer.fit_single(&dataset, seed).expect("fit");
        single_fitness.push(fitted.fitness);
    }
    let best_single = single_fitness.iter().cloned().fold(0.0f64, f64::max);
    let mean_single = single_fitness.iter().sum::<f64>() / single_fitness.len() as f64;

    // GA-optimised projection (small budget so the bench stays tractable).
    let mut ga_config = quick;
    ga_config.genetic = GeneticConfig {
        population: 6,
        generations: 4,
        ..GeneticConfig::quick()
    };
    let ga_trainer = TwoStepTrainer::new(ga_config).expect("valid config");
    let ga_fitted = ga_trainer.fit(&dataset).expect("fit");

    println!("\nAblation — genetic optimisation of the projection matrix");
    println!(
        "mean single-draw fitness (NDR @ target ARR): {:.4}",
        mean_single
    );
    println!(
        "best single-draw fitness                  : {:.4}",
        best_single
    );
    println!(
        "GA-optimised fitness                      : {:.4}",
        ga_fitted.fitness
    );
    println!(
        "GA history                                : {:?}",
        ga_fitted.ga_history
    );

    let mut group = c.benchmark_group("ablation_ga");
    group.sample_size(10);
    group.bench_function("fit_single_random_projection", |b| {
        b.iter(|| trainer.fit_single(&dataset, 1).expect("fit"))
    });
    group.finish();
}

criterion_group!(benches, bench_ga_gain);
criterion_main!(benches);
