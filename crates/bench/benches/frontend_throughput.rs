//! Micro-benchmark: per-sample cost of the conditioning front-end kernels —
//! the naive O(n·w) sliding-extremum scan against the O(n) monotone-deque
//! kernel at the paper's structuring-element lengths, and the full
//! baseline-removal + wavelet conditioning chain in its allocating and
//! scratch-reused (`_into`) forms. Records the naive-vs-deque baseline in
//! `BENCH_frontend.json` at the workspace root (next to
//! `BENCH_projection.json`) so front-end kernel regressions are visible in
//! review and gated in CI.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hbc_dsp::filter::{dilate, erode, sliding_extreme_naive, ExtremumKind, MorphologicalFilter};
use hbc_dsp::{DyadicWavelet, FrontendScratch};

/// One minute of drifting synthetic ECG-like signal at `fs` Hz.
fn test_signal(fs: f64) -> Vec<f64> {
    let n = (60.0 * fs) as usize;
    (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            0.4 * (2.0 * std::f64::consts::PI * 0.25 * t).sin()
                + 0.1 * (2.0 * std::f64::consts::PI * 7.0 * t).sin()
                + if i % (fs as usize) < 8 { 1.0 } else { 0.0 }
        })
        .collect()
}

fn bench_frontend(c: &mut Criterion) {
    // The 250 Hz operating point of the reference filter: a 50-sample QRS
    // element and a 133-sample beat element.
    let fs = 250.0;
    let filter = MorphologicalFilter::for_sampling_rate(fs);
    let signal = test_signal(fs);
    let wavelet = DyadicWavelet::new();
    let mut scratch = FrontendScratch::default();
    let mut out = Vec::new();
    let mut details = Vec::new();

    let mut group = c.benchmark_group("frontend_one_minute");
    group.sample_size(10);
    for window in [filter.qrs_element, filter.beat_element] {
        group.bench_function(format!("erode_naive/w{window}"), |b| {
            b.iter(|| sliding_extreme_naive(black_box(&signal), window, ExtremumKind::Min))
        });
        group.bench_function(format!("erode_deque/w{window}"), |b| {
            b.iter(|| erode(black_box(&signal), window))
        });
    }
    group.bench_function("baseline_filter_naive", |b| {
        b.iter(|| filter.apply_naive(black_box(&signal)).expect("filter"))
    });
    group.bench_function("baseline_filter_deque", |b| {
        b.iter(|| filter.apply(black_box(&signal)).expect("filter"))
    });
    group.bench_function("baseline_filter_deque_into", |b| {
        b.iter(|| {
            filter
                .apply_into(black_box(&signal), &mut scratch, &mut out)
                .expect("filter")
        })
    });
    group.bench_function("wavelet_transform", |b| {
        b.iter(|| wavelet.transform(black_box(&signal)).expect("transform"))
    });
    group.bench_function("wavelet_transform_into", |b| {
        b.iter(|| {
            wavelet
                .transform_into(black_box(&signal), &mut scratch, &mut details)
                .expect("transform")
        })
    });
    group.bench_function("conditioning_chain_into", |b| {
        b.iter(|| {
            filter
                .apply_into(black_box(&signal), &mut scratch, &mut out)
                .expect("filter");
            wavelet
                .transform_into(&out, &mut scratch, &mut details)
                .expect("transform");
        })
    });
    group.finish();
}

/// Minimum per-iteration time of `f` in nanoseconds: iterations are
/// calibrated until one sample lasts ≳2 ms, then the fastest of `samples`
/// such runs is taken (min is the standard low-noise estimator for
/// micro-kernels).
fn min_ns_per_iter<F: FnMut()>(mut f: F, samples: usize) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= Duration::from_millis(2) || iters >= 1 << 28 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// One row of the recorded baseline: an operator at one window length, naive
/// vs deque, in nanoseconds per input *sample*.
struct BaselineRow {
    stage: &'static str,
    window: usize,
    naive_ns: f64,
    deque_ns: f64,
}

/// Measures naive vs deque at the 250 Hz operating point and writes
/// `BENCH_frontend.json` at the workspace root.
///
/// Opt-in via `HBC_BENCH_BASELINE=1`: the file is a checked-in reviewed
/// baseline, so routine `cargo bench` runs (CI smoke included) must not
/// silently overwrite it with numbers from an arbitrary host.
fn baseline_json(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_BASELINE").map_or(true, |v| v != "1") {
        println!(
            "baseline_json: skipped (set HBC_BENCH_BASELINE=1 to rewrite BENCH_frontend.json)"
        );
        return;
    }
    let samples = 9;
    let fs = 250.0;
    let filter = MorphologicalFilter::for_sampling_rate(fs);
    let signal = test_signal(fs);
    let n = signal.len() as f64;
    let mut rows = Vec::new();
    for window in [filter.qrs_element, filter.beat_element] {
        rows.push(BaselineRow {
            stage: "erode",
            window,
            naive_ns: min_ns_per_iter(
                || {
                    black_box(sliding_extreme_naive(
                        black_box(&signal),
                        window,
                        ExtremumKind::Min,
                    ));
                },
                samples,
            ) / n,
            deque_ns: min_ns_per_iter(
                || {
                    black_box(erode(black_box(&signal), window));
                },
                samples,
            ) / n,
        });
        rows.push(BaselineRow {
            stage: "dilate",
            window,
            naive_ns: min_ns_per_iter(
                || {
                    black_box(sliding_extreme_naive(
                        black_box(&signal),
                        window,
                        ExtremumKind::Max,
                    ));
                },
                samples,
            ) / n,
            deque_ns: min_ns_per_iter(
                || {
                    black_box(dilate(black_box(&signal), window));
                },
                samples,
            ) / n,
        });
    }
    // The full conditioning chain (8 morphology passes + baseline subtraction
    // + 4-scale wavelet): naive-allocating versus deque + scratch reuse.
    let wavelet = DyadicWavelet::new();
    let mut scratch = FrontendScratch::default();
    let mut filtered = Vec::new();
    let mut details = Vec::new();
    rows.push(BaselineRow {
        stage: "conditioning_chain",
        window: filter.beat_element,
        naive_ns: min_ns_per_iter(
            || {
                let f = filter.apply_naive(black_box(&signal)).expect("filter");
                black_box(wavelet.transform(&f).expect("transform"));
            },
            samples,
        ) / n,
        deque_ns: min_ns_per_iter(
            || {
                filter
                    .apply_into(black_box(&signal), &mut scratch, &mut filtered)
                    .expect("filter");
                wavelet
                    .transform_into(&filtered, &mut scratch, &mut details)
                    .expect("transform");
            },
            samples,
        ) / n,
    });

    let mut json = String::from(
        "{\n  \"bench\": \"frontend_throughput\",\n  \"units\": \"ns_per_sample\",\n  \
         \"kernel\": \"monotone-deque sliding extremum (van Herk/Gil-Werman) + scratch-reused \
         conditioning chain\",\n  \"operating_point\": \"250 Hz, one minute of signal\",\n  \
         \"estimator\": \"min of 9 calibrated samples\",\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        println!(
            "baseline {:<18} w={:>3}  naive {:>8.2} ns/sample  deque {:>8.2} ns/sample  ({:.2}x)",
            r.stage,
            r.window,
            r.naive_ns,
            r.deque_ns,
            r.naive_ns / r.deque_ns
        );
        json.push_str(&format!(
            "    {{\"stage\": \"{}\", \"window\": {}, \"naive_ns\": {:.3}, \"deque_ns\": {:.3}, \
             \"speedup\": {:.2}}}{}\n",
            r.stage,
            r.window,
            r.naive_ns,
            r.deque_ns,
            r.naive_ns / r.deque_ns,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontend.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Extracts `(stage, window, speedup)` triples from the checked-in
/// `BENCH_frontend.json` (own format, so a hand-rolled scan suffices — the
/// workspace has no JSON dependency).
fn parse_baseline(json: &str) -> Vec<(String, usize, f64)> {
    fn field(row: &str, name: &str) -> Option<f64> {
        let tail = &row[row.find(&format!("\"{name}\":"))? + name.len() + 3..];
        let tail = tail.trim_start();
        let end = tail
            .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
            .unwrap_or(tail.len());
        tail[..end].parse().ok()
    }
    fn stage(row: &str) -> Option<String> {
        let tail = &row[row.find("\"stage\":")? + 8..];
        let open = tail.find('"')?;
        let close = tail[open + 1..].find('"')?;
        Some(tail[open + 1..open + 1 + close].to_string())
    }
    json.lines()
        .filter(|l| l.contains("\"stage\":"))
        .filter_map(|row| {
            Some((
                stage(row)?,
                field(row, "window")? as usize,
                field(row, "speedup")?,
            ))
        })
        .collect()
}

/// Regression gate for the deque front-end kernel, run by the CI bench smoke
/// job (`HBC_BENCH_REGRESSION=1`), using the same scheme as the projection
/// gate: wall-clock nanoseconds do not transfer between hosts, so the gate
/// checks the *naive-to-deque speedup ratio* — both sides measured on the
/// same host, here and in the baseline — against the checked-in value with a
/// generous noise margin (2× by default, `HBC_BENCH_MARGIN` to override). A
/// kernel regression that erases the deque advantage fails the job.
fn regression_gate(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_REGRESSION").map_or(true, |v| v != "1") {
        println!("regression_gate: skipped (set HBC_BENCH_REGRESSION=1 to enable)");
        return;
    }
    let margin: f64 = std::env::var("HBC_BENCH_MARGIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontend.json");
    let json = std::fs::read_to_string(path).expect("checked-in BENCH_frontend.json");
    let baseline = parse_baseline(&json);
    assert!(
        !baseline.is_empty(),
        "no rows parsed from BENCH_frontend.json"
    );

    let samples = 5;
    let fs = 250.0;
    let filter = MorphologicalFilter::for_sampling_rate(fs);
    let signal = test_signal(fs);
    let wavelet = DyadicWavelet::new();
    let mut scratch = FrontendScratch::default();
    let mut filtered = Vec::new();
    let mut details = Vec::new();
    let mut failures = Vec::new();
    for (stage, window, baseline_speedup) in baseline {
        let kind = match stage.as_str() {
            "erode" => Some(ExtremumKind::Min),
            "dilate" => Some(ExtremumKind::Max),
            _ => None,
        };
        let (naive_ns, deque_ns) = match kind {
            Some(kind) => (
                min_ns_per_iter(
                    || {
                        black_box(sliding_extreme_naive(black_box(&signal), window, kind));
                    },
                    samples,
                ),
                min_ns_per_iter(
                    || match kind {
                        ExtremumKind::Min => {
                            black_box(erode(black_box(&signal), window));
                        }
                        ExtremumKind::Max => {
                            black_box(dilate(black_box(&signal), window));
                        }
                    },
                    samples,
                ),
            ),
            None => (
                min_ns_per_iter(
                    || {
                        let f = filter.apply_naive(black_box(&signal)).expect("filter");
                        black_box(wavelet.transform(&f).expect("transform"));
                    },
                    samples,
                ),
                min_ns_per_iter(
                    || {
                        filter
                            .apply_into(black_box(&signal), &mut scratch, &mut filtered)
                            .expect("filter");
                        wavelet
                            .transform_into(&filtered, &mut scratch, &mut details)
                            .expect("transform");
                    },
                    samples,
                ),
            ),
        };
        let speedup = naive_ns / deque_ns;
        let floor = baseline_speedup / margin;
        let verdict = if speedup >= floor { "ok" } else { "REGRESSION" };
        println!(
            "regression_gate {stage:<18} w={window:>3}  speedup {speedup:>6.2}x (baseline \
             {baseline_speedup:.2}x, floor {floor:.2}x)  {verdict}"
        );
        if speedup < floor {
            failures.push(format!(
                "{stage} w={window}: speedup {speedup:.2}x below floor {floor:.2}x \
                 (baseline {baseline_speedup:.2}x / margin {margin})"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "deque front-end kernel regressed:\n{}",
        failures.join("\n")
    );
}

criterion_group!(benches, bench_frontend, baseline_json, regression_gate);
criterion_main!(benches);
