//! Section IV-E bench: regenerates the computation / wireless / total energy
//! savings of the classifier-gated node and measures the energy-model
//! evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use hbc_bench::bench_config;
use hbc_core::experiments::energy_report;
use hbc_embedded::cycles::DutyCycleReport;
use hbc_embedded::energy::{EnergyModel, SessionStats};

fn bench_energy(c: &mut Criterion) {
    let config = bench_config();
    let experiment = energy_report(&config).expect("energy report");
    println!("\n{experiment}");

    let duty = DutyCycleReport {
        rp_classifier: 0.005,
        subsystem1: 0.12,
        subsystem2: 0.83,
        subsystem3: 0.30,
    };
    let stats = SessionStats {
        total_beats: 89_012,
        forwarded_beats: 20_473,
        duration_s: 89_012.0 / 1.2,
    };
    let model = EnergyModel::paper();

    let mut group = c.benchmark_group("energy");
    group.sample_size(10);
    group.bench_function("full_experiment", |b| {
        b.iter(|| energy_report(&config).expect("report"))
    });
    group.bench_function("energy_model_only", |b| {
        b.iter(|| model.report(&duty, &stats))
    });
    group.finish();
}

criterion_group!(benches, bench_energy);
criterion_main!(benches);
