//! Micro-benchmark: per-beat cost of the dimensionality-reduction front-ends
//! — dense Achlioptas projection (float and integer), 2-bit packed
//! projection, and the PCA baseline — across the coefficient counts of
//! Table II. This quantifies the paper's argument that random projections
//! are the WBSN-friendly choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbc_baseline::Pca;
use hbc_bench::bench_dataset;
use hbc_rp::{AchlioptasMatrix, PackedProjection};

fn bench_projection(c: &mut Criterion) {
    let dataset = bench_dataset();
    let beat = &dataset.test[0];
    let beat_f: Vec<f64> = beat.samples.clone();
    let beat_i: Vec<i32> = beat.quantize(5.0, 12);
    let training: Vec<Vec<f64>> = dataset
        .training1
        .iter()
        .map(|b| b.samples.clone())
        .collect();

    let mut group = c.benchmark_group("projection_per_beat");
    for &k in &[8usize, 16, 32] {
        let dense = AchlioptasMatrix::generate(k, beat_f.len(), 42);
        let packed = PackedProjection::from_matrix(&dense);
        let pca = Pca::fit(&training, k).expect("pca fits");

        group.bench_with_input(BenchmarkId::new("dense_float", k), &k, |b, _| {
            b.iter(|| dense.project(&beat_f))
        });
        group.bench_with_input(BenchmarkId::new("dense_integer", k), &k, |b, _| {
            b.iter(|| dense.project_i32(&beat_i).expect("dims"))
        });
        group.bench_with_input(BenchmarkId::new("packed_2bit_integer", k), &k, |b, _| {
            b.iter(|| packed.project_i32(&beat_i).expect("dims"))
        });
        group.bench_with_input(BenchmarkId::new("pca_float", k), &k, |b, _| {
            b.iter(|| pca.project(&beat_f))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
