//! Micro-benchmark: per-beat cost of the dimensionality-reduction front-ends
//! — dense Achlioptas projection (float and integer), the 2-bit packed
//! projection in both its firmware-faithful scalar form and the bit-sliced
//! host kernel, and the PCA baseline — across the coefficient counts of
//! Table II. This quantifies the paper's argument that random projections
//! are the WBSN-friendly choice, and records the scalar vs bit-sliced
//! baseline in `BENCH_projection.json` at the workspace root so kernel
//! regressions are visible in review.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hbc_baseline::Pca;
use hbc_bench::bench_dataset;
use hbc_rp::{AchlioptasMatrix, PackedProjection};

fn bench_projection(c: &mut Criterion) {
    let dataset = bench_dataset();
    let beat = &dataset.test[0];
    let beat_f: Vec<f64> = beat.samples.clone();
    let beat_i: Vec<i32> = beat.quantize(5.0, 12);
    let training: Vec<Vec<f64>> = dataset
        .training1
        .iter()
        .map(|b| b.samples.clone())
        .collect();

    let mut group = c.benchmark_group("projection_per_beat");
    for &k in &[8usize, 16, 32] {
        let dense = AchlioptasMatrix::generate(k, beat_f.len(), 42);
        let packed = PackedProjection::from_matrix(&dense);
        let pca = Pca::fit(&training, k).expect("pca fits");
        let mut out = vec![0i32; k];

        group.bench_with_input(BenchmarkId::new("dense_float", k), &k, |b, _| {
            b.iter(|| dense.project(&beat_f))
        });
        group.bench_with_input(BenchmarkId::new("dense_integer", k), &k, |b, _| {
            b.iter(|| dense.project_i32(&beat_i).expect("dims"))
        });
        group.bench_with_input(BenchmarkId::new("packed_2bit_scalar", k), &k, |b, _| {
            b.iter(|| packed.project_i32_scalar(&beat_i).expect("dims"))
        });
        group.bench_with_input(BenchmarkId::new("packed_bitsliced", k), &k, |b, _| {
            b.iter(|| packed.project_i32(&beat_i).expect("dims"))
        });
        group.bench_with_input(BenchmarkId::new("packed_bitsliced_into", k), &k, |b, _| {
            b.iter(|| packed.project_into(&beat_i, &mut out).expect("dims"))
        });
        group.bench_with_input(BenchmarkId::new("pca_float", k), &k, |b, _| {
            b.iter(|| pca.project(&beat_f))
        });
    }
    group.finish();
}

/// Minimum per-iteration time of `f` in nanoseconds: iterations are
/// calibrated until one sample lasts ≳2 ms, then the fastest of `samples`
/// such runs is taken (min is the standard low-noise estimator for
/// micro-kernels).
fn min_ns_per_iter<F: FnMut()>(mut f: F, samples: usize) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= Duration::from_millis(2) || iters >= 1 << 28 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// One (k, cols) row of the recorded baseline.
struct BaselineRow {
    k: usize,
    cols: usize,
    dense_ns: f64,
    scalar_ns: f64,
    bitsliced_ns: f64,
    bitsliced_into_ns: f64,
}

/// Measures scalar vs bit-sliced packed projection per (k, cols) and writes
/// the result to `BENCH_projection.json` at the workspace root.
///
/// Opt-in via `HBC_BENCH_BASELINE=1`: the file is a checked-in reviewed
/// baseline, so routine `cargo bench` runs (CI smoke included) must not
/// silently overwrite it with numbers from an arbitrary host.
fn baseline_json(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_BASELINE").map_or(true, |v| v != "1") {
        println!(
            "baseline_json: skipped (set HBC_BENCH_BASELINE=1 to rewrite BENCH_projection.json)"
        );
        return;
    }
    let samples = 9;
    let mut rows = Vec::new();
    // cols = 50 is the WBSN operating point (4×-downsampled window); 200 is
    // the acquisition-rate window of the PC half.
    for &cols in &[50usize, 200] {
        let input: Vec<i32> = (0..cols as i32).map(|i| (i * 37 % 211) - 100).collect();
        for &k in &[8usize, 16, 32] {
            let dense = AchlioptasMatrix::generate(k, cols, 42);
            let packed = PackedProjection::from_matrix(&dense);
            let mut out = vec![0i32; k];
            let row = BaselineRow {
                k,
                cols,
                dense_ns: min_ns_per_iter(
                    || {
                        black_box(dense.project_i32(black_box(&input)).expect("dims"));
                    },
                    samples,
                ),
                scalar_ns: min_ns_per_iter(
                    || {
                        black_box(packed.project_i32_scalar(black_box(&input)).expect("dims"));
                    },
                    samples,
                ),
                bitsliced_ns: min_ns_per_iter(
                    || {
                        black_box(packed.project_i32(black_box(&input)).expect("dims"));
                    },
                    samples,
                ),
                bitsliced_into_ns: min_ns_per_iter(
                    || {
                        packed
                            .project_into(black_box(&input), black_box(&mut out))
                            .expect("dims");
                    },
                    samples,
                ),
            };
            println!(
                "baseline k={:>2} cols={:>3}  scalar {:>8.1} ns  bitsliced {:>8.1} ns  ({:.2}x)",
                row.k,
                row.cols,
                row.scalar_ns,
                row.bitsliced_ns,
                row.scalar_ns / row.bitsliced_ns
            );
            rows.push(row);
        }
    }

    let mut json = String::from(
        "{\n  \"bench\": \"projection_throughput\",\n  \"units\": \"ns_per_projection\",\n  \
         \"kernel\": \"bit-sliced bitplanes (two u64 masks per row, trailing_zeros walk)\",\n  \
         \"estimator\": \"min of 9 calibrated samples\",\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"k\": {}, \"cols\": {}, \"dense_ns\": {:.2}, \"scalar_ns\": {:.2}, \
             \"bitsliced_ns\": {:.2}, \"bitsliced_into_ns\": {:.2}, \"speedup\": {:.2}}}{}\n",
            r.k,
            r.cols,
            r.dense_ns,
            r.scalar_ns,
            r.bitsliced_ns,
            r.bitsliced_into_ns,
            r.scalar_ns / r.bitsliced_ns,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_projection.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Extracts `(k, cols, speedup)` triples from the checked-in
/// `BENCH_projection.json` (own format, so a hand-rolled scan suffices — the
/// workspace has no JSON dependency).
fn parse_baseline(json: &str) -> Vec<(usize, usize, f64)> {
    fn field(row: &str, name: &str) -> Option<f64> {
        let tail = &row[row.find(&format!("\"{name}\":"))? + name.len() + 3..];
        let tail = tail.trim_start();
        let end = tail
            .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
            .unwrap_or(tail.len());
        tail[..end].parse().ok()
    }
    json.lines()
        .filter(|l| l.contains("\"k\":"))
        .filter_map(|row| {
            Some((
                field(row, "k")? as usize,
                field(row, "cols")? as usize,
                field(row, "speedup")?,
            ))
        })
        .collect()
}

/// Regression gate for the bit-sliced projection kernel, run by the CI bench
/// smoke job (`HBC_BENCH_REGRESSION=1`).
///
/// Comparing wall-clock nanoseconds against a baseline recorded on a
/// different host would trip on machine speed, so the gate checks the
/// *scalar-to-bit-sliced speedup ratio* — both sides measured on the same
/// host, here and in the baseline — against the checked-in value with a
/// generous noise margin (2× by default, `HBC_BENCH_MARGIN` to override).
/// A kernel regression that erases the bit-sliced advantage fails the job.
fn regression_gate(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_REGRESSION").map_or(true, |v| v != "1") {
        println!("regression_gate: skipped (set HBC_BENCH_REGRESSION=1 to enable)");
        return;
    }
    let margin: f64 = std::env::var("HBC_BENCH_MARGIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_projection.json");
    let json = std::fs::read_to_string(path).expect("checked-in BENCH_projection.json");
    let baseline = parse_baseline(&json);
    assert!(
        !baseline.is_empty(),
        "no rows parsed from BENCH_projection.json"
    );

    let samples = 5;
    let mut failures = Vec::new();
    for (k, cols, baseline_speedup) in baseline {
        let input: Vec<i32> = (0..cols as i32).map(|i| (i * 37 % 211) - 100).collect();
        let dense = AchlioptasMatrix::generate(k, cols, 42);
        let packed = PackedProjection::from_matrix(&dense);
        let scalar_ns = min_ns_per_iter(
            || {
                black_box(packed.project_i32_scalar(black_box(&input)).expect("dims"));
            },
            samples,
        );
        let bitsliced_ns = min_ns_per_iter(
            || {
                black_box(packed.project_i32(black_box(&input)).expect("dims"));
            },
            samples,
        );
        let speedup = scalar_ns / bitsliced_ns;
        let floor = baseline_speedup / margin;
        let verdict = if speedup >= floor { "ok" } else { "REGRESSION" };
        println!(
            "regression_gate k={k:>2} cols={cols:>3}  scalar {scalar_ns:>8.1} ns  bitsliced \
             {bitsliced_ns:>8.1} ns  speedup {speedup:>5.2}x (baseline {baseline_speedup:.2}x, \
             floor {floor:.2}x)  {verdict}"
        );
        if speedup < floor {
            failures.push(format!(
                "k={k} cols={cols}: speedup {speedup:.2}x below floor {floor:.2}x \
                 (baseline {baseline_speedup:.2}x / margin {margin})"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "bit-sliced projection kernel regressed:\n{}",
        failures.join("\n")
    );
}

criterion_group!(benches, bench_projection, baseline_json, regression_gate);
criterion_main!(benches);
