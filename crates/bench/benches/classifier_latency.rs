//! Micro-benchmark: per-beat latency of the floating-point Gaussian NFC
//! versus the integer linearised/triangular NFC — the speed side of the
//! accuracy comparison in Table II and Figure 5.

use criterion::{criterion_group, criterion_main, Criterion};
use hbc_bench::bench_system;
use hbc_embedded::MembershipKind;

fn bench_classifier(c: &mut Criterion) {
    let system = bench_system();
    let beat = &system.dataset.test[0];
    let alpha_q = system.wbsn.alpha;
    let alpha_f = system.pc.alpha_train;

    // Pre-compute the inputs each classifier consumes.
    let pc_coeffs = system.pc.projection.project(&beat.samples);
    let downsampled = beat.downsample(system.config.downsample);
    let quantized = system.wbsn.adc.quantize_samples(&downsampled.samples);
    let wbsn_coeffs = system
        .wbsn
        .projection
        .project_i32(&quantized)
        .expect("dims");
    let triangular = system
        .wbsn_with_kind(MembershipKind::Triangular)
        .expect("triangular variant");

    let mut group = c.benchmark_group("classifier_per_beat");
    group.bench_function("float_gaussian_nfc", |b| {
        b.iter(|| {
            system
                .pc
                .classifier
                .classify(&pc_coeffs, alpha_f)
                .expect("dims")
        })
    });
    group.bench_function("integer_linearized_nfc", |b| {
        b.iter(|| {
            system
                .wbsn
                .classifier
                .classify(&wbsn_coeffs, alpha_q)
                .expect("dims")
        })
    });
    group.bench_function("integer_triangular_nfc", |b| {
        b.iter(|| {
            triangular
                .classifier
                .classify(&wbsn_coeffs, alpha_q)
                .expect("dims")
        })
    });
    group.bench_function("end_to_end_wbsn_beat", |b| {
        b.iter(|| system.wbsn.classify(beat).expect("window matches"))
    });
    group.finish();
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
