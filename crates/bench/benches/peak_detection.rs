//! Micro-benchmark: the conditioning front-end of sub-system (1) —
//! morphological filtering and wavelet peak detection — on one minute of
//! synthetic three-lead ECG. These two stages dominate the duty cycle of
//! sub-system (1) in Table III.

use criterion::{criterion_group, criterion_main, Criterion};
use hbc_dsp::{Delineator, MorphologicalFilter, PeakDetector};
use hbc_ecg::record::Lead;
use hbc_ecg::synthetic::SyntheticEcg;

fn bench_peak_detection(c: &mut Criterion) {
    let mut generator = SyntheticEcg::with_seed(3);
    let rhythm = generator.rhythm(75, 0.1, 0.1); // ~1 minute at 1.2 bps
    let record = generator.record(1, &rhythm, 3).expect("record");
    let lead0 = record.lead(Lead(0)).expect("lead 0").to_vec();
    let filter = MorphologicalFilter::for_sampling_rate(record.fs);
    let filtered = filter.apply(&lead0).expect("filter");
    let detector = PeakDetector::new(record.fs);
    let peaks = detector.detect(&filtered).expect("peaks");
    let delineator = Delineator::new(record.fs);
    let window = hbc_ecg::beat::BeatWindow::PAPER;
    let beat = window
        .extract(&filtered, peaks[peaks.len() / 2])
        .expect("window");

    let mut group = c.benchmark_group("conditioning_one_minute");
    group.sample_size(20);
    group.bench_function("morphological_filter", |b| {
        b.iter(|| filter.apply(&lead0).expect("filter"))
    });
    group.bench_function("wavelet_peak_detection", |b| {
        b.iter(|| detector.detect(&filtered).expect("peaks"))
    });
    group.bench_function("mmd_delineation_per_beat", |b| {
        b.iter(|| {
            delineator
                .delineate_beat(&beat, window.pre)
                .expect("delineate")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_peak_detection);
criterion_main!(benches);
