//! Figure 5 bench: regenerates the NDR/ARR pareto fronts of the Gaussian,
//! linearised and triangular membership families and measures the α_test
//! sweep cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hbc_bench::bench_config;
use hbc_core::experiments::figure5_pareto;

fn bench_figure5(c: &mut Criterion) {
    let config = bench_config();
    let report = figure5_pareto(&config).expect("figure 5 report");
    println!("\n{report}");

    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);
    group.bench_function("pareto_front_sweep", |b| {
        b.iter(|| figure5_pareto(&config).expect("report"))
    });
    group.finish();
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
