//! Table II bench: regenerates the NDR-vs-coefficient-count table (rows
//! NDR-PC / NDR-WBSN / PCA-PC at ARR ≥ 97 %) and measures the cost of one
//! full sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use hbc_bench::bench_config;
use hbc_core::experiments::table2_ndr;

fn bench_table2(c: &mut Criterion) {
    let config = bench_config();
    let report = table2_ndr(&config).expect("table 2 report");
    println!("\n{report}");

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("ndr_sweep_8_16_32", |b| {
        b.iter(|| table2_ndr(&config).expect("report"))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
