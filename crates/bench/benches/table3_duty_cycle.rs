//! Table III bench: regenerates the code-size / duty-cycle table of the four
//! embedded sub-systems and measures the cycle-model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use hbc_bench::{bench_config, bench_system};
use hbc_core::experiments::table3_runtime;
use hbc_embedded::cycles::{CycleModel, Workload};

fn bench_table3(c: &mut Criterion) {
    let config = bench_config();
    let report = table3_runtime(&config).expect("table 3 report");
    println!("\n{report}");

    let system = bench_system();
    let cycle_model = CycleModel::default();
    let workload = Workload::paper(report.forwarded_fraction);

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("full_experiment", |b| {
        b.iter(|| table3_runtime(&config).expect("report"))
    });
    group.bench_function("duty_cycle_model_only", |b| {
        b.iter(|| {
            cycle_model.duty_cycles(&system.wbsn.projection, &system.wbsn.classifier, &workload)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
