//! Throughput of the durable ingest log's append path.
//!
//! Records a baseline in `BENCH_wal.json` (opt-in via `HBC_BENCH_BASELINE=1`)
//! and gates regressions in CI (`HBC_BENCH_REGRESSION=1`). Wall-clock
//! nanoseconds do not transfer between hosts, so the gated quantity is the
//! **cost ratio of an append (encode + CRC + buffered-file write, sync
//! policy `Never`) to a bare `crc32` scan of the same encoded bytes**: the
//! CRC is the irreducible CPU cost of the record format, so a healthy
//! append sits within a small constant of it — both sides measured on the
//! same host, here and in the baseline. An append regression (extra copies,
//! per-record allocation, accidental fsync) inflates the ratio and fails
//! the job; machine speed cancels out.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hbc_wal::{crc32, SyncPolicy, Wal, WalConfig, WalRecord};

/// A scratch log directory, removed on drop.
struct TempLog(std::path::PathBuf);

impl TempLog {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!("hbc-bench-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempLog(path)
    }

    /// A fresh log in the scratch dir, never fsyncing (the gate measures
    /// the CPU + pagecache path; fsync cost is the *policy's* business).
    fn wal(&self) -> Wal {
        let _ = std::fs::remove_dir_all(&self.0);
        std::fs::create_dir_all(&self.0).expect("recreate scratch dir");
        let config = WalConfig::new(&self.0).sync(SyncPolicy::Never);
        Wal::open(config).expect("open wal").0
    }
}

impl Drop for TempLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `count` Samples records of `codes_per_record` ADC codes each, plus their
/// concatenated encoding (the crc32 comparator input).
fn sample_records(count: usize, codes_per_record: usize) -> (Vec<WalRecord>, Vec<u8>) {
    let records: Vec<WalRecord> = (0..count)
        .map(|seq| WalRecord::Samples {
            token: 0xFEED_F00D_u64,
            seq: seq as u32,
            codes: (0..codes_per_record)
                .map(|i| ((i * 37 + seq * 11) % 4096) as i16 - 2048)
                .collect(),
        })
        .collect();
    let mut bytes = Vec::new();
    for record in &records {
        record.encode_into(&mut bytes);
    }
    (records, bytes)
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(10);
    for codes_per_record in [64usize, 1024] {
        let (records, bytes) = sample_records(64, codes_per_record);
        let tmp = TempLog::new(&format!("criterion-{codes_per_record}"));
        let mut wal = tmp.wal();
        group.bench_function(format!("append/{codes_per_record}cpr"), |b| {
            b.iter(|| {
                for record in &records {
                    wal.append(black_box(record)).expect("append");
                }
                black_box(wal.active_len())
            })
        });
        group.bench_function(format!("crc32_scan/{codes_per_record}cpr"), |b| {
            b.iter(|| black_box(crc32(black_box(&bytes))))
        });
    }
    group.finish();
}

/// Minimum per-iteration time of `f` in nanoseconds (same calibrated-min
/// estimator as the other gated benches).
fn min_ns_per_iter<F: FnMut()>(mut f: F, samples: usize) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= Duration::from_millis(2) || iters >= 1 << 28 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Measures append-vs-crc32 cost per byte for one record size.
fn measure_ratio(codes_per_record: usize, samples: usize) -> (f64, f64, f64) {
    let (records, bytes) = sample_records(64, codes_per_record);
    let n = bytes.len() as f64;
    let tmp = TempLog::new(&format!("gate-{codes_per_record}"));
    let mut wal = tmp.wal();
    let append_ns = min_ns_per_iter(
        || {
            for record in &records {
                wal.append(black_box(record)).expect("append");
            }
        },
        samples,
    ) / n;
    let crc_ns = min_ns_per_iter(
        || {
            black_box(crc32(black_box(&bytes)));
        },
        samples,
    ) / n;
    (append_ns, crc_ns, append_ns / crc_ns)
}

/// Writes `BENCH_wal.json` (opt-in: the file is a checked-in reviewed
/// baseline; see the other `baseline_json` writers).
fn baseline_json(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_BASELINE").map_or(true, |v| v != "1") {
        println!("baseline_json: skipped (set HBC_BENCH_BASELINE=1 to rewrite BENCH_wal.json)");
        return;
    }
    let mut rows = String::new();
    for (i, cpr) in [64usize, 1024].into_iter().enumerate() {
        let (append_ns, crc_ns, ratio) = measure_ratio(cpr, 9);
        println!(
            "baseline codes_per_record={cpr:>5}  append {append_ns:>7.3} ns/B  crc32 \
             {crc_ns:>7.3} ns/B  cost_ratio {ratio:.2}"
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"codes_per_record\": {cpr}, \"append_ns_per_byte\": {append_ns:.3}, \
             \"crc32_ns_per_byte\": {crc_ns:.3}, \"cost_ratio\": {ratio:.3}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"wal_append\",\n  \"units\": \"ns_per_byte\",\n  \"kernel\": \
         \"hbc-wal append (encode + crc32 + pagecache write, SyncPolicy::Never) vs a bare crc32 \
         scan of the same encoded bytes\",\n  \"estimator\": \"min of 9 calibrated samples\",\n  \
         \"gate\": \"cost_ratio (append/crc32) must stay within HBC_BENCH_MARGIN (default 2x) of \
         this baseline\",\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    std::fs::write(path, json).expect("write BENCH_wal.json");
    println!("baseline_json: wrote {path}");
}

/// Parses `(codes_per_record, cost_ratio)` rows out of the baseline (same
/// dependency-free scraping as the other gates).
fn parse_baseline(json: &str) -> Vec<(usize, f64)> {
    json.lines()
        .filter_map(|line| {
            let cpr = line
                .split("\"codes_per_record\":")
                .nth(1)?
                .split([',', '}'])
                .next()?
                .trim()
                .parse()
                .ok()?;
            let ratio = line
                .split("\"cost_ratio\":")
                .nth(1)?
                .split([',', '}'])
                .next()?
                .trim()
                .parse()
                .ok()?;
            Some((cpr, ratio))
        })
        .collect()
}

/// CI regression gate (`HBC_BENCH_REGRESSION=1`): the append-vs-crc32 cost
/// ratio must stay within the noise margin of the checked-in baseline.
fn regression_gate(_c: &mut Criterion) {
    if std::env::var("HBC_BENCH_REGRESSION").map_or(true, |v| v != "1") {
        println!("regression_gate: skipped (set HBC_BENCH_REGRESSION=1 to enable)");
        return;
    }
    let margin: f64 = std::env::var("HBC_BENCH_MARGIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    let json = std::fs::read_to_string(path).expect("checked-in BENCH_wal.json");
    let baseline = parse_baseline(&json);
    assert!(!baseline.is_empty(), "no rows parsed from BENCH_wal.json");

    let mut failures = Vec::new();
    for (cpr, baseline_ratio) in baseline {
        let (append_ns, crc_ns, ratio) = measure_ratio(cpr, 5);
        let ceiling = baseline_ratio * margin;
        let verdict = if ratio <= ceiling { "ok" } else { "REGRESSION" };
        println!(
            "regression_gate cpr={cpr:>5}  append {append_ns:>7.3} ns/B  crc32 {crc_ns:>7.3} \
             ns/B  cost_ratio {ratio:.2} (baseline {baseline_ratio:.2}, ceiling {ceiling:.2})  \
             {verdict}"
        );
        if ratio > ceiling {
            failures.push(format!(
                "codes_per_record={cpr}: cost ratio {ratio:.2} above ceiling {ceiling:.2} \
                 (baseline {baseline_ratio:.2} x margin {margin})"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "wal append regressed:\n{}",
        failures.join("\n")
    );
}

criterion_group!(benches, bench_append, baseline_json, regression_gate);
criterion_main!(benches);
