//! Table I bench: regenerates the dataset-composition report and measures
//! how long synthesising the (scaled) dataset takes.

use criterion::{criterion_group, criterion_main, Criterion};
use hbc_bench::bench_config;
use hbc_core::experiments::table1_composition;
use hbc_ecg::dataset::{Dataset, DatasetSpec};

fn bench_table1(c: &mut Criterion) {
    let config = bench_config();
    let report = table1_composition(&config).expect("table 1 report");
    println!("\n{report}");

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("dataset_composition_report", |b| {
        b.iter(|| table1_composition(&config).expect("report"))
    });
    group.bench_function("synthesize_tiny_dataset", |b| {
        b.iter(|| Dataset::synthetic(DatasetSpec::tiny(), 3))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
