//! Shared helpers for the benchmark harness.
//!
//! Each bench target under `benches/` regenerates one table or figure of the
//! paper (printing the rows once) and measures the cost of the underlying
//! computation with Criterion. The helpers here keep the per-bench setup
//! (trained systems, datasets) in one place so every target uses the same
//! workload.

use hbc_core::config::ExperimentConfig;
use hbc_core::pipeline::TrainedSystem;
use hbc_ecg::dataset::{Dataset, DatasetSpec};

/// Configuration used by the benches: the quick preset unless the
/// `HBC_BENCH_SCALE` environment variable selects `paper` or a fraction.
pub fn bench_config() -> ExperimentConfig {
    match std::env::var("HBC_BENCH_SCALE").as_deref() {
        Ok("paper") => ExperimentConfig::paper(),
        Ok(value) => value
            .parse::<f64>()
            .ok()
            .and_then(|f| ExperimentConfig::at_scale(hbc_core::config::Scale::Fraction(f)).ok())
            .unwrap_or_else(ExperimentConfig::quick),
        Err(_) => ExperimentConfig::quick(),
    }
}

/// A trained system shared by the benches that need one.
pub fn bench_system() -> TrainedSystem {
    TrainedSystem::train(&bench_config()).expect("bench training succeeds")
}

/// A small synthetic dataset for micro-benchmarks that only need beats.
pub fn bench_dataset() -> Dataset {
    Dataset::synthetic(DatasetSpec::tiny(), 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_defaults_to_quick() {
        assert_eq!(bench_config(), ExperimentConfig::quick());
    }

    #[test]
    fn bench_dataset_is_nonempty() {
        let ds = bench_dataset();
        assert!(!ds.test.is_empty());
    }
}
