//! Property-based wire-protocol guarantees:
//!
//! * encode → [`FrameDecoder`] across **arbitrary byte-chunk splits** equals
//!   the original frame sequence (the decoder is a pure function of the byte
//!   stream, not of its chunking);
//! * malformed input — flipped bits (CRC), truncation, oversized lengths,
//!   unknown tags — errors without panicking and never yields a phantom
//!   frame.

use hbc_net::proto::{
    crc32, Frame, FrameDecoder, ProtoError, WireOutcome, WireReport, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// SplitMix64 step, the workspace's stock deterministic generator.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically builds one of every frame kind from a seed.
fn frame_from(state: &mut u64) -> Frame {
    match next(state) % 12 {
        0 => Frame::Hello {
            version: next(state) as u16,
        },
        1 => Frame::OpenSession {
            patient_id: next(state) as u32,
            fs_millihertz: next(state) as u32,
            calib_len: next(state) as u32,
        },
        2 => {
            let n = (next(state) % 300) as usize;
            Frame::Samples {
                session: next(state) as u32,
                seq: next(state) as u32,
                samples: (0..n).map(|_| next(state) as i16).collect(),
            }
        }
        3 => Frame::CloseSession {
            session: next(state) as u32,
        },
        4 => Frame::SessionOpened {
            session: next(state) as u32,
            credit: next(state) as u32,
            token: next(state),
        },
        5 => Frame::Credit {
            session: next(state) as u32,
            grant: next(state) as u32,
            acked_seq: next(state) as u32,
        },
        9 => Frame::ResumeSession {
            patient_id: next(state) as u32,
            session_token: next(state),
            last_acked_seq: next(state) as u32,
            outcomes_received: next(state),
        },
        10 => Frame::SessionResumed {
            session: next(state) as u32,
            next_expected_seq: next(state) as u32,
            credit: next(state) as u32,
        },
        11 => Frame::Busy {
            retry_after_ms: next(state) as u32,
        },
        6 => {
            let n = (next(state) % 40) as usize;
            Frame::Outcomes {
                session: next(state) as u32,
                outcomes: (0..n)
                    .map(|_| WireOutcome {
                        peak: next(state),
                        class: (next(state) % 4) as u8,
                        delineated: next(state) & 1 == 1,
                        fiducials: next(state) as u16,
                    })
                    .collect(),
            }
        }
        7 => Frame::Report {
            session: next(state) as u32,
            report: WireReport {
                beats: next(state),
                forwarded: next(state),
                samples: next(state),
            },
        },
        _ => {
            let n = (next(state) % 60) as usize;
            Frame::Deny {
                message: (0..n)
                    .map(|_| char::from(b'a' + (next(state) % 26) as u8))
                    .collect(),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn round_trip_is_chunking_invariant(
        frame_seed in any::<u64>(),
        split_seed in any::<u64>(),
        num_frames in 1usize..=12,
    ) {
        let mut state = frame_seed;
        let frames: Vec<Frame> = (0..num_frames).map(|_| frame_from(&mut state)).collect();
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }

        // Feed the byte stream in pseudo-random ragged chunks (including
        // empty ones) and pop frames as they complete.
        let mut decoder = FrameDecoder::new();
        let mut seen = Vec::new();
        let mut split_state = split_seed;
        let mut at = 0usize;
        while at < bytes.len() {
            let n = (next(&mut split_state) % 23) as usize;
            let end = (at + n).min(bytes.len());
            decoder.feed(&bytes[at..end]);
            at = end;
            while let Some(f) = decoder.next_frame().expect("valid stream") {
                seen.push(f);
            }
        }
        prop_assert_eq!(&seen, &frames);
        prop_assert_eq!(decoder.buffered(), 0);
        decoder.expect_eof().expect("no residue");
    }

    #[test]
    fn duplicated_and_reordered_frames_decode_verbatim_at_any_split(
        frame_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
        split_seed in any::<u64>(),
        num_frames in 1usize..=8,
    ) {
        // A chaos proxy can repeat a frame or swap two of them on the wire.
        // The decoder's contract is to hand every syntactically valid frame
        // up **verbatim and in wire order** — deduplication and sequencing
        // are the session layer's job (`seq` numbers), not the framer's.
        let mut state = frame_seed;
        let originals: Vec<Frame> = (0..num_frames).map(|_| frame_from(&mut state)).collect();

        // Build a duplicated + reordered delivery schedule.
        let mut shuffle_state = shuffle_seed;
        let mut delivery: Vec<Frame> = Vec::new();
        for f in &originals {
            delivery.push(f.clone());
            if next(&mut shuffle_state).is_multiple_of(3) {
                delivery.push(f.clone()); // duplicate
            }
        }
        // Fisher–Yates with the deterministic generator.
        for i in (1..delivery.len()).rev() {
            let j = (next(&mut shuffle_state) % (i as u64 + 1)) as usize;
            delivery.swap(i, j);
        }

        let mut bytes = Vec::new();
        for f in &delivery {
            f.encode_into(&mut bytes);
        }

        let mut decoder = FrameDecoder::new();
        let mut seen = Vec::new();
        let mut split_state = split_seed;
        let mut at = 0usize;
        while at < bytes.len() {
            let n = (next(&mut split_state) % 17) as usize;
            let end = (at + n).min(bytes.len());
            decoder.feed(&bytes[at..end]);
            at = end;
            while let Some(f) = decoder.next_frame().expect("valid stream") {
                seen.push(f);
            }
        }
        prop_assert_eq!(&seen, &delivery);
        decoder.expect_eof().expect("no residue");
    }

    #[test]
    fn flipping_any_bit_errors_or_shortens_never_panics(
        frame_seed in any::<u64>(),
        flip_seed in any::<u64>(),
    ) {
        let mut state = frame_seed;
        let frame = frame_from(&mut state);
        let mut bytes = frame.encode();
        let mut flip_state = flip_seed;
        let bit = (next(&mut flip_state) % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);

        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        // The decoder must terminate without panicking: either it errors, or
        // it waits for more bytes (length-field flips that grew the frame),
        // or — only when the flip landed in the length field shrinking the
        // frame — it may misparse; it must never silently return the
        // original frame as if nothing happened unless the flip was undone
        // by the CRC (impossible for a single bit).
        match decoder.next_frame() {
            Ok(Some(decoded)) => prop_assert!(
                decoded != frame,
                "single bit flip went unnoticed"
            ),
            Ok(None) => {} // waiting for bytes that will never come
            Err(_) => {}   // detected
        }
    }

    #[test]
    fn truncation_never_yields_a_frame(
        frame_seed in any::<u64>(),
        cut in 0usize..=64,
    ) {
        let mut state = frame_seed;
        let frame = frame_from(&mut state);
        let bytes = frame.encode();
        if cut == 0 || cut >= bytes.len() {
            return Ok(());
        }
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes[..bytes.len() - cut]);
        prop_assert_eq!(decoder.next_frame().expect("incomplete, not invalid"), None);
        prop_assert!(matches!(
            decoder.expect_eof(),
            Err(ProtoError::Truncated { .. })
        ));
    }
}

#[test]
fn oversized_length_is_rejected_before_buffering() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
    bytes.extend_from_slice(&[0; 64]);
    let mut decoder = FrameDecoder::new();
    decoder.feed(&bytes);
    assert!(matches!(
        decoder.next_frame(),
        Err(ProtoError::BadLength { .. })
    ));
}

#[test]
fn unknown_tag_with_valid_crc_is_rejected() {
    // 0x05 (ResumeSession) and 0x86 (SessionResumed) are assigned tags since
    // protocol v2, but an empty body is malformed for both — still rejected.
    for tag in [0x00u8, 0x05, 0x42, 0x80, 0x86, 0xFF] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(tag);
        bytes.extend_from_slice(&crc32(&[tag]).to_le_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        assert!(
            matches!(
                decoder.next_frame(),
                Err(ProtoError::UnknownTag(_)) | Err(ProtoError::Malformed(_))
            ),
            "tag {tag:#04x} must be rejected"
        );
    }
}

#[test]
fn hello_round_trips_with_the_shipped_version() {
    let frame = Frame::Hello {
        version: PROTOCOL_VERSION,
    };
    let mut decoder = FrameDecoder::new();
    decoder.feed(&frame.encode());
    assert_eq!(decoder.next_frame().expect("valid"), Some(frame));
}
