//! The gateway reactor: a single-threaded nonblocking TCP server that
//! terminates node connections and feeds the [`StreamHub`].
//!
//! ## Reactor
//!
//! [`Gateway::poll`] runs one sweep: accept pending connections, read every
//! socket until it would block, decode and handle frames, promote sessions
//! whose calibration stretch is complete, batch at most one pending chunk
//! per session into a single [`StreamHub::ingest`] call (so decode and
//! classification still fan out over `hbc-par`), forward freshly classified
//! beats, grant credit, evict idle sessions, park the sessions of dead
//! connections for resumption (and expire parked ones past the retention
//! window) and flush write buffers. [`Gateway::run`] loops `poll` until a
//! shutdown flag flips, then reports [`GatewayStats`].
//!
//! ## Credit-based flow control
//!
//! Every session holds a **credit budget** of `credit_budget` samples — the
//! most it may have sent but not yet had consumed by the hub. The budget is
//! granted in full at [`Frame::SessionOpened`]; as the hub consumes buffered
//! samples the gateway returns [`Frame::Credit`] grants. A compliant sender
//! therefore stalls when the gateway falls behind instead of ballooning its
//! buffers; a sender that overruns its credit hits the configurable
//! [`OverflowPolicy`]. Back-pressure composes through the write side too:
//! while a connection's outbox exceeds `max_outbox_bytes` (a slow *reader*),
//! the gateway stops consuming that connection's sessions — so no new
//! outcomes are produced, no credit is granted, and the sender stalls at its
//! budget while other sessions keep flowing. Gateway-side memory per session
//! stays bounded by the budget plus one in-flight chunk.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use hbc_core::StreamHub;
use hbc_embedded::WbsnFirmware;

use crate::proto::{
    Frame, FrameDecoder, WireOutcome, WireReport, MAX_SAMPLES_PER_FRAME, PROTOCOL_VERSION,
};
use crate::session::{ResumeOutcome, SessionManager, SessionPhase};

/// What the gateway does to a sender that overruns its credit budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Send [`Frame::Deny`] and drop the connection (default: an overrun is
    /// a protocol violation).
    Disconnect,
    /// Accept up to the budget and silently drop the excess samples (the
    /// session's stream develops a gap; its own results degrade, nobody
    /// else's do).
    DropExcess,
}

/// Tunables of the gateway reactor.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Per-session credit budget in samples: the most a sender may have in
    /// flight (sent but not yet consumed by the hub).
    pub credit_budget: usize,
    /// Write-buffer cap per connection; beyond it the gateway stops
    /// consuming that connection's sessions (slow-reader back-pressure).
    pub max_outbox_bytes: usize,
    /// Sessions without any frame for longer than this are evicted (drained,
    /// reported, freed).
    pub idle_timeout: Duration,
    /// Credit-overrun policy.
    pub overflow: OverflowPolicy,
    /// Most samples one session feeds into the hub per reactor sweep; keeps
    /// single sweeps short so no session can monopolise the reactor.
    pub max_ingest_per_poll: usize,
    /// How long a session whose connection died stays resumable (calibrated
    /// thresholds + stream position parked for [`Frame::ResumeSession`]).
    /// `Duration::ZERO` disables retention: a dead connection discards its
    /// sessions immediately, as before protocol version 2.
    pub resume_window: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            credit_budget: 1 << 16,
            max_outbox_bytes: 256 * 1024,
            idle_timeout: Duration::from_secs(30),
            overflow: OverflowPolicy::Disconnect,
            max_ingest_per_poll: 8192,
            resume_window: Duration::from_secs(30),
        }
    }
}

/// Counters the reactor maintains; returned by [`Gateway::run`] and readable
/// any time via [`Gateway::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames decoded from clients.
    pub frames_in: u64,
    /// Frames sent to clients.
    pub frames_out: u64,
    /// Samples accepted into session buffers.
    pub samples_in: u64,
    /// Samples discarded without entering a session buffer: overflow
    /// truncation under [`OverflowPolicy::DropExcess`], plus stragglers
    /// racing an asynchronous session end (eviction) under either policy.
    pub samples_dropped: u64,
    /// Beat outcomes forwarded to clients.
    pub beats_out: u64,
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions closed by request.
    pub sessions_closed: u64,
    /// Sessions evicted by the idle timeout.
    pub sessions_evicted: u64,
    /// Sessions parked for resume when their connection died.
    pub sessions_detached: u64,
    /// Sessions re-attached via [`Frame::ResumeSession`].
    pub sessions_resumed: u64,
    /// Detached sessions discarded because the retention window elapsed.
    pub sessions_expired: u64,
    /// Connections denied (handshake, protocol or credit violations).
    pub denials: u64,
    /// Largest number of samples ever buffered for a single session — the
    /// bounded-memory witness: for compliant senders it never exceeds
    /// [`GatewayConfig::credit_budget`].
    pub peak_buffered_samples: usize,
}

struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbox: Vec<u8>,
    sent: usize,
    greeted: bool,
    /// Outbox still flushing, no further reads; reaped once drained.
    closing: bool,
    /// Socket gone; reaped immediately.
    dead: bool,
}

impl Connection {
    fn queued(&self) -> usize {
        self.outbox.len() - self.sent
    }
}

/// The TCP ingestion gateway: owns the listener, the connections and the
/// [`StreamHub`] every session streams into.
pub struct Gateway<'fw> {
    listener: TcpListener,
    hub: StreamHub<'fw>,
    fs_millihertz: u32,
    config: GatewayConfig,
    conns: Vec<Option<Connection>>,
    sessions: SessionManager,
    stats: GatewayStats,
    /// Reused per-sweep scratch listing the sessions with a staged chunk.
    staged: Vec<u32>,
}

impl<'fw> Gateway<'fw> {
    /// Binds the gateway and prepares a hub serving `firmware` sessions at
    /// sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        firmware: &'fw WbsnFirmware,
        fs: f64,
        config: GatewayConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Gateway {
            listener,
            hub: StreamHub::new(firmware, fs),
            fs_millihertz: (fs * 1000.0).round() as u32,
            config,
            conns: Vec::new(),
            sessions: SessionManager::new(),
            stats: GatewayStats::default(),
            staged: Vec::new(),
        })
    }

    /// The address the gateway listens on (use with port 0 binds).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Counters so far.
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    /// Live wire sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Sessions parked for resume (their connection died within the
    /// retention window).
    pub fn parked_sessions(&self) -> usize {
        self.sessions.detached_len()
    }

    /// Runs the reactor until `shutdown` flips, then returns the final
    /// counters. Sleeps briefly on idle sweeps instead of spinning.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors only drop the
    /// affected connection.
    pub fn run(mut self, shutdown: &AtomicBool) -> std::io::Result<GatewayStats> {
        while !shutdown.load(Ordering::Acquire) {
            if !self.poll()? {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
        Ok(self.stats)
    }

    /// One reactor sweep; returns whether any progress was made (bytes
    /// moved, frames handled, samples ingested).
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors.
    pub fn poll(&mut self) -> std::io::Result<bool> {
        let mut progress = self.accept_new()?;
        for idx in 0..self.conns.len() {
            progress |= self.service_reads(idx);
        }
        progress |= self.ingest_sweep();
        progress |= self.forward_outcomes_and_credit();
        self.evict_idle();
        self.reap();
        self.expire_detached();
        for idx in 0..self.conns.len() {
            progress |= self.flush(idx);
        }
        Ok(progress)
    }

    fn accept_new(&mut self) -> std::io::Result<bool> {
        let mut accepted = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    let conn = Connection {
                        stream,
                        decoder: FrameDecoder::new(),
                        outbox: Vec::new(),
                        sent: 0,
                        greeted: false,
                        closing: false,
                        dead: false,
                    };
                    let slot = self.conns.iter().position(Option::is_none);
                    match slot {
                        Some(i) => self.conns[i] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    self.stats.connections += 1;
                    accepted = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(accepted)
    }

    /// Reads one connection until it would block (bounded per sweep) and
    /// handles every complete frame.
    fn service_reads(&mut self, idx: usize) -> bool {
        const READ_BUDGET: usize = 256 * 1024;
        let Some(conn) = self.conns[idx].as_mut() else {
            return false;
        };
        if conn.closing || conn.dead {
            return false;
        }
        let mut buf = [0u8; 16 * 1024];
        let mut taken = 0usize;
        let mut eof = false;
        while taken < READ_BUDGET {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.feed(&buf[..n]);
                    taken += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        let mut frames = Vec::new();
        let mut violation = None;
        loop {
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) => {
                    violation = Some(format!("protocol error: {e}"));
                    break;
                }
            }
        }
        let progress = taken > 0 || !frames.is_empty();
        self.stats.frames_in += frames.len() as u64;
        for frame in frames {
            // A denial ends the conversation: one Deny goes out and the
            // rest of the batch is dropped, instead of one Deny per
            // already-buffered frame.
            if self.conns[idx].as_ref().is_none_or(|c| c.closing || c.dead) {
                break;
            }
            self.handle_frame(idx, frame);
        }
        if let Some(message) = violation {
            self.deny(idx, &message);
        }
        if eof {
            // EOF only closes the peer's *write* side (a client may
            // half-close after its last frame and still read replies), so
            // frames that arrived with it were handled above and the
            // connection now drains its outbox before being reaped.
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.closing = true;
            }
        }
        progress
    }

    /// Queues a frame on a connection's outbox.
    fn send(&mut self, idx: usize, frame: &Frame) {
        if let Some(conn) = self.conns[idx].as_mut() {
            if !conn.dead {
                frame.encode_into(&mut conn.outbox);
                self.stats.frames_out += 1;
            }
        }
    }

    /// Sends [`Frame::Deny`] and marks the connection for a flush-then-close.
    fn deny(&mut self, idx: usize, message: &str) {
        self.stats.denials += 1;
        self.send(
            idx,
            &Frame::Deny {
                message: message.to_string(),
            },
        );
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.closing = true;
        }
    }

    fn handle_frame(&mut self, idx: usize, frame: Frame) {
        let greeted = self.conns[idx].as_ref().is_some_and(|c| c.greeted);
        if !greeted {
            match frame {
                Frame::Hello { version } if version == PROTOCOL_VERSION => {
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.greeted = true;
                    }
                    self.send(
                        idx,
                        &Frame::Hello {
                            version: PROTOCOL_VERSION,
                        },
                    );
                }
                Frame::Hello { version } => {
                    self.deny(idx, &format!("unsupported protocol version {version}"));
                }
                _ => self.deny(idx, "expected Hello first"),
            }
            return;
        }
        match frame {
            Frame::Hello { .. } => self.deny(idx, "duplicate Hello"),
            Frame::OpenSession {
                patient_id,
                fs_millihertz,
                calib_len,
            } => self.open_session(idx, patient_id, fs_millihertz, calib_len),
            Frame::Samples {
                session,
                seq,
                samples,
            } => self.accept_samples(idx, session, seq, &samples),
            Frame::ResumeSession {
                patient_id,
                session_token,
                last_acked_seq,
                outcomes_received,
            } => self.resume_session(
                idx,
                patient_id,
                session_token,
                last_acked_seq,
                outcomes_received,
            ),
            Frame::CloseSession { session } => {
                if self.sessions.get(session).is_some_and(|s| s.conn == idx) {
                    self.close_wire_session(session, false);
                } else if self.sessions.is_retired(session) {
                    // Ends are asynchronous (idle eviction): a compliant
                    // client can race its close against the gateway's
                    // Report. The session is gone and reported; ignore.
                } else {
                    self.deny(idx, &format!("close of unknown session {session}"));
                }
            }
            // Server-only frames arriving at the server are violations.
            Frame::SessionOpened { .. }
            | Frame::SessionResumed { .. }
            | Frame::Credit { .. }
            | Frame::Outcomes { .. }
            | Frame::Report { .. } => self.deny(idx, "client sent a gateway-only frame"),
            Frame::Deny { message } => {
                // A client may announce why it is leaving; drop it politely.
                let _ = message;
                if let Some(conn) = self.conns[idx].as_mut() {
                    conn.closing = true;
                }
            }
        }
    }

    fn open_session(&mut self, idx: usize, patient_id: u32, fs_millihertz: u32, calib_len: u32) {
        if fs_millihertz != self.fs_millihertz {
            self.deny(
                idx,
                &format!(
                    "sampling rate {fs_millihertz} mHz does not match the gateway's {}",
                    self.fs_millihertz
                ),
            );
            return;
        }
        let calib_len = calib_len as usize;
        if calib_len == 0 || calib_len > self.config.credit_budget {
            self.deny(
                idx,
                &format!(
                    "calibration length {calib_len} outside (0, {}]",
                    self.config.credit_budget
                ),
            );
            return;
        }
        let wire_id = self
            .sessions
            .open(idx, patient_id, calib_len, Instant::now());
        let token = self.sessions.get(wire_id).expect("just opened").token;
        self.stats.sessions_opened += 1;
        self.send(
            idx,
            &Frame::SessionOpened {
                session: wire_id,
                credit: self.config.credit_budget as u32,
                token,
            },
        );
    }

    /// Re-attaches a parked (or takeover) session to connection `idx` and
    /// tells the client where to restart: the gateway's own receive
    /// position is authoritative, the client's `last_acked_seq` is only a
    /// cross-check, and `outcomes_received` rewinds outcome forwarding so
    /// beats that were in flight when the link died are sent again instead
    /// of leaving a gap.
    fn resume_session(
        &mut self,
        idx: usize,
        patient_id: u32,
        token: u64,
        last_acked_seq: u32,
        outcomes_received: u64,
    ) {
        if self.config.resume_window.is_zero() {
            self.deny(idx, "session resumption is disabled on this gateway");
            return;
        }
        match self.sessions.resume(token, patient_id, idx, Instant::now()) {
            ResumeOutcome::Resumed(wire_id) => {
                let budget = self.config.credit_budget;
                let received = self.sessions.get(wire_id).expect("just resumed").next_seq;
                if last_acked_seq > received {
                    self.deny(
                        idx,
                        &format!(
                            "resume claims {last_acked_seq} acked sample frames, gateway received {received}"
                        ),
                    );
                    return;
                }
                let s = self.sessions.get_mut(wire_id).expect("just resumed");
                // The client cannot have received more outcomes than were
                // ever forwarded; a smaller claim rewinds (resend), never
                // a skip.
                s.outcomes_sent = (outcomes_received as usize).min(s.outcomes_sent);
                // Credit restarts as an absolute figure: budget minus what
                // is still buffered gateway-side for this session.
                s.consumed_since_grant = 0;
                let credit = budget.saturating_sub(s.buffered()) as u32;
                let next_expected_seq = s.next_seq;
                self.stats.sessions_resumed += 1;
                self.send(
                    idx,
                    &Frame::SessionResumed {
                        session: wire_id,
                        next_expected_seq,
                        credit,
                    },
                );
            }
            ResumeOutcome::UnknownToken => {
                self.deny(idx, "unknown or expired resume token");
            }
            ResumeOutcome::WrongPatient => {
                self.deny(
                    idx,
                    &format!("resume token does not belong to patient {patient_id}"),
                );
            }
        }
    }

    fn accept_samples(&mut self, idx: usize, session: u32, seq: u32, samples: &[i16]) {
        let budget = self.config.credit_budget;
        let overflow = self.config.overflow;
        let Some(s) = self.sessions.get_mut(session) else {
            if self.sessions.is_retired(session) {
                // Samples racing an asynchronous end (eviction): the sender
                // has a Report on the wire telling it to stop; drop the
                // stragglers, keep the connection.
                self.stats.samples_dropped += samples.len() as u64;
            } else {
                self.deny(idx, &format!("samples for unknown session {session}"));
            }
            return;
        };
        if s.conn != idx {
            self.deny(
                idx,
                &format!("session {session} belongs to another connection"),
            );
            return;
        }
        if seq != s.next_seq {
            let expected = s.next_seq;
            self.deny(
                idx,
                &format!("sample frame gap: got seq {seq}, expected {expected}"),
            );
            return;
        }
        if samples.len() > MAX_SAMPLES_PER_FRAME {
            self.deny(idx, "sample frame exceeds MAX_SAMPLES_PER_FRAME");
            return;
        }
        s.next_seq += 1;
        s.last_activity = Instant::now();
        let room = budget.saturating_sub(s.buffered());
        let accepted = if samples.len() > room {
            match overflow {
                OverflowPolicy::Disconnect => {
                    self.deny(
                        idx,
                        &format!(
                            "credit exceeded: {} samples in flight + {} sent > budget {budget}",
                            budget - room,
                            samples.len()
                        ),
                    );
                    return;
                }
                OverflowPolicy::DropExcess => {
                    self.stats.samples_dropped += (samples.len() - room) as u64;
                    room
                }
            }
        } else {
            samples.len()
        };
        let s = self.sessions.get_mut(session).expect("checked above");
        let adc = crate::proto::wire_adc();
        s.pending.extend(
            samples[..accepted]
                .iter()
                .map(|&c| adc.dequantize_sample(i32::from(c))),
        );
        s.samples_received += accepted as u64;
        self.stats.samples_in += accepted as u64;
        self.stats.peak_buffered_samples = self.stats.peak_buffered_samples.max(s.buffered());
    }

    /// Promotes sessions whose calibration stretch is complete, then feeds
    /// at most one pending chunk per session into the hub with a single
    /// parallel [`StreamHub::ingest`] call.
    fn ingest_sweep(&mut self) -> bool {
        // Promotion: derive thresholds from the first `calib_len` samples
        // and create the hub session; the stretch stays in `pending` and is
        // replayed into the stream, like a node's start-up phase.
        for wire_id in self.sessions.ids() {
            let Some(s) = self.sessions.get_mut(wire_id) else {
                continue;
            };
            let SessionPhase::Calibrating { calib_len } = s.phase else {
                continue;
            };
            if s.pending.len() < calib_len {
                continue;
            }
            match self.hub.calibrate_thresholds(&s.pending[..calib_len]) {
                Ok(thresholds) => {
                    let hub = self.hub.add_patient(s.patient_id, thresholds);
                    let s = self.sessions.get_mut(wire_id).expect("still live");
                    s.phase = SessionPhase::Streaming { hub };
                }
                Err(_) => {
                    // A degenerate calibration stretch is a per-session
                    // failure: end *this* session with an empty Report
                    // (its samples counter tells the client how much was
                    // consumed for nothing) and leave the connection's
                    // other sessions untouched.
                    let conn = s.conn;
                    let samples = s.samples_received;
                    self.sessions.remove(wire_id);
                    self.send(
                        conn,
                        &Frame::Report {
                            session: wire_id,
                            report: WireReport {
                                beats: 0,
                                forwarded: 0,
                                samples,
                            },
                        },
                    );
                    self.stats.sessions_closed += 1;
                }
            }
        }

        // Stage one chunk per session. Sessions on connections whose outbox
        // is over the cap are skipped: no consumption, no credit — the
        // slow-reader stall.
        let now = Instant::now();
        let Gateway {
            hub,
            sessions,
            conns,
            config,
            staged,
            ..
        } = self;
        staged.clear();
        for wire_id in sessions.ids() {
            let s = sessions.get_mut(wire_id).expect("listed");
            if s.hub_id().is_none() || s.pending.is_empty() {
                continue;
            }
            let writable = conns[s.conn]
                .as_ref()
                .is_some_and(|c| !c.dead && c.queued() <= config.max_outbox_bytes);
            if !writable {
                continue;
            }
            let take = s.pending.len().min(config.max_ingest_per_poll);
            s.chunk.clear();
            s.chunk.extend(s.pending.drain(..take));
            s.consumed_since_grant += take;
            // Consumption counts as activity: a compliant sender stalled on
            // credit (because this gateway is the slow side) must not be
            // idle-evicted while its buffer is still being drained.
            s.last_activity = now;
            staged.push(wire_id);
        }
        if staged.is_empty() {
            return false;
        }
        let feeds: Vec<(hbc_core::SessionId, &[f64])> = staged
            .iter()
            .map(|&wire_id| {
                let s = sessions.get(wire_id).expect("staged");
                (s.hub_id().expect("streaming"), s.chunk.as_slice())
            })
            .collect();
        hub.ingest(&feeds)
            .expect("staged sessions are live, unique hub sessions");
        true
    }

    /// Forwards freshly classified beats and grants credit for consumed
    /// samples.
    fn forward_outcomes_and_credit(&mut self) -> bool {
        let mut progress = false;
        for wire_id in self.sessions.ids() {
            let Some(s) = self.sessions.get(wire_id) else {
                continue;
            };
            let conn = s.conn;
            let Some(hub_id) = s.hub_id() else {
                continue;
            };
            let fresh = self
                .hub
                .outcomes_since(hub_id, s.outcomes_sent)
                .expect("streaming sessions are live in the hub");
            let grant = s.consumed_since_grant;
            if !fresh.is_empty() {
                let outcomes: Vec<WireOutcome> =
                    fresh.iter().map(WireOutcome::from_outcome).collect();
                let n = outcomes.len();
                self.send(
                    conn,
                    &Frame::Outcomes {
                        session: wire_id,
                        outcomes,
                    },
                );
                let s = self.sessions.get_mut(wire_id).expect("live");
                s.outcomes_sent += n;
                self.stats.beats_out += n as u64;
                progress = true;
            }
            if grant > 0 {
                let under_cap = self.conns[conn]
                    .as_ref()
                    .is_some_and(|c| !c.dead && c.queued() <= self.config.max_outbox_bytes);
                if under_cap {
                    let acked_seq = self.sessions.get(wire_id).map_or(0, |s| s.next_seq);
                    self.send(
                        conn,
                        &Frame::Credit {
                            session: wire_id,
                            grant: grant as u32,
                            acked_seq,
                        },
                    );
                    let s = self.sessions.get_mut(wire_id).expect("live");
                    s.consumed_since_grant = 0;
                    progress = true;
                }
            }
        }
        progress
    }

    fn evict_idle(&mut self) {
        for wire_id in self
            .sessions
            .idle_ids(Instant::now(), self.config.idle_timeout)
        {
            self.close_wire_session(wire_id, true);
        }
    }

    /// Ends a wire session: flushes its buffer into the hub, closes the hub
    /// session, sends any unforwarded beats plus the final report, and
    /// forgets it.
    fn close_wire_session(&mut self, wire_id: u32, evicted: bool) {
        let Some(mut s) = self.sessions.remove(wire_id) else {
            return;
        };
        // A close can arrive while the calibration stretch is still short;
        // calibrate on what exists (best effort — too short simply yields an
        // empty session).
        if s.hub_id().is_none() && !s.pending.is_empty() {
            let stretch = match s.phase {
                SessionPhase::Calibrating { calib_len } => calib_len.min(s.pending.len()),
                SessionPhase::Streaming { .. } => unreachable!("hub_id is None"),
            };
            if let Ok(thresholds) = self.hub.calibrate_thresholds(&s.pending[..stretch]) {
                let hub = self.hub.add_patient(s.patient_id, thresholds);
                s.phase = SessionPhase::Streaming { hub };
            }
        }
        let report = match s.hub_id() {
            Some(hub_id) => {
                if !s.pending.is_empty() {
                    self.hub
                        .ingest(&[(hub_id, s.pending.as_slice())])
                        .expect("closing session is live");
                }
                let session_report = self
                    .hub
                    .close_session(hub_id)
                    .expect("closing session is live");
                let unsent =
                    &session_report.outcomes[s.outcomes_sent.min(session_report.outcomes.len())..];
                if !unsent.is_empty() {
                    let outcomes: Vec<WireOutcome> =
                        unsent.iter().map(WireOutcome::from_outcome).collect();
                    self.stats.beats_out += outcomes.len() as u64;
                    self.send(
                        s.conn,
                        &Frame::Outcomes {
                            session: wire_id,
                            outcomes,
                        },
                    );
                }
                WireReport {
                    beats: session_report.outcomes.len() as u64,
                    forwarded: session_report.forwarded_beats as u64,
                    samples: s.samples_received,
                }
            }
            None => WireReport {
                beats: 0,
                forwarded: 0,
                samples: s.samples_received,
            },
        };
        self.send(
            s.conn,
            &Frame::Report {
                session: wire_id,
                report,
            },
        );
        if evicted {
            self.stats.sessions_evicted += 1;
        } else {
            self.stats.sessions_closed += 1;
        }
    }

    /// Releases dead connections and closing connections whose outbox has
    /// drained. Their sessions are **detached** (parked for resume within
    /// the retention window) when retention is enabled, discarded otherwise.
    fn reap(&mut self) {
        let retain = !self.config.resume_window.is_zero();
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let remove = match self.conns[idx].as_ref() {
                Some(c) => c.dead || (c.closing && c.queued() == 0),
                None => false,
            };
            if !remove {
                continue;
            }
            for wire_id in self.sessions.ids_for_conn(idx) {
                if retain {
                    if self.sessions.detach(wire_id, now) {
                        self.stats.sessions_detached += 1;
                    }
                } else if let Some(s) = self.sessions.remove(wire_id) {
                    if let Some(hub_id) = s.hub_id() {
                        // Nobody is left to receive results; discard.
                        let _ = self.hub.close_session(hub_id);
                    }
                }
            }
            self.conns[idx] = None;
        }
    }

    /// Discards detached sessions whose retention window elapsed, closing
    /// their hub sessions and retiring their wire ids.
    fn expire_detached(&mut self) {
        if self.config.resume_window.is_zero() {
            return;
        }
        for s in self
            .sessions
            .expire_detached(Instant::now(), self.config.resume_window)
        {
            if let Some(hub_id) = s.hub_id() {
                let _ = self.hub.close_session(hub_id);
            }
            self.stats.sessions_expired += 1;
        }
    }

    /// Writes as much of the outbox as the socket accepts.
    fn flush(&mut self, idx: usize) -> bool {
        let Some(conn) = self.conns[idx].as_mut() else {
            return false;
        };
        if conn.dead {
            return false;
        }
        let mut progress = false;
        while conn.sent < conn.outbox.len() {
            match conn.stream.write(&conn.outbox[conn.sent..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.sent += n;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.sent == conn.outbox.len() {
            conn.outbox.clear();
            conn.sent = 0;
        } else if conn.sent > 64 * 1024 {
            conn.outbox.drain(..conn.sent);
            conn.sent = 0;
        }
        progress
    }
}

impl std::fmt::Debug for Gateway<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("addr", &self.listener.local_addr().ok())
            .field("sessions", &self.sessions.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}
