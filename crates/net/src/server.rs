//! The gateway reactor: a single-threaded nonblocking TCP server that
//! terminates node connections and feeds the [`StreamHub`].
//!
//! ## Reactor
//!
//! [`Gateway::poll`] runs one sweep: accept pending connections, read every
//! socket until it would block, decode and handle frames, promote sessions
//! whose calibration stretch is complete, batch at most one pending chunk
//! per session into a single [`StreamHub::ingest`] call (so decode and
//! classification still fan out over `hbc-par`), forward freshly classified
//! beats, grant credit, evict idle sessions, park the sessions of dead
//! connections for resumption (and expire parked ones past the retention
//! window) and flush write buffers. [`Gateway::run`] loops `poll` until a
//! shutdown flag flips, then reports [`GatewayStats`].
//!
//! ## Credit-based flow control
//!
//! Every session holds a **credit budget** of `credit_budget` samples — the
//! most it may have sent but not yet had consumed by the hub. The budget is
//! granted in full at [`Frame::SessionOpened`]; as the hub consumes buffered
//! samples the gateway returns [`Frame::Credit`] grants. A compliant sender
//! therefore stalls when the gateway falls behind instead of ballooning its
//! buffers; a sender that overruns its credit hits the configurable
//! [`OverflowPolicy`]. Back-pressure composes through the write side too:
//! while a connection's outbox exceeds `max_outbox_bytes` (a slow *reader*),
//! the gateway stops consuming that connection's sessions — so no new
//! outcomes are produced, no credit is granted, and the sender stalls at its
//! budget while other sessions keep flowing. Gateway-side memory per session
//! stays bounded by the budget plus one in-flight chunk.
//!
//! ## Durable ingest log
//!
//! With [`GatewayConfig::wal`] set, every session open, every *accepted*
//! `Samples` chunk (post credit-truncation, as raw ADC codes) and every
//! session end is appended to an `hbc_wal` segment log **before** the data
//! reaches the hub. A gateway re-bound to the same log directory rebuilds
//! the state of every session that was open at the crash: the calibration
//! stretch is re-derived from the logged samples (same thresholds), the
//! whole logged stream is replayed through the hub in one parallel
//! [`StreamHub::ingest`] call (bit-identical outcomes, by chunk invariance),
//! and the session is parked in the detached table — the owning node
//! re-attaches with the ordinary [`Frame::ResumeSession`] flow, without
//! re-calibration and without resending what the gateway already has.
//!
//! ## Overload protection & self-supervision
//!
//! Credit bounds *one* session; this layer bounds the *gateway*:
//!
//! * **Admission control** — [`GatewayConfig::max_connections`],
//!   [`GatewayConfig::max_sessions`] (live + parked: a detached session
//!   still holds resources) and [`GatewayConfig::global_memory_budget`]
//!   (sample buffers of live and parked sessions, connection outboxes and
//!   the cached-report table, accounted in one ledger). Past a limit,
//!   [`Frame::OpenSession`] and fresh connections get [`Frame::Busy`] with
//!   a `retry_after_ms` hint instead of a silent accept.
//!   [`Frame::ResumeSession`] is admission-exempt: a parked session
//!   re-attaching is count-neutral, so recovery traffic is never locked out
//!   by the very overload that caused it.
//! * **Priority-aware shedding** — each streaming session's priority is
//!   refreshed from its recent outcome window (see
//!   [`SessionPriority`]): when accepting a frame would
//!   breach the global budget, the gateway first drops buffered telemetry
//!   of *normal-outcome* sessions (largest buffer first, live or parked),
//!   returning credit for the shed samples so their senders degrade instead
//!   of deadlocking. ARR-critical streams are shed last, so the safety
//!   invariant *abnormal ⇒ routed onward* survives overload.
//! * **Slow-peer defenses** — connections that never complete the
//!   session-level handshake within [`GatewayConfig::handshake_timeout`]
//!   are reaped, and established connections must make minimum progress
//!   per [`GatewayConfig::progress_interval`]: a trickle sender (bytes
//!   parked mid-frame in the decoder, reads below
//!   [`GatewayConfig::min_progress_bytes`]) or a frozen reader (queued
//!   outbox, zero write progress) is detached cleanly through the ordinary
//!   resume path.
//! * **Watchdog + health** — every sweep stamps a shared [`Heartbeat`];
//!   the run loop records the poll-latency high-water mark and counts
//!   sweeps over [`GatewayConfig::watchdog_budget`]
//!   ([`GatewayStats::watchdog_stalls`]), and [`Gateway::health`] snapshots
//!   budget utilization and the shed/deny counters for supervisors.
//!
//! ## Observability
//!
//! The reactor carries an `hbc-obs` telemetry substrate, cheap enough to
//! stay on in release builds and allocation-free in steady state: log2
//! latency histograms for sweeps, per-frame handling, batched hub ingests
//! and the headline **first-ADC-sample-to-outcome** path, plus a bounded
//! [`TraceRing`] of typed lifecycle events (opens, closes, detach/resume,
//! sheds, reaps, durable-log appends, hot-swaps, watchdog stalls).
//! [`Gateway::metrics_snapshot`] assembles every source — reactor, hub,
//! per-stage firmware timings and the durable log — into one
//! [`MetricsSnapshot`]; [`Gateway::trace_dump`] returns the retained
//! timeline. With [`GatewayConfig::admin_addr`] set, a second listener
//! serves the same data over HTTP: `GET /metrics` (Prometheus text),
//! `/metrics.json`, `/health` and `/trace`. Instrumentation never changes
//! outcomes: every classification path stays bit-identical with telemetry
//! enabled.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hbc_core::StreamHub;
use hbc_embedded::WbsnFirmware;
use hbc_obs::{Histogram, MetricsSnapshot, TraceEvent, TraceRecord, TraceRing};
use hbc_wal::{Wal, WalConfig, WalRecord};

use crate::proto::{
    Frame, FrameDecoder, WireOutcome, WireReport, MAX_SAMPLES_PER_FRAME, PROTOCOL_VERSION,
};
use crate::session::{NetSession, ResumeOutcome, SessionManager, SessionPhase, SessionPriority};

/// Bytes one buffered sample occupies gateway-side (sessions buffer
/// dequantized `f64`s).
const SAMPLE_BYTES: usize = std::mem::size_of::<f64>();

/// How many recent outcomes the priority refresh scans: one abnormal beat
/// in the window flags the session [`SessionPriority::Critical`]; a clean
/// window decays it back to [`SessionPriority::Normal`].
const PRIORITY_WINDOW: usize = 64;

/// What the gateway does to a sender that overruns its credit budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Send [`Frame::Deny`] and drop the connection (default: an overrun is
    /// a protocol violation).
    Disconnect,
    /// Accept up to the budget and silently drop the excess samples (the
    /// session's stream develops a gap; its own results degrade, nobody
    /// else's do).
    DropExcess,
}

/// Tunables of the gateway reactor.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Per-session credit budget in samples: the most a sender may have in
    /// flight (sent but not yet consumed by the hub).
    pub credit_budget: usize,
    /// Write-buffer cap per connection; beyond it the gateway stops
    /// consuming that connection's sessions (slow-reader back-pressure).
    pub max_outbox_bytes: usize,
    /// Sessions without any frame for longer than this are evicted (drained,
    /// reported, freed).
    pub idle_timeout: Duration,
    /// Credit-overrun policy.
    pub overflow: OverflowPolicy,
    /// Most samples one session feeds into the hub per reactor sweep; keeps
    /// single sweeps short so no session can monopolise the reactor.
    pub max_ingest_per_poll: usize,
    /// How long a session whose connection died stays resumable (calibrated
    /// thresholds + stream position parked for [`Frame::ResumeSession`]).
    /// `Duration::ZERO` disables retention: a dead connection discards its
    /// sessions immediately, as before protocol version 2. The window also
    /// bounds the final-report cache: a client whose link died *after* its
    /// `CloseSession` was processed can re-fetch the cached report within
    /// the same window.
    pub resume_window: Duration,
    /// Durable ingest log. `None` (the default) keeps the pre-log
    /// behaviour: a process crash loses every in-flight stream. With a
    /// config, accepted samples are appended to the segment log before
    /// ingestion and [`Gateway::bind`] recovers crashed sessions from it.
    pub wal: Option<WalConfig>,
    /// Most concurrent connections. Newcomers past the cap are answered
    /// with [`Frame::Busy`] and closed once it flushes; their slot frees
    /// immediately after.
    pub max_connections: usize,
    /// Most concurrent sessions, live **plus parked**: a detached session
    /// still holds buffers and a resume claim on the hub.
    /// [`Frame::OpenSession`] past the cap gets [`Frame::Busy`];
    /// [`Frame::ResumeSession`] is exempt (parked → live is count-neutral),
    /// so recovery is never locked out by the overload that caused it.
    pub max_sessions: usize,
    /// Global memory budget in bytes, accounted in one ledger: buffered
    /// samples of live and parked sessions, connection outboxes and the
    /// cached-report table. Opens whose calibration stretch no longer fits
    /// get [`Frame::Busy`]; accepted traffic that would breach the budget
    /// triggers priority-aware shedding first and drops the remainder of
    /// the incoming frame last (see [`GatewayStats::samples_shed`]).
    pub global_memory_budget: usize,
    /// The retry hint embedded in [`Frame::Busy`] responses; clients pause
    /// this long before retrying admission.
    pub busy_retry_after: Duration,
    /// Connections that have not completed a session-level handshake
    /// (open, resume or report re-fetch) within this deadline are reaped —
    /// a pre-session slot cannot be held open by a silent or trickling
    /// peer. `Duration::ZERO` disables the check.
    pub handshake_timeout: Duration,
    /// Length of one minimum-progress accounting interval for established
    /// connections (see [`GatewayConfig::min_progress_bytes`]).
    /// `Duration::ZERO` disables the check.
    pub progress_interval: Duration,
    /// A connection parking bytes mid-frame in its decoder that reads
    /// fewer than this many bytes over a whole progress interval is a
    /// trickle sender; a connection with a queued outbox and zero write
    /// progress over an interval is a frozen reader. Either is reaped and
    /// its sessions detach through the ordinary resume path.
    pub min_progress_bytes: usize,
    /// Reactor sweeps longer than this are counted as watchdog stalls
    /// ([`GatewayStats::watchdog_stalls`]) by the run loop.
    pub watchdog_budget: Duration,
    /// Optional admin listener address. When set, [`Gateway::bind`] opens a
    /// second (nonblocking) listener serving `GET /metrics` (Prometheus
    /// text exposition), `/metrics.json`, `/health` and `/trace` over
    /// HTTP/1.0 — a scrape surface that never mixes with the node protocol.
    /// Bind to port 0 and read [`Gateway::admin_addr`] for tests.
    pub admin_addr: Option<SocketAddr>,
    /// Capacity of the trace ring (older events are overwritten once the
    /// ring is full; [`TraceRing::dropped`] counts the overwrites).
    pub trace_capacity: usize,
    /// Length of one poll-latency accounting window for the *windowed*
    /// high-water mark ([`GatewayStats::poll_recent_high_water_micros`]):
    /// unlike the all-time [`GatewayStats::poll_high_water_micros`], the
    /// windowed figure decays, covering roughly the last two windows.
    /// `Duration::ZERO` disables rotation (the windowed figure then equals
    /// the all-time mark).
    pub poll_window: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            credit_budget: 1 << 16,
            max_outbox_bytes: 256 * 1024,
            idle_timeout: Duration::from_secs(30),
            overflow: OverflowPolicy::Disconnect,
            max_ingest_per_poll: 8192,
            resume_window: Duration::from_secs(30),
            wal: None,
            max_connections: 1024,
            max_sessions: 1024,
            global_memory_budget: 64 << 20,
            busy_retry_after: Duration::from_millis(250),
            handshake_timeout: Duration::from_secs(10),
            progress_interval: Duration::from_secs(30),
            min_progress_bytes: 1,
            watchdog_budget: Duration::from_secs(1),
            admin_addr: None,
            trace_capacity: 4096,
            poll_window: Duration::from_secs(10),
        }
    }
}

/// Counters the reactor maintains; returned by [`Gateway::run`] and readable
/// any time via [`Gateway::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames decoded from clients.
    pub frames_in: u64,
    /// Frames sent to clients.
    pub frames_out: u64,
    /// Samples accepted into session buffers.
    pub samples_in: u64,
    /// Samples discarded without entering a session buffer: overflow
    /// truncation under [`OverflowPolicy::DropExcess`], plus stragglers
    /// racing an asynchronous session end (eviction) under either policy.
    pub samples_dropped: u64,
    /// Beat outcomes forwarded to clients.
    pub beats_out: u64,
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions closed by request.
    pub sessions_closed: u64,
    /// Sessions evicted by the idle timeout.
    pub sessions_evicted: u64,
    /// Sessions parked for resume when their connection died.
    pub sessions_detached: u64,
    /// Sessions re-attached via [`Frame::ResumeSession`].
    pub sessions_resumed: u64,
    /// Detached sessions discarded because the retention window elapsed.
    pub sessions_expired: u64,
    /// Sessions rebuilt from the durable log at bind time (parked for
    /// resume).
    pub sessions_recovered: u64,
    /// Cached final reports re-served to clients whose connection died
    /// around their `CloseSession` (resume or retried close of an
    /// already-ended session).
    pub reports_refetched: u64,
    /// Durable-log append failures. A failure disables further logging for
    /// the gateway's lifetime (service continues undurably) — a non-zero
    /// count means the log on disk is a prefix of the accepted traffic.
    pub wal_errors: u64,
    /// Connections denied (handshake, protocol or credit violations).
    pub denials: u64,
    /// Largest number of samples ever buffered for a single session — the
    /// bounded-memory witness: for compliant senders it never exceeds
    /// [`GatewayConfig::credit_budget`].
    pub peak_buffered_samples: usize,
    /// Admission denials answered with [`Frame::Busy`] (connection cap,
    /// session cap or global memory budget). Distinct from
    /// [`GatewayStats::denials`]: a Busy peer did nothing wrong and is
    /// invited to retry.
    pub busy_denials: u64,
    /// Shed events: one per victim session whose buffered tail was dropped
    /// to stay inside the global memory budget.
    pub sheds: u64,
    /// Samples shed from buffered sessions (normal-priority first) to stay
    /// inside the global memory budget. Victims get their credit back, so
    /// their streams develop a gap instead of a deadlock.
    pub samples_shed: u64,
    /// Connections reaped for missing the pre-session handshake deadline
    /// ([`GatewayConfig::handshake_timeout`]).
    pub handshake_reaps: u64,
    /// Established connections reaped by the minimum-progress check
    /// (trickle senders and frozen readers); their sessions detach through
    /// the ordinary resume path.
    pub progress_reaps: u64,
    /// Sweeps that exceeded [`GatewayConfig::watchdog_budget`], as observed
    /// by the run loop.
    pub watchdog_stalls: u64,
    /// Worst sweep latency the run loop has observed, in microseconds —
    /// the poll-latency high-water mark.
    pub poll_high_water_micros: u64,
    /// Worst sweep latency over roughly the last two
    /// [`GatewayConfig::poll_window`]s, in microseconds — the *windowed*
    /// counterpart of [`GatewayStats::poll_high_water_micros`]: it decays
    /// once a slow sweep ages out, so a supervisor can tell a long-healed
    /// startup hiccup from an ongoing stall.
    pub poll_recent_high_water_micros: u64,
    /// Largest total of buffered sample bytes (live + parked sessions)
    /// ever held — the *global* bounded-memory witness alongside the
    /// per-session [`GatewayStats::peak_buffered_samples`].
    pub peak_buffered_bytes: usize,
    /// Internal invariant violations skipped at runtime (a listed session
    /// that vanished mid-sweep, a staged ingest the hub rejected, …).
    /// Debug builds panic at the offending site; release builds count here
    /// so the skips stay visible instead of silent.
    pub internal_skips: u64,
}

/// A cloneable liveness probe of the reactor, stamped at the start of every
/// sweep. Obtain one with [`Gateway::heartbeat`] *before* handing the
/// gateway to [`Gateway::run`]; a supervisor thread then detects a stalled
/// reactor (a poll iteration that never returns) from outside, instead of
/// inferring it from silence.
#[derive(Debug, Clone)]
pub struct Heartbeat {
    inner: Arc<HeartbeatInner>,
}

#[derive(Debug)]
struct HeartbeatInner {
    /// Anchor the beat offsets are measured from.
    epoch: Instant,
    /// Microseconds after `epoch` at which the latest sweep started.
    last_beat: AtomicU64,
    /// Sweeps begun.
    polls: AtomicU64,
}

impl Heartbeat {
    fn new() -> Self {
        Heartbeat {
            inner: Arc::new(HeartbeatInner {
                epoch: Instant::now(),
                last_beat: AtomicU64::new(0),
                polls: AtomicU64::new(0),
            }),
        }
    }

    /// Stamps the current instant; called by the reactor at the start of
    /// every sweep.
    fn beat(&self) {
        let micros = u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.inner.last_beat.store(micros, Ordering::Release);
        self.inner.polls.fetch_add(1, Ordering::Release);
    }

    /// Sweeps begun so far.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Acquire)
    }

    /// Whether the reactor has gone longer than `tolerance` without
    /// starting a sweep — including the case where it never started one.
    pub fn stalled(&self, tolerance: Duration) -> bool {
        let last = Duration::from_micros(self.inner.last_beat.load(Ordering::Acquire));
        self.inner.epoch.elapsed().saturating_sub(last) > tolerance
    }
}

/// A point-in-time health snapshot of a gateway, from [`Gateway::health`]:
/// everything a supervisor needs to decide whether the reactor is alive,
/// how close it is to its global memory budget, and whether overload
/// protections have been firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayHealth {
    /// Live wire sessions.
    pub live_sessions: usize,
    /// Sessions parked for resume.
    pub parked_sessions: usize,
    /// Open connections (including ones draining toward a close).
    pub connections: usize,
    /// Bytes of buffered samples across live and parked sessions.
    pub buffered_bytes: usize,
    /// Total currently charged against the global memory budget: buffered
    /// samples, connection outboxes and the cached-report table.
    pub memory_used: usize,
    /// The configured [`GatewayConfig::global_memory_budget`].
    pub memory_budget: usize,
    /// Worst sweep latency the run loop has observed.
    pub poll_high_water: Duration,
    /// Worst sweep latency over roughly the last two
    /// [`GatewayConfig::poll_window`]s (the decaying high-water mark).
    pub poll_recent_high_water: Duration,
    /// Sweeps that overran [`GatewayConfig::watchdog_budget`].
    pub watchdog_stalls: u64,
    /// Admission denials answered with [`Frame::Busy`].
    pub busy_denials: u64,
    /// Shed events so far.
    pub sheds: u64,
    /// Samples shed so far.
    pub samples_shed: u64,
    /// Durable-log append failures so far. Non-zero means the gateway gave
    /// up on the log and is running undurably (see
    /// [`GatewayStats::wal_errors`]).
    pub wal_errors: u64,
    /// Bytes the durable ingest log occupies on disk across its live
    /// segments, `0` when no log is configured (or it was disabled by an
    /// append failure).
    pub wal_log_bytes: u64,
    /// Whether the durable ingest log is still accepting appends.
    pub wal_active: bool,
}

impl GatewayHealth {
    /// Fraction of the global memory budget in use (may momentarily exceed
    /// 1.0 while a shed sweep is catching up).
    pub fn budget_utilization(&self) -> f64 {
        if self.memory_budget == 0 {
            return 0.0;
        }
        self.memory_used as f64 / self.memory_budget as f64
    }
}

struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbox: Vec<u8>,
    sent: usize,
    greeted: bool,
    /// Outbox still flushing, no further reads; reaped once drained.
    closing: bool,
    /// Socket gone; reaped immediately.
    dead: bool,
    /// When the connection was accepted; drives the pre-session handshake
    /// deadline.
    accepted_at: Instant,
    /// The connection completed a session-level handshake (opened, resumed
    /// or re-fetched a session) and graduated from the handshake deadline
    /// to the minimum-progress check.
    established: bool,
    /// Bytes read since the current progress interval began.
    read_since_check: usize,
    /// Outbox bytes flushed since the current progress interval began.
    wrote_since_check: usize,
    /// When the current minimum-progress interval began.
    checked_at: Instant,
}

impl Connection {
    fn queued(&self) -> usize {
        self.outbox.len() - self.sent
    }
}

/// A session that ended normally, kept for the retention window so a client
/// whose connection died around its `CloseSession` can re-fetch the final
/// report (and any outcomes it missed) instead of observing a denial.
#[derive(Debug)]
struct CompletedSession {
    wire_id: u32,
    patient_id: u32,
    /// The complete outcome history, for resending the tail a client lost.
    outcomes: Vec<WireOutcome>,
    report: WireReport,
    /// The session's final receive position (`next_seq` at close).
    final_seq: u32,
    /// When the session ended; drives cache expiry (same window as resume).
    since: Instant,
}

/// The gateway's telemetry state: latency histograms, the bounded trace
/// ring and the rotation bookkeeping behind the windowed poll high-water
/// mark. Everything here is fixed-size after construction; recording is
/// allocation-free.
struct GatewayObs {
    /// Latency of every run-loop sweep, in microseconds.
    sweep_micros: Histogram,
    /// Latency of each handled frame, in microseconds.
    frame_micros: Histogram,
    /// Latency of each batched [`StreamHub::ingest`] call issued by the
    /// sweep, in microseconds.
    ingest_batch_micros: Histogram,
    /// The headline first-ADC-sample-to-outcome latency, in microseconds:
    /// from the arrival of the oldest sample buffered for a session to the
    /// sweep that forwarded the outcomes its chunk produced.
    beat_to_outcome_micros: Histogram,
    /// Bounded ring of typed reactor events.
    trace: TraceRing,
    /// When the current poll-latency window began.
    window_started: Instant,
    /// Worst sweep latency inside the current window, in microseconds.
    window_max_micros: u64,
    /// Worst sweep latency of the previous (complete) window.
    prev_window_max_micros: u64,
}

impl GatewayObs {
    fn new(trace_capacity: usize) -> Self {
        GatewayObs {
            sweep_micros: Histogram::new(),
            frame_micros: Histogram::new(),
            ingest_batch_micros: Histogram::new(),
            beat_to_outcome_micros: Histogram::new(),
            trace: TraceRing::new(trace_capacity),
            window_started: Instant::now(),
            window_max_micros: 0,
            prev_window_max_micros: 0,
        }
    }
}

/// One in-flight exchange on the admin listener: read an HTTP request
/// until its request line is complete, write one response, flush, close.
struct AdminConn {
    stream: TcpStream,
    inbox: Vec<u8>,
    outbox: Vec<u8>,
    sent: usize,
    /// The response is built; only flushing remains.
    responding: bool,
    dead: bool,
}

/// Extracts the method and path from the first request line, once a whole
/// line has arrived.
fn admin_request_line(inbox: &[u8]) -> Option<(String, String)> {
    let line_end = inbox.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&inbox[..line_end]).ok()?;
    let mut parts = line.trim_end_matches('\r').split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    Some((method, path))
}

/// Everything [`Gateway::run_with_report`] hands back at shutdown: the
/// reactor counters, a final [`MetricsSnapshot`] and the retained trace
/// timeline.
#[derive(Debug, Clone)]
pub struct GatewayReport {
    /// Final reactor counters (what [`Gateway::run`] alone returns).
    pub stats: GatewayStats,
    /// Final metrics snapshot, as [`Gateway::metrics_snapshot`] would have
    /// produced it at the moment of shutdown.
    pub metrics: MetricsSnapshot,
    /// The retained trace timeline, oldest first.
    pub trace: Vec<TraceRecord>,
}

/// The TCP ingestion gateway: owns the listener, the connections and the
/// [`StreamHub`] every session streams into.
pub struct Gateway<'fw> {
    listener: TcpListener,
    hub: StreamHub<'fw>,
    fs_millihertz: u32,
    config: GatewayConfig,
    conns: Vec<Option<Connection>>,
    sessions: SessionManager,
    stats: GatewayStats,
    /// Reused per-sweep scratch listing the sessions with a staged chunk.
    staged: Vec<u32>,
    /// Durable ingest log, when configured. `None` after an append failure
    /// (see [`GatewayStats::wal_errors`]).
    wal: Option<Wal>,
    /// Final reports of recently ended sessions, keyed by resume token and
    /// expired on the resume window.
    completed: HashMap<u64, CompletedSession>,
    /// Wire-id → token index into [`Self::completed`], for retried closes.
    completed_by_wire: HashMap<u32, u64>,
    /// Incremental ledger of samples buffered across live **and** parked
    /// sessions — the sample-buffer share of the global memory budget,
    /// maintained at every mutation site and audited against
    /// [`SessionManager::total_buffered_samples`] in debug builds.
    buffered_samples: usize,
    /// Liveness probe stamped at the start of every sweep.
    heartbeat: Heartbeat,
    /// Telemetry: latency histograms, the trace ring and the poll-window
    /// rotation state.
    obs: GatewayObs,
    /// Optional admin listener serving metrics/health/trace over HTTP.
    admin: Option<TcpListener>,
    /// In-flight admin exchanges.
    admin_conns: Vec<AdminConn>,
}

impl<'fw> Gateway<'fw> {
    /// Binds the gateway and prepares a hub serving `firmware` sessions at
    /// sampling rate `fs`.
    ///
    /// With [`GatewayConfig::wal`] set, the durable log is opened (its
    /// directory created if needed), a torn tail from a previous crash is
    /// truncated away, and every session the log records as still open is
    /// rebuilt: thresholds re-derived from the logged calibration stretch,
    /// the logged stream replayed through the hub (bit-identical to the
    /// pre-crash ingestion) and the session parked for
    /// [`Frame::ResumeSession`] under its original token, wire id and
    /// stream position. [`GatewayStats::sessions_recovered`] counts the
    /// rebuilt sessions.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener and filesystem
    /// errors from opening the log. Corrupt log *content* is never an
    /// error: recovery keeps the valid prefix.
    pub fn bind(
        addr: impl ToSocketAddrs,
        firmware: &'fw WbsnFirmware,
        fs: f64,
        config: GatewayConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let fs_millihertz = (fs * 1000.0).round() as u32;
        let mut hub = StreamHub::new(firmware, fs);
        let mut sessions = SessionManager::new();
        let mut stats = GatewayStats::default();
        let wal = match &config.wal {
            Some(wal_config) => {
                let (wal, recovery) =
                    Wal::open(wal_config.clone()).map_err(std::io::Error::other)?;
                let recovered = recover_sessions(
                    &mut hub,
                    &mut sessions,
                    recovery.records,
                    fs_millihertz,
                    &mut stats,
                );
                stats.sessions_recovered = recovered;
                Some(wal)
            }
            None => None,
        };
        // Recovered sessions arrive with their replay buffers; seed the
        // global ledger from the recount so the budget sees them.
        let buffered_samples = sessions.total_buffered_samples();
        let mut obs = GatewayObs::new(config.trace_capacity);
        for token in sessions.detached_tokens() {
            if let Some(s) = sessions.detached_get(token) {
                obs.trace
                    .push(TraceEvent::SessionRecover { session: s.wire_id });
            }
        }
        let admin = match config.admin_addr {
            Some(addr) => {
                let admin = TcpListener::bind(addr)?;
                admin.set_nonblocking(true)?;
                Some(admin)
            }
            None => None,
        };
        Ok(Gateway {
            listener,
            hub,
            fs_millihertz,
            config,
            conns: Vec::new(),
            sessions,
            stats,
            staged: Vec::new(),
            wal,
            completed: HashMap::new(),
            completed_by_wire: HashMap::new(),
            buffered_samples,
            heartbeat: Heartbeat::new(),
            obs,
            admin,
            admin_conns: Vec::new(),
        })
    }

    /// Appends one record to the durable log. An append failure disables
    /// the log for the rest of the gateway's lifetime (counted in
    /// [`GatewayStats::wal_errors`]): the service keeps running, the log on
    /// disk stays a valid prefix of the accepted traffic.
    fn wal_log(&mut self, record: &WalRecord) {
        if let Some(wal) = self.wal.as_mut() {
            match wal.append(record) {
                Ok(bytes) => self.obs.trace.push(TraceEvent::WalAppend {
                    bytes: u32::try_from(bytes).unwrap_or(u32::MAX),
                }),
                Err(_) => {
                    self.stats.wal_errors += 1;
                    self.obs.trace.push(TraceEvent::WalError);
                    self.wal = None;
                }
            }
        }
    }

    /// The address the gateway listens on (use with port 0 binds).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Counters so far.
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    /// Live wire sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Sessions parked for resume (their connection died within the
    /// retention window).
    pub fn parked_sessions(&self) -> usize {
        self.sessions.detached_len()
    }

    /// Bytes currently charged against
    /// [`GatewayConfig::global_memory_budget`]: buffered samples of live
    /// and parked sessions, connection outboxes and the cached-report
    /// table — the gateway's one memory ledger.
    fn memory_used(&self) -> usize {
        let outboxes: usize = self.conns.iter().flatten().map(Connection::queued).sum();
        let completed: usize = self
            .completed
            .values()
            .map(|done| done.outcomes.len() * std::mem::size_of::<WireOutcome>())
            .sum();
        self.buffered_samples * SAMPLE_BYTES + outboxes + completed
    }

    /// A point-in-time health snapshot: session and connection counts,
    /// budget utilization, the poll-latency high-water mark and the
    /// overload counters.
    pub fn health(&self) -> GatewayHealth {
        GatewayHealth {
            live_sessions: self.sessions.len(),
            parked_sessions: self.sessions.detached_len(),
            connections: self.conns.iter().flatten().count(),
            buffered_bytes: self.buffered_samples * SAMPLE_BYTES,
            memory_used: self.memory_used(),
            memory_budget: self.config.global_memory_budget,
            poll_high_water: Duration::from_micros(self.stats.poll_high_water_micros),
            poll_recent_high_water: Duration::from_micros(self.recent_high_water_micros()),
            watchdog_stalls: self.stats.watchdog_stalls,
            busy_denials: self.stats.busy_denials,
            sheds: self.stats.sheds,
            samples_shed: self.stats.samples_shed,
            wal_errors: self.stats.wal_errors,
            wal_log_bytes: self.wal.as_ref().map_or(0, Wal::total_bytes),
            wal_active: self.wal.is_some(),
        }
    }

    /// The windowed poll-latency high-water mark: the worst sweep over the
    /// current and the previous [`GatewayConfig::poll_window`].
    fn recent_high_water_micros(&self) -> u64 {
        self.obs
            .window_max_micros
            .max(self.obs.prev_window_max_micros)
    }

    /// Feeds one sweep latency into the telemetry: the sweep histogram and
    /// the windowed high-water rotation.
    fn note_sweep(&mut self, micros: u64) {
        self.obs.sweep_micros.record(micros);
        let window = self.config.poll_window;
        if !window.is_zero() && self.obs.window_started.elapsed() > window {
            self.obs.prev_window_max_micros = self.obs.window_max_micros;
            self.obs.window_max_micros = 0;
            self.obs.window_started = Instant::now();
        }
        self.obs.window_max_micros = self.obs.window_max_micros.max(micros);
        self.stats.poll_recent_high_water_micros = self.recent_high_water_micros();
    }

    /// The reactor's liveness probe. Clone it out *before*
    /// [`Gateway::run`] consumes the gateway; every sweep stamps it, so a
    /// supervisor thread can ask [`Heartbeat::stalled`] whether the
    /// reactor has stopped sweeping.
    pub fn heartbeat(&self) -> Heartbeat {
        self.heartbeat.clone()
    }

    /// Runs the reactor until `shutdown` flips, then returns the final
    /// counters. Sleeps briefly on idle sweeps instead of spinning. Each
    /// sweep's latency feeds the watchdog: the high-water mark lands in
    /// [`GatewayStats::poll_high_water_micros`] and sweeps over
    /// [`GatewayConfig::watchdog_budget`] are counted as stalls, so a
    /// stalled iteration surfaces as diagnosable numbers rather than
    /// silence.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors only drop the
    /// affected connection.
    pub fn run(self, shutdown: &AtomicBool) -> std::io::Result<GatewayStats> {
        Ok(self.run_with_report(shutdown)?.stats)
    }

    /// Like [`Gateway::run`], but additionally returns the final
    /// [`MetricsSnapshot`] and the retained trace timeline — everything a
    /// harness needs to inspect the telemetry of a gateway it just shut
    /// down, without racing the reactor for it while it was live.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors only drop the
    /// affected connection.
    pub fn run_with_report(mut self, shutdown: &AtomicBool) -> std::io::Result<GatewayReport> {
        while !shutdown.load(Ordering::Acquire) {
            let sweep_started = Instant::now();
            let progress = self.poll()?;
            let latency = sweep_started.elapsed();
            let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
            self.stats.poll_high_water_micros = self.stats.poll_high_water_micros.max(micros);
            self.note_sweep(micros);
            if latency > self.config.watchdog_budget {
                self.stats.watchdog_stalls += 1;
                self.obs.trace.push(TraceEvent::WatchdogStall { micros });
            }
            if !progress {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
        let metrics = self.metrics_snapshot();
        let trace = self.obs.trace.dump();
        Ok(GatewayReport {
            stats: self.stats,
            metrics,
            trace,
        })
    }

    /// The admin listener's address, when [`GatewayConfig::admin_addr`] was
    /// set (use with port 0 binds).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The retained trace timeline, oldest first.
    pub fn trace_dump(&self) -> Vec<TraceRecord> {
        self.obs.trace.dump()
    }

    /// Hot-swaps the classification pipeline under every live and parked
    /// session (delegates to [`StreamHub::swap_pipeline`]; the swap lands
    /// on a beat boundary) and records the swap on the trace ring.
    ///
    /// # Errors
    ///
    /// Propagates the hub's compatibility check: the incoming image must
    /// share the deployed window geometry.
    pub fn swap_pipeline(&mut self, firmware: &'fw WbsnFirmware) -> hbc_core::Result<()> {
        self.hub.swap_pipeline(firmware)?;
        let sessions = self.sessions.len() + self.sessions.detached_len();
        self.obs.trace.push(TraceEvent::HotSwap {
            sessions: u32::try_from(sessions).unwrap_or(u32::MAX),
        });
        Ok(())
    }

    /// Assembles a point-in-time [`MetricsSnapshot`] from every telemetry
    /// source the gateway owns: the reactor counters and gauges, the
    /// reactor latency histograms (sweep, per-frame, batched ingest and the
    /// headline first-sample-to-outcome path), the hub's ingest-batch
    /// latency, the per-stage firmware timings aggregated across every
    /// session the hub has served, and the durable-log metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let s = &self.stats;
        let health = self.health();
        snap.push_counter(
            "hbc_gateway_connections_total",
            "Connections accepted.",
            s.connections,
        );
        snap.push_counter(
            "hbc_gateway_frames_in_total",
            "Frames decoded from clients.",
            s.frames_in,
        );
        snap.push_counter(
            "hbc_gateway_frames_out_total",
            "Frames sent to clients.",
            s.frames_out,
        );
        snap.push_counter(
            "hbc_gateway_samples_in_total",
            "Samples accepted into session buffers.",
            s.samples_in,
        );
        snap.push_counter(
            "hbc_gateway_samples_dropped_total",
            "Samples discarded without entering a session buffer.",
            s.samples_dropped,
        );
        snap.push_counter(
            "hbc_gateway_beats_out_total",
            "Beat outcomes forwarded to clients.",
            s.beats_out,
        );
        snap.push_counter(
            "hbc_gateway_sessions_opened_total",
            "Sessions opened.",
            s.sessions_opened,
        );
        snap.push_counter(
            "hbc_gateway_sessions_closed_total",
            "Sessions closed by request.",
            s.sessions_closed,
        );
        snap.push_counter(
            "hbc_gateway_sessions_evicted_total",
            "Sessions evicted by the idle timeout.",
            s.sessions_evicted,
        );
        snap.push_counter(
            "hbc_gateway_sessions_detached_total",
            "Sessions parked for resume when their connection died.",
            s.sessions_detached,
        );
        snap.push_counter(
            "hbc_gateway_sessions_resumed_total",
            "Sessions re-attached via ResumeSession.",
            s.sessions_resumed,
        );
        snap.push_counter(
            "hbc_gateway_sessions_expired_total",
            "Detached sessions dropped at the end of the retention window.",
            s.sessions_expired,
        );
        snap.push_counter(
            "hbc_gateway_sessions_recovered_total",
            "Sessions rebuilt from the durable log at bind time.",
            s.sessions_recovered,
        );
        snap.push_counter(
            "hbc_gateway_reports_refetched_total",
            "Cached final reports re-served after a lost link.",
            s.reports_refetched,
        );
        snap.push_counter(
            "hbc_gateway_denials_total",
            "Connections denied (handshake, protocol or credit violations).",
            s.denials,
        );
        snap.push_counter(
            "hbc_gateway_busy_denials_total",
            "Admission denials answered with Busy.",
            s.busy_denials,
        );
        snap.push_counter(
            "hbc_gateway_sheds_total",
            "Shed events under the global memory budget.",
            s.sheds,
        );
        snap.push_counter(
            "hbc_gateway_samples_shed_total",
            "Samples shed from buffered sessions under the memory budget.",
            s.samples_shed,
        );
        snap.push_counter(
            "hbc_gateway_handshake_reaps_total",
            "Connections reaped at the pre-session handshake deadline.",
            s.handshake_reaps,
        );
        snap.push_counter(
            "hbc_gateway_progress_reaps_total",
            "Connections reaped by the minimum-progress check.",
            s.progress_reaps,
        );
        snap.push_counter(
            "hbc_gateway_watchdog_stalls_total",
            "Sweeps that exceeded the watchdog budget.",
            s.watchdog_stalls,
        );
        snap.push_counter(
            "hbc_gateway_wal_errors_total",
            "Durable-log append failures (the log disables itself on the first).",
            s.wal_errors,
        );
        snap.push_counter(
            "hbc_gateway_internal_skips_total",
            "Internal invariant violations skipped at runtime.",
            s.internal_skips,
        );
        snap.push_counter(
            "hbc_gateway_trace_events_total",
            "Events ever pushed onto the trace ring.",
            self.obs.trace.recorded(),
        );
        snap.push_counter(
            "hbc_gateway_trace_events_dropped_total",
            "Trace events lost to ring overwrites.",
            self.obs.trace.dropped(),
        );
        snap.push_gauge(
            "hbc_gateway_live_sessions",
            "Live wire sessions.",
            health.live_sessions as f64,
        );
        snap.push_gauge(
            "hbc_gateway_parked_sessions",
            "Sessions parked for resume.",
            health.parked_sessions as f64,
        );
        snap.push_gauge(
            "hbc_gateway_open_connections",
            "Open connections, including ones draining toward a close.",
            health.connections as f64,
        );
        snap.push_gauge(
            "hbc_gateway_buffered_bytes",
            "Bytes of buffered samples across live and parked sessions.",
            health.buffered_bytes as f64,
        );
        snap.push_gauge(
            "hbc_gateway_memory_used_bytes",
            "Bytes charged against the global memory budget.",
            health.memory_used as f64,
        );
        snap.push_gauge(
            "hbc_gateway_memory_budget_bytes",
            "The configured global memory budget.",
            health.memory_budget as f64,
        );
        snap.push_gauge(
            "hbc_gateway_budget_utilization",
            "Fraction of the global memory budget in use.",
            health.budget_utilization(),
        );
        snap.push_gauge(
            "hbc_gateway_peak_buffered_samples",
            "Largest per-session sample buffer ever observed.",
            s.peak_buffered_samples as f64,
        );
        snap.push_gauge(
            "hbc_gateway_peak_buffered_bytes",
            "Largest total of buffered sample bytes ever observed.",
            s.peak_buffered_bytes as f64,
        );
        snap.push_gauge(
            "hbc_gateway_poll_high_water_micros",
            "Worst sweep latency ever observed, in microseconds.",
            s.poll_high_water_micros as f64,
        );
        snap.push_gauge(
            "hbc_gateway_poll_recent_high_water_micros",
            "Worst sweep latency over roughly the last two poll windows.",
            s.poll_recent_high_water_micros as f64,
        );
        snap.push_gauge(
            "hbc_gateway_wal_log_bytes",
            "Bytes the durable ingest log occupies across its segments.",
            health.wal_log_bytes as f64,
        );
        snap.push_gauge(
            "hbc_gateway_wal_active",
            "Whether the durable log is still accepting appends (1/0).",
            if health.wal_active { 1.0 } else { 0.0 },
        );
        snap.push_histogram(
            "hbc_gateway_sweep_micros",
            "Latency of one reactor sweep, in microseconds.",
            &self.obs.sweep_micros,
        );
        snap.push_histogram(
            "hbc_gateway_frame_micros",
            "Latency of handling one decoded frame, in microseconds.",
            &self.obs.frame_micros,
        );
        snap.push_histogram(
            "hbc_gateway_ingest_batch_micros",
            "Latency of one batched hub ingest issued by the sweep.",
            &self.obs.ingest_batch_micros,
        );
        snap.push_histogram(
            "hbc_gateway_beat_to_outcome_micros",
            "First-ADC-sample-to-outcome latency, in microseconds.",
            &self.obs.beat_to_outcome_micros,
        );
        snap.push_histogram(
            "hbc_hub_ingest_micros",
            "Latency of one parallel StreamHub ingest call.",
            &self.hub.ingest_latency(),
        );
        let stages = self.hub.stage_metrics();
        snap.push_histogram(
            "hbc_stage_conditioning_nanos",
            "Per-chunk signal-conditioning time, in nanoseconds.",
            &stages.conditioning_nanos,
        );
        snap.push_histogram(
            "hbc_stage_projection_nanos",
            "Per-beat window preparation plus random projection time.",
            &stages.projection_nanos,
        );
        snap.push_histogram(
            "hbc_stage_classify_nanos",
            "Per-beat classifier scoring time, in nanoseconds.",
            &stages.classify_nanos,
        );
        snap.push_histogram(
            "hbc_stage_delineation_nanos",
            "Per-abnormal-beat delineation time, in nanoseconds.",
            &stages.delineation_nanos,
        );
        if let Some(wal) = &self.wal {
            let m = wal.metrics();
            snap.push_counter(
                "hbc_wal_appends_total",
                "Records appended to the durable log.",
                m.appends.get(),
            );
            snap.push_counter(
                "hbc_wal_appended_bytes_total",
                "Encoded bytes appended to the durable log.",
                m.appended_bytes.get(),
            );
            snap.push_counter(
                "hbc_wal_syncs_total",
                "Explicit fsyncs of the durable log.",
                m.syncs.get(),
            );
            snap.push_histogram(
                "hbc_wal_append_nanos",
                "Latency of one durable-log append, in nanoseconds.",
                &m.append_nanos,
            );
            snap.push_histogram(
                "hbc_wal_sync_nanos",
                "Latency of one durable-log fsync, in nanoseconds.",
                &m.sync_nanos,
            );
        }
        snap
    }

    /// One reactor sweep; returns whether any progress was made (bytes
    /// moved, frames handled, samples ingested). Stamps the [`Heartbeat`]
    /// on entry.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors.
    pub fn poll(&mut self) -> std::io::Result<bool> {
        self.heartbeat.beat();
        let mut progress = self.accept_new()?;
        progress |= self.serve_admin();
        for idx in 0..self.conns.len() {
            progress |= self.service_reads(idx);
        }
        progress |= self.ingest_sweep();
        progress |= self.forward_outcomes_and_credit();
        self.evict_idle();
        self.reap_slow_peers();
        self.reap();
        self.expire_detached();
        for idx in 0..self.conns.len() {
            progress |= self.flush(idx);
        }
        debug_assert_eq!(
            self.buffered_samples,
            self.sessions.total_buffered_samples(),
            "global buffered-sample ledger out of sync"
        );
        Ok(progress)
    }

    fn accept_new(&mut self) -> std::io::Result<bool> {
        let mut accepted = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    let now = Instant::now();
                    let conn = Connection {
                        stream,
                        decoder: FrameDecoder::new(),
                        outbox: Vec::new(),
                        sent: 0,
                        greeted: false,
                        closing: false,
                        dead: false,
                        accepted_at: now,
                        established: false,
                        read_since_check: 0,
                        wrote_since_check: 0,
                        checked_at: now,
                    };
                    let idx = match self.conns.iter().position(Option::is_none) {
                        Some(i) => {
                            self.conns[i] = Some(conn);
                            i
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.conns.len() - 1
                        }
                    };
                    self.stats.connections += 1;
                    accepted = true;
                    // Admission: past the connection cap the newcomer gets
                    // a Busy hint and a flush-then-close, so its slot frees
                    // as soon as the hint drains.
                    let live = self.conns.iter().flatten().filter(|c| !c.dead).count();
                    if live > self.config.max_connections {
                        self.busy(idx);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(accepted)
    }

    /// Reads one connection until it would block (bounded per sweep) and
    /// handles every complete frame.
    fn service_reads(&mut self, idx: usize) -> bool {
        const READ_BUDGET: usize = 256 * 1024;
        let Some(conn) = self.conns[idx].as_mut() else {
            return false;
        };
        if conn.closing || conn.dead {
            return false;
        }
        let mut buf = [0u8; 16 * 1024];
        let mut taken = 0usize;
        let mut eof = false;
        while taken < READ_BUDGET {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.feed(&buf[..n]);
                    conn.read_since_check = conn.read_since_check.saturating_add(n);
                    taken += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        let mut frames = Vec::new();
        let mut violation = None;
        loop {
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) => {
                    violation = Some(format!("protocol error: {e}"));
                    break;
                }
            }
        }
        let progress = taken > 0 || !frames.is_empty();
        self.stats.frames_in += frames.len() as u64;
        for frame in frames {
            // A denial ends the conversation: one Deny goes out and the
            // rest of the batch is dropped, instead of one Deny per
            // already-buffered frame.
            if self.conns[idx].as_ref().is_none_or(|c| c.closing || c.dead) {
                break;
            }
            let frame_started = Instant::now();
            self.handle_frame(idx, frame);
            self.obs
                .frame_micros
                .record(u64::try_from(frame_started.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        if let Some(message) = violation {
            self.deny(idx, &message);
        }
        if eof {
            // EOF only closes the peer's *write* side (a client may
            // half-close after its last frame and still read replies), so
            // frames that arrived with it were handled above and the
            // connection now drains its outbox before being reaped.
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.closing = true;
            }
        }
        progress
    }

    /// Queues a frame on a connection's outbox.
    fn send(&mut self, idx: usize, frame: &Frame) {
        if let Some(conn) = self.conns[idx].as_mut() {
            if !conn.dead {
                frame.encode_into(&mut conn.outbox);
                self.stats.frames_out += 1;
            }
        }
    }

    /// Sends [`Frame::Deny`] and marks the connection for a flush-then-close.
    fn deny(&mut self, idx: usize, message: &str) {
        self.stats.denials += 1;
        self.obs.trace.push(TraceEvent::Deny);
        self.send(
            idx,
            &Frame::Deny {
                message: message.to_string(),
            },
        );
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.closing = true;
        }
    }

    /// Sends [`Frame::Busy`] — the admission-control "come back later" —
    /// and marks the connection for a flush-then-close. Unlike a denial,
    /// the peer did nothing wrong and may retry after the embedded pause.
    fn busy(&mut self, idx: usize) {
        self.stats.busy_denials += 1;
        let retry_after_ms =
            u32::try_from(self.config.busy_retry_after.as_millis()).unwrap_or(u32::MAX);
        self.obs.trace.push(TraceEvent::Busy { retry_after_ms });
        self.send(idx, &Frame::Busy { retry_after_ms });
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.closing = true;
        }
    }

    /// Records that a connection completed a session-level handshake,
    /// graduating it from the handshake deadline to the minimum-progress
    /// check.
    fn mark_established(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.established = true;
        }
    }

    fn handle_frame(&mut self, idx: usize, frame: Frame) {
        let greeted = self.conns[idx].as_ref().is_some_and(|c| c.greeted);
        if !greeted {
            match frame {
                Frame::Hello { version } if version == PROTOCOL_VERSION => {
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.greeted = true;
                    }
                    self.send(
                        idx,
                        &Frame::Hello {
                            version: PROTOCOL_VERSION,
                        },
                    );
                }
                Frame::Hello { version } => {
                    self.deny(idx, &format!("unsupported protocol version {version}"));
                }
                _ => self.deny(idx, "expected Hello first"),
            }
            return;
        }
        match frame {
            Frame::Hello { .. } => self.deny(idx, "duplicate Hello"),
            Frame::OpenSession {
                patient_id,
                fs_millihertz,
                calib_len,
            } => self.open_session(idx, patient_id, fs_millihertz, calib_len),
            Frame::Samples {
                session,
                seq,
                samples,
            } => self.accept_samples(idx, session, seq, &samples),
            Frame::ResumeSession {
                patient_id,
                session_token,
                last_acked_seq,
                outcomes_received,
            } => self.resume_session(
                idx,
                patient_id,
                session_token,
                last_acked_seq,
                outcomes_received,
            ),
            Frame::CloseSession { session } => {
                if self.sessions.get(session).is_some_and(|s| s.conn == idx) {
                    self.close_wire_session(session, false);
                } else if let Some(report) = self
                    .completed_by_wire
                    .get(&session)
                    .and_then(|token| self.completed.get(token))
                    .map(|done| done.report)
                {
                    // The session already ended and the client retried its
                    // close (its link died before the Report arrived):
                    // re-serve the cached report so CloseSession stays
                    // idempotent within the retention window.
                    self.mark_established(idx);
                    self.stats.reports_refetched += 1;
                    self.send(idx, &Frame::Report { session, report });
                } else if self.sessions.is_retired(session) {
                    // Ends are asynchronous (idle eviction): a compliant
                    // client can race its close against the gateway's
                    // Report. The session is gone and reported; ignore.
                } else {
                    self.deny(idx, &format!("close of unknown session {session}"));
                }
            }
            // Server-only frames arriving at the server are violations.
            Frame::SessionOpened { .. }
            | Frame::SessionResumed { .. }
            | Frame::Credit { .. }
            | Frame::Outcomes { .. }
            | Frame::Report { .. }
            | Frame::Busy { .. } => self.deny(idx, "client sent a gateway-only frame"),
            Frame::Deny { message } => {
                // A client may announce why it is leaving; drop it politely.
                let _ = message;
                if let Some(conn) = self.conns[idx].as_mut() {
                    conn.closing = true;
                }
            }
        }
    }

    fn open_session(&mut self, idx: usize, patient_id: u32, fs_millihertz: u32, calib_len: u32) {
        if fs_millihertz != self.fs_millihertz {
            self.deny(
                idx,
                &format!(
                    "sampling rate {fs_millihertz} mHz does not match the gateway's {}",
                    self.fs_millihertz
                ),
            );
            return;
        }
        let calib_len = calib_len as usize;
        if calib_len == 0 || calib_len > self.config.credit_budget {
            self.deny(
                idx,
                &format!(
                    "calibration length {calib_len} outside (0, {}]",
                    self.config.credit_budget
                ),
            );
            return;
        }
        // A calibration stretch that alone exceeds the global memory
        // budget could never be buffered, let alone replayed from the
        // durable log at recovery: a hard denial, not a Busy retry hint —
        // no amount of waiting makes this request admissible.
        if calib_len * SAMPLE_BYTES > self.config.global_memory_budget {
            self.deny(
                idx,
                &format!(
                    "calibration length {calib_len} alone exceeds the gateway's memory budget"
                ),
            );
            return;
        }
        // Admission control. Parked sessions count against the cap — a
        // detached stream still holds buffers and a resume claim — but
        // ResumeSession itself is exempt (parked → live is count-neutral).
        if self.sessions.len() + self.sessions.detached_len() >= self.config.max_sessions {
            self.busy(idx);
            return;
        }
        if self.memory_used() + calib_len * SAMPLE_BYTES > self.config.global_memory_budget {
            self.busy(idx);
            return;
        }
        let wire_id = self
            .sessions
            .open(idx, patient_id, calib_len, Instant::now());
        let Some(token) = self.sessions.get(wire_id).map(|s| s.token) else {
            self.stats.internal_skips += 1;
            debug_assert!(false, "session {wire_id} vanished right after open");
            self.deny(idx, "internal session error");
            return;
        };
        self.mark_established(idx);
        self.stats.sessions_opened += 1;
        self.obs.trace.push(TraceEvent::SessionOpen {
            session: wire_id,
            patient: patient_id,
        });
        self.wal_log(&WalRecord::SessionOpen {
            token,
            wire_id,
            patient_id,
            calib_len: calib_len as u32,
            fs_millihertz,
        });
        self.send(
            idx,
            &Frame::SessionOpened {
                session: wire_id,
                credit: self.config.credit_budget as u32,
                token,
            },
        );
    }

    /// Re-attaches a parked (or takeover) session to connection `idx` and
    /// tells the client where to restart: the gateway's own receive
    /// position is authoritative, the client's `last_acked_seq` is only a
    /// cross-check, and `outcomes_received` rewinds outcome forwarding so
    /// beats that were in flight when the link died are sent again instead
    /// of leaving a gap.
    fn resume_session(
        &mut self,
        idx: usize,
        patient_id: u32,
        token: u64,
        last_acked_seq: u32,
        outcomes_received: u64,
    ) {
        if self.config.resume_window.is_zero() {
            self.deny(idx, "session resumption is disabled on this gateway");
            return;
        }
        if let Some(done) = self.completed.get(&token) {
            // The session already ended; only the client's copy of the end
            // was lost with its link. Re-serve the outcome tail and the
            // final report instead of denying, so a connection that died
            // around `CloseSession` still converges.
            let owner = done.patient_id;
            let wire_id = done.wire_id;
            let final_seq = done.final_seq;
            let from = (outcomes_received as usize).min(done.outcomes.len());
            let tail = done.outcomes[from..].to_vec();
            let report = done.report;
            if owner != patient_id {
                self.deny(
                    idx,
                    &format!("resume token does not belong to patient {patient_id}"),
                );
                return;
            }
            self.mark_established(idx);
            self.stats.reports_refetched += 1;
            self.send(
                idx,
                &Frame::SessionResumed {
                    session: wire_id,
                    next_expected_seq: final_seq,
                    credit: 0,
                },
            );
            for chunk in tail.chunks(512) {
                self.send(
                    idx,
                    &Frame::Outcomes {
                        session: wire_id,
                        outcomes: chunk.to_vec(),
                    },
                );
            }
            self.send(
                idx,
                &Frame::Report {
                    session: wire_id,
                    report,
                },
            );
            return;
        }
        match self.sessions.resume(token, patient_id, idx, Instant::now()) {
            ResumeOutcome::Resumed(wire_id) => {
                let budget = self.config.credit_budget;
                let Some(received) = self.sessions.get(wire_id).map(|s| s.next_seq) else {
                    self.stats.internal_skips += 1;
                    debug_assert!(false, "session {wire_id} vanished right after resume");
                    self.deny(idx, "internal session error");
                    return;
                };
                if last_acked_seq > received {
                    self.deny(
                        idx,
                        &format!(
                            "resume claims {last_acked_seq} acked sample frames, gateway received {received}"
                        ),
                    );
                    return;
                }
                let Some(s) = self.sessions.get_mut(wire_id) else {
                    self.stats.internal_skips += 1;
                    debug_assert!(false, "session {wire_id} vanished right after resume");
                    self.deny(idx, "internal session error");
                    return;
                };
                // The client cannot have received more outcomes than were
                // ever forwarded; a smaller claim rewinds (resend), never
                // a skip.
                s.outcomes_sent = (outcomes_received as usize).min(s.outcomes_sent);
                // Credit restarts as an absolute figure: budget minus what
                // is still buffered gateway-side for this session.
                s.consumed_since_grant = 0;
                let credit = budget.saturating_sub(s.buffered()) as u32;
                let next_expected_seq = s.next_seq;
                self.mark_established(idx);
                self.stats.sessions_resumed += 1;
                self.obs
                    .trace
                    .push(TraceEvent::SessionResume { session: wire_id });
                self.send(
                    idx,
                    &Frame::SessionResumed {
                        session: wire_id,
                        next_expected_seq,
                        credit,
                    },
                );
            }
            ResumeOutcome::UnknownToken => {
                self.deny(idx, "unknown or expired resume token");
            }
            ResumeOutcome::WrongPatient => {
                self.deny(
                    idx,
                    &format!("resume token does not belong to patient {patient_id}"),
                );
            }
        }
    }

    fn accept_samples(&mut self, idx: usize, session: u32, seq: u32, samples: &[i16]) {
        let budget = self.config.credit_budget;
        let overflow = self.config.overflow;
        let Some(s) = self.sessions.get_mut(session) else {
            if self.sessions.is_retired(session) {
                // Samples racing an asynchronous end (eviction): the sender
                // has a Report on the wire telling it to stop; drop the
                // stragglers, keep the connection.
                self.stats.samples_dropped += samples.len() as u64;
            } else {
                self.deny(idx, &format!("samples for unknown session {session}"));
            }
            return;
        };
        if s.conn != idx {
            self.deny(
                idx,
                &format!("session {session} belongs to another connection"),
            );
            return;
        }
        if seq != s.next_seq {
            let expected = s.next_seq;
            self.deny(
                idx,
                &format!("sample frame gap: got seq {seq}, expected {expected}"),
            );
            return;
        }
        if samples.len() > MAX_SAMPLES_PER_FRAME {
            self.deny(idx, "sample frame exceeds MAX_SAMPLES_PER_FRAME");
            return;
        }
        s.next_seq += 1;
        s.last_activity = Instant::now();
        let token = s.token;
        let room = budget.saturating_sub(s.buffered());
        let accepted = if samples.len() > room {
            match overflow {
                OverflowPolicy::Disconnect => {
                    self.deny(
                        idx,
                        &format!(
                            "credit exceeded: {} samples in flight + {} sent > budget {budget}",
                            budget - room,
                            samples.len()
                        ),
                    );
                    return;
                }
                OverflowPolicy::DropExcess => {
                    self.stats.samples_dropped += (samples.len() - room) as u64;
                    room
                }
            }
        } else {
            samples.len()
        };
        // Global-budget enforcement: shed buffered normal-priority
        // telemetry first (largest buffer first, live or parked); whatever
        // still does not fit — everything left is critical — is dropped
        // from the incoming frame instead, with credit returned either way
        // so the sender degrades (a stream gap) rather than deadlocking.
        let mut accepted = accepted;
        let mut dropped_at_budget = 0usize;
        let budget_bytes = self.config.global_memory_budget;
        let need = (self.memory_used() + accepted * SAMPLE_BYTES).saturating_sub(budget_bytes);
        if need > 0 {
            self.shed_samples(need.div_ceil(SAMPLE_BYTES));
            let still = (self.memory_used() + accepted * SAMPLE_BYTES).saturating_sub(budget_bytes);
            if still > 0 {
                dropped_at_budget = still.div_ceil(SAMPLE_BYTES).min(accepted);
                accepted -= dropped_at_budget;
                self.stats.samples_dropped += dropped_at_budget as u64;
            }
        }
        // Log before the samples become visible to the hub: on recovery the
        // log is always a superset of what was ingested, so the post-crash
        // replay can never be behind what the session already reported.
        if accepted > 0 && self.wal.is_some() {
            self.wal_log(&WalRecord::Samples {
                token,
                seq,
                codes: samples[..accepted].to_vec(),
            });
        }
        let Some(s) = self.sessions.get_mut(session) else {
            self.stats.internal_skips += 1;
            debug_assert!(false, "session {session} vanished mid-frame");
            return;
        };
        let adc = crate::proto::wire_adc();
        // Anchor the beat-to-outcome clock on the empty → non-empty
        // transition: the oldest buffered sample arrived now.
        if s.pending.is_empty() && accepted > 0 && s.oldest_pending_at.is_none() {
            s.oldest_pending_at = Some(Instant::now());
        }
        s.pending.extend(
            samples[..accepted]
                .iter()
                .map(|&c| adc.dequantize_sample(i32::from(c))),
        );
        s.samples_received += accepted as u64;
        s.consumed_since_grant += dropped_at_budget;
        self.buffered_samples += accepted;
        self.stats.samples_in += accepted as u64;
        self.stats.peak_buffered_samples = self.stats.peak_buffered_samples.max(s.buffered());
        self.stats.peak_buffered_bytes = self
            .stats
            .peak_buffered_bytes
            .max(self.buffered_samples * SAMPLE_BYTES);
    }

    /// Frees roughly `need` buffered samples by truncating the pending
    /// tails of normal-priority sessions, largest buffer first (live or
    /// parked, ties broken by wire id for a deterministic shed order);
    /// critical sessions are only shed once no normal victim remains.
    /// Live victims get the shed samples back as credit, so their senders
    /// observe a stream gap, not a stall.
    fn shed_samples(&mut self, mut need: usize) {
        for critical_pass in [false, true] {
            if need == 0 {
                return;
            }
            // (buffered, wire_id, live, key): live keys are wire ids,
            // parked keys are resume tokens.
            let mut victims: Vec<(usize, u32, bool, u64)> = Vec::new();
            for wire_id in self.sessions.ids() {
                let Some(s) = self.sessions.get(wire_id) else {
                    continue;
                };
                let critical = s.priority == SessionPriority::Critical;
                if critical == critical_pass && s.buffered() > 0 {
                    victims.push((s.buffered(), wire_id, true, u64::from(wire_id)));
                }
            }
            for token in self.sessions.detached_tokens() {
                let Some(s) = self.sessions.detached_get(token) else {
                    continue;
                };
                let critical = s.priority == SessionPriority::Critical;
                if critical == critical_pass && s.buffered() > 0 {
                    victims.push((s.buffered(), s.wire_id, false, token));
                }
            }
            victims.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            for (_, wire_id, live, key) in victims {
                if need == 0 {
                    return;
                }
                let s = if live {
                    self.sessions.get_mut(key as u32)
                } else {
                    self.sessions.detached_get_mut(key)
                };
                let Some(s) = s else {
                    continue;
                };
                let shed = s.pending.len().min(need);
                if shed == 0 {
                    continue;
                }
                s.pending.truncate(s.pending.len() - shed);
                if live {
                    s.consumed_since_grant += shed;
                }
                need -= shed;
                self.buffered_samples -= shed;
                self.stats.samples_shed += shed as u64;
                self.stats.sheds += 1;
                self.obs.trace.push(TraceEvent::Shed {
                    session: wire_id,
                    samples: u32::try_from(shed).unwrap_or(u32::MAX),
                });
            }
        }
    }

    /// Reaps slow peers: connections that never completed a session-level
    /// handshake within the deadline, trickle senders (bytes parked
    /// mid-frame, reads below the minimum over a whole progress interval)
    /// and frozen readers (queued outbox, zero write progress). Reaped
    /// connections are marked dead and their sessions detach through the
    /// ordinary resume path.
    fn reap_slow_peers(&mut self) {
        let now = Instant::now();
        let handshake = self.config.handshake_timeout;
        let interval = self.config.progress_interval;
        let min_bytes = self.config.min_progress_bytes;
        let mut handshake_reaps = 0u64;
        let mut progress_reaps = 0u64;
        for conn in self.conns.iter_mut().flatten() {
            if conn.dead || conn.closing {
                continue;
            }
            if !conn.established {
                if !handshake.is_zero() && now.duration_since(conn.accepted_at) > handshake {
                    conn.dead = true;
                    handshake_reaps += 1;
                    self.obs.trace.push(TraceEvent::ReapHandshake);
                }
                continue;
            }
            if interval.is_zero() || now.duration_since(conn.checked_at) < interval {
                continue;
            }
            // One whole progress interval has elapsed: judge it, then
            // start the next one.
            let trickling = conn.decoder.buffered() > 0 && conn.read_since_check < min_bytes;
            let frozen = conn.queued() > 0 && conn.wrote_since_check == 0;
            if trickling || frozen {
                conn.dead = true;
                progress_reaps += 1;
                self.obs.trace.push(TraceEvent::ReapStalled);
            }
            conn.read_since_check = 0;
            conn.wrote_since_check = 0;
            conn.checked_at = now;
        }
        self.stats.handshake_reaps += handshake_reaps;
        self.stats.progress_reaps += progress_reaps;
    }

    /// Promotes sessions whose calibration stretch is complete, then feeds
    /// at most one pending chunk per session into the hub with a single
    /// parallel [`StreamHub::ingest`] call.
    fn ingest_sweep(&mut self) -> bool {
        // Promotion: derive thresholds from the first `calib_len` samples
        // and create the hub session; the stretch stays in `pending` and is
        // replayed into the stream, like a node's start-up phase.
        for wire_id in self.sessions.ids() {
            let Some(s) = self.sessions.get_mut(wire_id) else {
                continue;
            };
            let SessionPhase::Calibrating { calib_len } = s.phase else {
                continue;
            };
            if s.pending.len() < calib_len {
                continue;
            }
            match self.hub.calibrate_thresholds(&s.pending[..calib_len]) {
                Ok(thresholds) => {
                    let hub = self.hub.add_patient(s.patient_id, thresholds);
                    let Some(s) = self.sessions.get_mut(wire_id) else {
                        self.stats.internal_skips += 1;
                        debug_assert!(false, "promoted session {wire_id} vanished");
                        continue;
                    };
                    s.phase = SessionPhase::Streaming { hub };
                }
                Err(_) => {
                    // A degenerate calibration stretch is a per-session
                    // failure: end *this* session with an empty Report
                    // (its samples counter tells the client how much was
                    // consumed for nothing) and leave the connection's
                    // other sessions untouched.
                    let conn = s.conn;
                    let token = s.token;
                    let samples = s.samples_received;
                    if let Some(removed) = self.sessions.remove(wire_id) {
                        self.buffered_samples -= removed.buffered();
                    }
                    self.wal_log(&WalRecord::SessionClose { token });
                    self.send(
                        conn,
                        &Frame::Report {
                            session: wire_id,
                            report: WireReport {
                                beats: 0,
                                forwarded: 0,
                                samples,
                            },
                        },
                    );
                    self.stats.sessions_closed += 1;
                    self.obs
                        .trace
                        .push(TraceEvent::SessionClose { session: wire_id });
                }
            }
        }

        // Stage one chunk per session. Sessions on connections whose outbox
        // is over the cap are skipped: no consumption, no credit — the
        // slow-reader stall.
        let now = Instant::now();
        let Gateway {
            hub,
            sessions,
            conns,
            config,
            staged,
            stats,
            buffered_samples,
            obs,
            ..
        } = self;
        staged.clear();
        for wire_id in sessions.ids() {
            let Some(s) = sessions.get_mut(wire_id) else {
                stats.internal_skips += 1;
                debug_assert!(false, "listed session {wire_id} vanished");
                continue;
            };
            if s.hub_id().is_none() || s.pending.is_empty() {
                continue;
            }
            let writable = conns[s.conn]
                .as_ref()
                .is_some_and(|c| !c.dead && c.queued() <= config.max_outbox_bytes);
            if !writable {
                continue;
            }
            let take = s.pending.len().min(config.max_ingest_per_poll);
            s.chunk.clear();
            s.chunk.extend(s.pending.drain(..take));
            // Carry the beat-to-outcome anchor with the staged chunk. An
            // earlier staged anchor (a chunk that has not produced a
            // forwarded outcome yet) wins: the clock runs from the oldest
            // unanswered sample. The arrival anchor only resets once the
            // buffer fully drains — a partial drain keeps it, which
            // over-estimates rather than hides queueing delay.
            s.staged_anchor = s.staged_anchor.or(s.oldest_pending_at);
            if s.pending.is_empty() {
                s.oldest_pending_at = None;
            }
            s.consumed_since_grant += take;
            // Staged samples leave the buffered ledger: from here they are
            // the one in-flight chunk, consumed this very sweep.
            *buffered_samples -= take;
            // Consumption counts as activity: a compliant sender stalled on
            // credit (because this gateway is the slow side) must not be
            // idle-evicted while its buffer is still being drained.
            s.last_activity = now;
            staged.push(wire_id);
        }
        if staged.is_empty() {
            return false;
        }
        let feeds: Vec<(hbc_core::SessionId, &[f64])> = staged
            .iter()
            .filter_map(|&wire_id| {
                let s = sessions.get(wire_id)?;
                Some((s.hub_id()?, s.chunk.as_slice()))
            })
            .collect();
        // Staged sessions are live, unique hub sessions by construction; a
        // rejection would mean the staging scan and the hub disagree about
        // liveness, and dropping the chunk beats poisoning the reactor.
        if !feeds.is_empty() {
            let ingest_started = Instant::now();
            let rejected = hub.ingest(&feeds).is_err();
            obs.ingest_batch_micros
                .record(u64::try_from(ingest_started.elapsed().as_micros()).unwrap_or(u64::MAX));
            if rejected {
                stats.internal_skips += 1;
                debug_assert!(false, "staged ingest rejected by the hub");
            }
        }
        true
    }

    /// Forwards freshly classified beats and grants credit for consumed
    /// samples.
    fn forward_outcomes_and_credit(&mut self) -> bool {
        let mut progress = false;
        for wire_id in self.sessions.ids() {
            let Some(s) = self.sessions.get(wire_id) else {
                continue;
            };
            let conn = s.conn;
            let Some(hub_id) = s.hub_id() else {
                continue;
            };
            let Ok(fresh) = self.hub.outcomes_since(hub_id, s.outcomes_sent) else {
                self.stats.internal_skips += 1;
                debug_assert!(false, "streaming session {wire_id} is not live in the hub");
                continue;
            };
            let grant = s.consumed_since_grant;
            // Refresh the shedding priority from the recent outcome
            // window: an abnormal beat protects the stream under overload,
            // and a clean window decays the protection again.
            let priority = match self.hub.recent_abnormal(hub_id, PRIORITY_WINDOW) {
                Ok(true) => SessionPriority::Critical,
                _ => SessionPriority::Normal,
            };
            if let Some(s) = self.sessions.get_mut(wire_id) {
                s.priority = priority;
            }
            if !fresh.is_empty() {
                let outcomes: Vec<WireOutcome> =
                    fresh.iter().map(WireOutcome::from_outcome).collect();
                let n = outcomes.len();
                self.send(
                    conn,
                    &Frame::Outcomes {
                        session: wire_id,
                        outcomes,
                    },
                );
                let Some(s) = self.sessions.get_mut(wire_id) else {
                    debug_assert!(false, "session {wire_id} vanished while forwarding");
                    continue;
                };
                s.outcomes_sent += n;
                // The headline metric: from the arrival of the oldest
                // sample behind these outcomes to the sweep forwarding
                // them. One record per forwarding event.
                if let Some(anchor) = s.staged_anchor.take() {
                    self.obs
                        .beat_to_outcome_micros
                        .record(u64::try_from(anchor.elapsed().as_micros()).unwrap_or(u64::MAX));
                }
                self.stats.beats_out += n as u64;
                progress = true;
            }
            if grant > 0 {
                let under_cap = self.conns[conn]
                    .as_ref()
                    .is_some_and(|c| !c.dead && c.queued() <= self.config.max_outbox_bytes);
                if under_cap {
                    let acked_seq = self.sessions.get(wire_id).map_or(0, |s| s.next_seq);
                    self.send(
                        conn,
                        &Frame::Credit {
                            session: wire_id,
                            grant: grant as u32,
                            acked_seq,
                        },
                    );
                    let Some(s) = self.sessions.get_mut(wire_id) else {
                        debug_assert!(false, "session {wire_id} vanished while granting");
                        continue;
                    };
                    s.consumed_since_grant = 0;
                    progress = true;
                }
            }
        }
        progress
    }

    fn evict_idle(&mut self) {
        for wire_id in self
            .sessions
            .idle_ids(Instant::now(), self.config.idle_timeout)
        {
            self.close_wire_session(wire_id, true);
        }
    }

    /// Ends a wire session: flushes its buffer into the hub, closes the hub
    /// session, sends any unforwarded beats plus the final report, logs the
    /// end to the durable log, and caches the report for the retention
    /// window so a client that loses its link around the close can still
    /// fetch the end of its session.
    fn close_wire_session(&mut self, wire_id: u32, evicted: bool) {
        let Some(mut s) = self.sessions.remove(wire_id) else {
            return;
        };
        // Off the books: whatever is still pending is drained into the hub
        // below and gone either way.
        self.buffered_samples -= s.buffered();
        // The close is durable before it is acknowledged: a gateway crash
        // after this point must not resurrect the session.
        self.wal_log(&WalRecord::SessionClose { token: s.token });
        // A close can arrive while the calibration stretch is still short;
        // calibrate on what exists (best effort — too short simply yields an
        // empty session).
        if s.hub_id().is_none() && !s.pending.is_empty() {
            let stretch = match s.phase {
                SessionPhase::Calibrating { calib_len } => calib_len.min(s.pending.len()),
                SessionPhase::Streaming { .. } => unreachable!("hub_id is None"),
            };
            if let Ok(thresholds) = self.hub.calibrate_thresholds(&s.pending[..stretch]) {
                let hub = self.hub.add_patient(s.patient_id, thresholds);
                s.phase = SessionPhase::Streaming { hub };
            }
        }
        let empty_report = WireReport {
            beats: 0,
            forwarded: 0,
            samples: s.samples_received,
        };
        let (report, history) = match s.hub_id() {
            Some(hub_id) => {
                if !s.pending.is_empty()
                    && self.hub.ingest(&[(hub_id, s.pending.as_slice())]).is_err()
                {
                    self.stats.internal_skips += 1;
                    debug_assert!(false, "closing session {wire_id} is not live in the hub");
                }
                match self.hub.close_session(hub_id) {
                    Ok(session_report) => {
                        let history: Vec<WireOutcome> = session_report
                            .outcomes
                            .iter()
                            .map(WireOutcome::from_outcome)
                            .collect();
                        let unsent = &history[s.outcomes_sent.min(history.len())..];
                        if !unsent.is_empty() {
                            self.stats.beats_out += unsent.len() as u64;
                            self.send(
                                s.conn,
                                &Frame::Outcomes {
                                    session: wire_id,
                                    outcomes: unsent.to_vec(),
                                },
                            );
                        }
                        (
                            WireReport {
                                beats: history.len() as u64,
                                forwarded: session_report.forwarded_beats as u64,
                                samples: s.samples_received,
                            },
                            history,
                        )
                    }
                    Err(_) => {
                        self.stats.internal_skips += 1;
                        debug_assert!(false, "closing session {wire_id} is not live in the hub");
                        (empty_report, Vec::new())
                    }
                }
            }
            None => (empty_report, Vec::new()),
        };
        self.send(
            s.conn,
            &Frame::Report {
                session: wire_id,
                report,
            },
        );
        if !self.config.resume_window.is_zero() {
            self.completed_by_wire.insert(wire_id, s.token);
            self.completed.insert(
                s.token,
                CompletedSession {
                    wire_id,
                    patient_id: s.patient_id,
                    outcomes: history,
                    report,
                    final_seq: s.next_seq,
                    since: Instant::now(),
                },
            );
        }
        if evicted {
            self.stats.sessions_evicted += 1;
            self.obs
                .trace
                .push(TraceEvent::SessionEvict { session: wire_id });
        } else {
            self.stats.sessions_closed += 1;
            self.obs
                .trace
                .push(TraceEvent::SessionClose { session: wire_id });
        }
    }

    /// Releases dead connections and closing connections whose outbox has
    /// drained. Their sessions are **detached** (parked for resume within
    /// the retention window) when retention is enabled, discarded otherwise.
    fn reap(&mut self) {
        let retain = !self.config.resume_window.is_zero();
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let remove = match self.conns[idx].as_ref() {
                Some(c) => c.dead || (c.closing && c.queued() == 0),
                None => false,
            };
            if !remove {
                continue;
            }
            for wire_id in self.sessions.ids_for_conn(idx) {
                if retain {
                    if self.sessions.detach(wire_id, now) {
                        self.stats.sessions_detached += 1;
                        self.obs
                            .trace
                            .push(TraceEvent::SessionDetach { session: wire_id });
                    }
                } else if let Some(s) = self.sessions.remove(wire_id) {
                    // Without retention nobody can ever resume this stream;
                    // close it in the log too so recovery skips it.
                    self.buffered_samples -= s.buffered();
                    self.wal_log(&WalRecord::SessionClose { token: s.token });
                    if let Some(hub_id) = s.hub_id() {
                        // Nobody is left to receive results; discard.
                        let _ = self.hub.close_session(hub_id);
                    }
                }
            }
            self.conns[idx] = None;
        }
    }

    /// Discards detached sessions whose retention window elapsed, closing
    /// their hub sessions, retiring their wire ids and expiring the
    /// final-report cache (which rides the same window).
    fn expire_detached(&mut self) {
        if self.config.resume_window.is_zero() {
            return;
        }
        let now = Instant::now();
        let window = self.config.resume_window;
        for s in self.sessions.expire_detached(now, window) {
            // Expiry is final: log the close so recovery does not
            // resurrect a stream nobody can resume any more.
            self.buffered_samples -= s.buffered();
            self.wal_log(&WalRecord::SessionClose { token: s.token });
            if let Some(hub_id) = s.hub_id() {
                let _ = self.hub.close_session(hub_id);
            }
            self.stats.sessions_expired += 1;
            self.obs
                .trace
                .push(TraceEvent::SessionExpire { session: s.wire_id });
        }
        if !self.completed.is_empty() {
            self.completed
                .retain(|_, done| now.duration_since(done.since) <= window);
            self.completed_by_wire
                .retain(|_, token| self.completed.contains_key(token));
        }
    }

    /// Writes as much of the outbox as the socket accepts.
    fn flush(&mut self, idx: usize) -> bool {
        let Some(conn) = self.conns[idx].as_mut() else {
            return false;
        };
        if conn.dead {
            return false;
        }
        let mut progress = false;
        while conn.sent < conn.outbox.len() {
            match conn.stream.write(&conn.outbox[conn.sent..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.sent += n;
                    conn.wrote_since_check = conn.wrote_since_check.saturating_add(n);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.sent == conn.outbox.len() {
            conn.outbox.clear();
            conn.sent = 0;
        } else if conn.sent > 64 * 1024 {
            conn.outbox.drain(..conn.sent);
            conn.sent = 0;
        }
        progress
    }

    /// Services the admin listener: accepts scrapers, answers
    /// `GET /metrics`, `/metrics.json`, `/health` and `/trace`, flushes and
    /// closes. One call makes all progress the sockets allow; the admin
    /// path never blocks the reactor.
    fn serve_admin(&mut self) -> bool {
        if self.admin.is_none() {
            return false;
        }
        let mut progress = false;
        if let Some(listener) = self.admin.as_ref() {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        self.admin_conns.push(AdminConn {
                            stream,
                            inbox: Vec::new(),
                            outbox: Vec::new(),
                            sent: 0,
                            responding: false,
                            dead: false,
                        });
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        // Read requests first; building a response needs `&self` (the
        // metrics snapshot walks the hub), so the routes are resolved in a
        // second pass.
        let mut ready: Vec<(usize, String, String)> = Vec::new();
        for (i, conn) in self.admin_conns.iter_mut().enumerate() {
            if conn.dead || conn.responding {
                continue;
            }
            let mut buf = [0u8; 4096];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        // EOF before a request line: nothing to answer.
                        if admin_request_line(&conn.inbox).is_none() {
                            conn.dead = true;
                        }
                        break;
                    }
                    Ok(n) => {
                        if conn.inbox.len() + n > 16 * 1024 {
                            conn.dead = true;
                            break;
                        }
                        conn.inbox.extend_from_slice(&buf[..n]);
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            if let Some((method, path)) = admin_request_line(&conn.inbox) {
                ready.push((i, method, path));
            }
        }
        for (i, method, path) in ready {
            let response = self.admin_response(&method, &path);
            let conn = &mut self.admin_conns[i];
            conn.outbox = response;
            conn.responding = true;
            progress = true;
        }
        for conn in &mut self.admin_conns {
            if conn.dead || !conn.responding {
                continue;
            }
            while conn.sent < conn.outbox.len() {
                match conn.stream.write(&conn.outbox[conn.sent..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.sent += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.sent == conn.outbox.len() {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                conn.dead = true;
            }
        }
        self.admin_conns.retain(|c| !c.dead);
        progress
    }

    /// Builds one HTTP/1.0 response for an admin route.
    fn admin_response(&self, method: &str, path: &str) -> Vec<u8> {
        let (status, content_type, body) = if method != "GET" {
            (
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "only GET is served here\n".to_string(),
            )
        } else {
            match path {
                "/metrics" => (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    self.metrics_snapshot().to_prometheus(),
                ),
                "/metrics.json" => (
                    "200 OK",
                    "application/json",
                    self.metrics_snapshot().to_json(),
                ),
                "/health" => ("200 OK", "application/json", self.health_json()),
                "/trace" => {
                    let mut body = String::new();
                    for rec in self.obs.trace.dump() {
                        body.push_str(&format!("tick={} {}\n", rec.tick, rec.event));
                    }
                    ("200 OK", "text/plain; charset=utf-8", body)
                }
                _ => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "routes: /metrics /metrics.json /health /trace\n".to_string(),
                ),
            }
        };
        let mut response = format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .into_bytes();
        response.extend_from_slice(body.as_bytes());
        response
    }

    /// The [`Gateway::health`] snapshot as a JSON object.
    fn health_json(&self) -> String {
        let h = self.health();
        format!(
            concat!(
                "{{\"live_sessions\":{},\"parked_sessions\":{},",
                "\"connections\":{},\"buffered_bytes\":{},",
                "\"memory_used\":{},\"memory_budget\":{},",
                "\"budget_utilization\":{},\"poll_high_water_micros\":{},",
                "\"poll_recent_high_water_micros\":{},\"watchdog_stalls\":{},",
                "\"busy_denials\":{},\"sheds\":{},\"samples_shed\":{},",
                "\"wal_errors\":{},\"wal_log_bytes\":{},\"wal_active\":{}}}"
            ),
            h.live_sessions,
            h.parked_sessions,
            h.connections,
            h.buffered_bytes,
            h.memory_used,
            h.memory_budget,
            h.budget_utilization(),
            h.poll_high_water.as_micros(),
            h.poll_recent_high_water.as_micros(),
            h.watchdog_stalls,
            h.busy_denials,
            h.sheds,
            h.samples_shed,
            h.wal_errors,
            h.wal_log_bytes,
            h.wal_active
        )
    }
}

/// Rebuilds the sessions a previous gateway process left open in the
/// durable log.
///
/// Each un-closed `SessionOpen` record becomes one parked session: its
/// stream is re-assembled from the logged `Samples` records (raw ADC codes,
/// dequantized exactly as the wire path does), its thresholds re-derived
/// from the logged calibration stretch, and the whole stream replayed
/// through the hub in a single parallel [`StreamHub::ingest`] call — by
/// chunk invariance the rebuilt outcome history is bit-identical to the
/// pre-crash ingestion, whatever chunk sizes the node used live. The
/// manager's wire-id and token generators are fast-forwarded past every
/// logged open so recovered and freshly opened sessions can never collide.
/// Returns the number of sessions rebuilt (all parked for
/// [`Frame::ResumeSession`]).
fn recover_sessions(
    hub: &mut StreamHub<'_>,
    sessions: &mut SessionManager,
    records: Vec<WalRecord>,
    fs_millihertz: u32,
    stats: &mut GatewayStats,
) -> u64 {
    struct Logged {
        wire_id: u32,
        patient_id: u32,
        calib_len: usize,
        fs_millihertz: u32,
        codes: Vec<i16>,
        next_seq: u32,
        closed: bool,
    }
    let mut by_token: HashMap<u64, Logged> = HashMap::new();
    let mut open_order: Vec<u64> = Vec::new();
    let mut opens = 0u64;
    let mut max_wire_id = None::<u32>;
    for record in records {
        match record {
            WalRecord::SessionOpen {
                token,
                wire_id,
                patient_id,
                calib_len,
                fs_millihertz: fs,
            } => {
                opens += 1;
                max_wire_id = Some(max_wire_id.map_or(wire_id, |m| m.max(wire_id)));
                if by_token
                    .insert(
                        token,
                        Logged {
                            wire_id,
                            patient_id,
                            calib_len: calib_len as usize,
                            fs_millihertz: fs,
                            codes: Vec::new(),
                            next_seq: 0,
                            closed: false,
                        },
                    )
                    .is_none()
                {
                    open_order.push(token);
                }
            }
            WalRecord::Samples { token, seq, codes } => {
                if let Some(entry) = by_token.get_mut(&token) {
                    if !entry.closed {
                        entry.codes.extend_from_slice(&codes);
                        entry.next_seq = seq.wrapping_add(1);
                    }
                }
            }
            WalRecord::SessionClose { token } => {
                if let Some(entry) = by_token.get_mut(&token) {
                    entry.closed = true;
                }
            }
        }
    }
    // Replay the generators: every logged open consumed one wire id and one
    // token, whether or not its session survives recovery, so the post-
    // restart streams continue exactly where the pre-crash ones would have.
    sessions.skip_tokens(opens);
    if let Some(max) = max_wire_id {
        sessions.ensure_next_id(max.wrapping_add(1));
    }

    struct Rebuilt {
        token: u64,
        wire_id: u32,
        patient_id: u32,
        calib_len: usize,
        samples: Vec<f64>,
        next_seq: u32,
        hub_id: Option<hbc_core::SessionId>,
    }
    let adc = crate::proto::wire_adc();
    let mut rebuilt: Vec<Rebuilt> = Vec::new();
    for token in open_order {
        let Some(entry) = by_token.remove(&token) else {
            continue;
        };
        // Closed sessions are fully reported; sessions logged at a
        // different sampling rate belong to a differently configured
        // gateway and cannot be replayed through this hub.
        if entry.closed || entry.fs_millihertz != fs_millihertz {
            continue;
        }
        let samples: Vec<f64> = entry
            .codes
            .iter()
            .map(|&c| adc.dequantize_sample(i32::from(c)))
            .collect();
        let hub_id = if samples.len() >= entry.calib_len {
            match hub.calibrate_thresholds(&samples[..entry.calib_len]) {
                Ok(thresholds) => Some(hub.add_patient(entry.patient_id, thresholds)),
                // A degenerate calibration stretch would have ended the
                // session live too; drop it.
                Err(_) => continue,
            }
        } else {
            None
        };
        rebuilt.push(Rebuilt {
            token,
            wire_id: entry.wire_id,
            patient_id: entry.patient_id,
            calib_len: entry.calib_len,
            samples,
            next_seq: entry.next_seq,
            hub_id,
        });
    }
    let feeds: Vec<(hbc_core::SessionId, &[f64])> = rebuilt
        .iter()
        .filter_map(|r| Some((r.hub_id?, r.samples.as_slice())))
        .collect();
    if !feeds.is_empty() && hub.ingest(&feeds).is_err() {
        stats.internal_skips += 1;
        debug_assert!(false, "recovered hub sessions are fresh and unique");
    }
    let now = Instant::now();
    let recovered = rebuilt.len() as u64;
    for r in rebuilt {
        let samples_received = r.samples.len() as u64;
        // `outcomes_sent` restarts at the full replayed history: the owner
        // can only have received outcomes the pre-crash gateway actually
        // sent, which the replay covers (samples are logged before they are
        // ingested), so the resume-time `min()` rewind lands exactly on the
        // client's claim.
        let (phase, pending, outcomes_sent) = match r.hub_id {
            Some(hub_id) => {
                let replayed = hub.outcomes_since(hub_id, 0).map_or(0, |o| o.len());
                (
                    SessionPhase::Streaming { hub: hub_id },
                    Vec::new(),
                    replayed,
                )
            }
            None => (
                SessionPhase::Calibrating {
                    calib_len: r.calib_len,
                },
                r.samples,
                0,
            ),
        };
        sessions.insert_detached(
            NetSession {
                wire_id: r.wire_id,
                token: r.token,
                conn: usize::MAX,
                patient_id: r.patient_id,
                phase,
                pending,
                chunk: Vec::new(),
                next_seq: r.next_seq,
                outcomes_sent,
                consumed_since_grant: 0,
                samples_received,
                last_activity: now,
                priority: SessionPriority::Normal,
                oldest_pending_at: None,
                staged_anchor: None,
            },
            now,
        );
    }
    recovered
}

impl std::fmt::Debug for Gateway<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("addr", &self.listener.local_addr().ok())
            .field("sessions", &self.sessions.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}
