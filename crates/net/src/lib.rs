//! # hbc-net — the TCP ingestion gateway
//!
//! The streaming subsystem of `hbc-core` (the [`StreamHub`]) multiplexes
//! per-patient classification sessions in-process; this crate makes it
//! reachable over real sockets, turning the reproduction into a
//! network-facing monitoring service, with **zero dependencies beyond
//! `std`** (nonblocking `TcpListener`/`TcpStream`), consistent with the
//! offline policy of `crates/compat`. Four layers:
//!
//! * [`proto`] — the versioned binary **wire protocol**: length-prefixed
//!   frames with a CRC-32 trailer and a pure incremental [`FrameDecoder`],
//!   testable without sockets;
//! * [`session`] — the **session manager** driving the full lifecycle
//!   (handshake → threshold calibration from the first `calib_len` samples
//!   → streaming → drain → final report), including idle eviction;
//! * [`server`] — the single-threaded nonblocking **reactor**
//!   ([`Gateway`]): polls sockets, enforces **credit-based flow control**
//!   (bounded per-session sample budget; slow consumers stall senders
//!   instead of ballooning memory), batches ready chunks into
//!   [`StreamHub::ingest`] so decode and classification fan out over
//!   `hbc-par`, and protects itself under overload — admission control
//!   (connection/session caps and a global memory budget answered with
//!   [`Frame::Busy`]), priority-aware shed-before-stall that drops
//!   normal-outcome telemetry before starving ARR-critical sessions,
//!   slow-peer reaping (handshake deadline, minimum-progress checks) and a
//!   liveness watchdog surfaced via [`Gateway::health`];
//! * [`client`] — the blocking [`NodeClient`] used by tests and the
//!   `telemetry_gateway` example; keeps a bounded replay buffer of
//!   unacknowledged sample frames and re-attaches dropped sessions with
//!   reconnect-with-backoff ([`NodeClient::reconnect_with_backoff`]);
//! * [`replay`] — offline **re-scoring** of a gateway's durable ingest log
//!   ([`replay_log`]): every logged stream re-run through any firmware
//!   image, bit-identical to live ingestion when the image matches;
//! * [`chaos`] — a deterministic fault-injecting TCP proxy
//!   ([`ChaosProxy`]): corruption, duplication, reordering, truncation,
//!   slow-loris stalls and mid-stream kills on a seeded, replayable
//!   schedule, for wire-level failure testing.
//!
//! Per-beat outcomes received over the socket are **bit-identical** to the
//! batch `process_record` pipeline for any packetization — the network
//! boundary extends the chunk-invariance guarantee of the streaming
//! subsystem (`tests/net_loopback.rs` proves it end to end).
//!
//! [`StreamHub`]: hbc_core::StreamHub
//! [`StreamHub::ingest`]: hbc_core::StreamHub::ingest

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod proto;
pub mod replay;
pub mod server;
pub mod session;

pub use chaos::{ChaosConfig, ChaosDirection, ChaosProxy, ChaosStats, FaultKind};
pub use client::{NodeClient, SessionSummary};
pub use proto::{Frame, FrameDecoder, ProtoError, WireOutcome, WireReport, PROTOCOL_VERSION};
pub use replay::{replay_log, ReplayReport, ReplayedSession};
pub use server::{
    Gateway, GatewayConfig, GatewayHealth, GatewayReport, GatewayStats, Heartbeat, OverflowPolicy,
};
pub use session::SessionPriority;

/// Errors surfaced by the networking crate.
#[derive(Debug)]
pub enum NetError {
    /// Transport error.
    Io(std::io::Error),
    /// Wire-protocol violation.
    Proto(ProtoError),
    /// The gateway refused the connection or a request.
    Denied(String),
    /// The gateway is overloaded (admission control); retry after the
    /// embedded pause.
    Busy(std::time::Duration),
    /// The peer closed the connection.
    Closed,
    /// Local misuse (unknown session, handshake ordering, …).
    State(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Proto(e) => write!(f, "protocol error: {e}"),
            NetError::Denied(m) => write!(f, "denied by the gateway: {m}"),
            NetError::Busy(after) => {
                write!(f, "gateway is overloaded; retry after {after:?}")
            }
            NetError::Closed => write!(f, "connection closed by the peer"),
            NetError::State(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_clearly() {
        assert!(NetError::Closed.to_string().contains("closed"));
        assert!(NetError::Denied("busy".into()).to_string().contains("busy"));
        assert!(NetError::Busy(std::time::Duration::from_millis(250))
            .to_string()
            .contains("overloaded"));
        assert!(NetError::State("nope".into()).to_string().contains("nope"));
        let e = NetError::from(ProtoError::UnknownTag(9));
        assert!(e.to_string().contains("tag"));
        assert!(std::error::Error::source(&e).is_some());
        let e = NetError::from(std::io::Error::other("x"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
