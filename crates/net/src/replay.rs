//! Offline replay: re-score a durable ingest log through a firmware image.
//!
//! [`replay_log`] reads the segment log a [`crate::Gateway`] wrote (see
//! [`crate::GatewayConfig::wal`]) and re-runs every logged stream through a
//! fresh [`StreamHub`] — the same code path live ingestion uses — so the
//! produced outcome history is **bit-identical** to what the gateway
//! computed online, for any packetization and any worker-thread count
//! (chunk invariance of the streaming subsystem). Pointing it at a
//! *different* firmware image answers "what would this pipeline have said
//! about the exact traffic we served?" — retrospective evaluation of a
//! candidate model on real logged streams, without touching the live
//! service.
//!
//! The scan is read-only: a torn tail from a crash is skipped, never
//! repaired, so a replay can run against the log directory of a dead
//! gateway before (or instead of) restarting it.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::path::Path;

use hbc_core::StreamHub;
use hbc_embedded::{BeatOutcome, WbsnFirmware};
use hbc_wal::WalRecord;

/// One logged session re-scored through the pipeline, in log open order.
#[derive(Debug, Clone)]
pub struct ReplayedSession {
    /// Resume token the gateway issued (the log's session key).
    pub token: u64,
    /// Wire-level session id.
    pub wire_id: u32,
    /// Patient identifier from the open request.
    pub patient_id: u32,
    /// Sampling rate the session was opened with, in millihertz.
    pub fs_millihertz: u32,
    /// Samples logged for the session (accepted by the gateway).
    pub samples: u64,
    /// Whether the log records a clean end for the session.
    pub closed: bool,
    /// Whether the logged stream covered the calibration stretch (an
    /// uncalibrated session has no outcomes by construction).
    pub calibrated: bool,
    /// The full re-scored outcome history.
    pub outcomes: Vec<BeatOutcome>,
}

/// Everything [`replay_log`] reconstructs from one log directory.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Re-scored sessions, in the order their opens were logged.
    pub sessions: Vec<ReplayedSession>,
    /// Segment files scanned.
    pub segments_scanned: usize,
    /// Bytes ignored past a torn tail or corrupt record.
    pub bytes_truncated: u64,
    /// Whether the log carried a torn tail (the valid prefix was used).
    pub truncated: bool,
}

/// Re-scores every session in the log directory `dir` through `firmware`.
///
/// Sessions are grouped by their logged sampling rate (one [`StreamHub`]
/// per distinct rate — a hub is single-rate) and each group is replayed
/// with one parallel [`StreamHub::ingest`] call over full streams; `threads`
/// picks the worker policy (`None` = one per core) and has no effect on the
/// produced outcomes. Sessions the log marks closed are finished and
/// drained exactly like a live close, so their histories match the final
/// reports the gateway sent; still-open sessions stop where the log stops,
/// matching what crash recovery rebuilds.
///
/// # Errors
///
/// Only filesystem errors (unreadable directory or segments). Corrupt log
/// content is absorbed: the valid prefix is replayed and
/// [`ReplayReport::truncated`] is set.
pub fn replay_log(
    dir: impl AsRef<Path>,
    firmware: &WbsnFirmware,
    threads: Option<NonZeroUsize>,
) -> std::io::Result<ReplayReport> {
    struct Logged {
        token: u64,
        wire_id: u32,
        patient_id: u32,
        calib_len: usize,
        fs_millihertz: u32,
        codes: Vec<i16>,
        closed: bool,
    }
    let recovery = hbc_wal::scan(dir.as_ref()).map_err(|e| match e {
        hbc_wal::WalError::Io(io) => io,
        other => std::io::Error::other(other.to_string()),
    })?;

    let mut entries: Vec<Logged> = Vec::new();
    let mut by_token: BTreeMap<u64, usize> = BTreeMap::new();
    for record in recovery.records {
        match record {
            WalRecord::SessionOpen {
                token,
                wire_id,
                patient_id,
                calib_len,
                fs_millihertz,
            } => {
                by_token.entry(token).or_insert_with(|| {
                    entries.push(Logged {
                        token,
                        wire_id,
                        patient_id,
                        calib_len: calib_len as usize,
                        fs_millihertz,
                        codes: Vec::new(),
                        closed: false,
                    });
                    entries.len() - 1
                });
            }
            WalRecord::Samples { token, codes, .. } => {
                if let Some(&i) = by_token.get(&token) {
                    if !entries[i].closed {
                        entries[i].codes.extend_from_slice(&codes);
                    }
                }
            }
            WalRecord::SessionClose { token } => {
                if let Some(&i) = by_token.get(&token) {
                    entries[i].closed = true;
                }
            }
        }
    }

    // A hub runs at one sampling rate; group sessions by theirs. Group
    // order does not matter for the outcomes (sessions are independent) —
    // the report is re-assembled in log open order below.
    let mut by_fs: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, entry) in entries.iter().enumerate() {
        by_fs.entry(entry.fs_millihertz).or_default().push(i);
    }

    let adc = crate::proto::wire_adc();
    let mut sessions: Vec<Option<ReplayedSession>> = entries.iter().map(|_| None).collect();
    for (fs_millihertz, group) in by_fs {
        let fs = f64::from(fs_millihertz) / 1000.0;
        let mut hub = StreamHub::with_threads(firmware, fs, threads);
        let mut streams: Vec<(usize, Vec<f64>)> = Vec::with_capacity(group.len());
        for &i in &group {
            let samples: Vec<f64> = entries[i]
                .codes
                .iter()
                .map(|&c| adc.dequantize_sample(i32::from(c)))
                .collect();
            streams.push((i, samples));
        }
        let mut hub_ids = Vec::with_capacity(streams.len());
        for (i, samples) in &streams {
            let entry = &entries[*i];
            let hub_id = if samples.len() >= entry.calib_len && entry.calib_len > 0 {
                hub.calibrate_thresholds(&samples[..entry.calib_len])
                    .ok()
                    .map(|thresholds| hub.add_patient(entry.patient_id, thresholds))
            } else {
                None
            };
            hub_ids.push(hub_id);
        }
        let feeds: Vec<(hbc_core::SessionId, &[f64])> = streams
            .iter()
            .zip(&hub_ids)
            .filter_map(|((_, samples), hub_id)| Some(((*hub_id)?, samples.as_slice())))
            .collect();
        if !feeds.is_empty() && hub.ingest(&feeds).is_err() {
            debug_assert!(false, "replay hub sessions are fresh and unique");
        }
        for ((i, samples), hub_id) in streams.iter().zip(&hub_ids) {
            let entry = &entries[*i];
            let outcomes = match hub_id {
                Some(id) if entry.closed => hub
                    .close_session(*id)
                    .map(|report| report.outcomes)
                    .unwrap_or_default(),
                Some(id) => hub.outcomes_since(*id, 0).unwrap_or_default(),
                None => Vec::new(),
            };
            sessions[*i] = Some(ReplayedSession {
                token: entry.token,
                wire_id: entry.wire_id,
                patient_id: entry.patient_id,
                fs_millihertz,
                samples: samples.len() as u64,
                closed: entry.closed,
                calibrated: hub_id.is_some(),
                outcomes,
            });
        }
    }

    Ok(ReplayReport {
        sessions: sessions.into_iter().flatten().collect(),
        segments_scanned: recovery.segments_scanned,
        bytes_truncated: recovery.bytes_truncated,
        truncated: recovery.truncated,
    })
}
