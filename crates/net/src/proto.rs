//! The versioned binary wire protocol of the ingestion gateway.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! ┌────────────┬───────┬───────────────┬─────────────┐
//! │ len (u32)  │ tag   │ body          │ crc32 (u32) │
//! │ little-end │ (u8)  │ (len−1 bytes) │ over tag+body│
//! └────────────┴───────┴───────────────┴─────────────┘
//! ```
//!
//! `len` counts the tag byte plus the body; the CRC-32 (IEEE, the ZIP/PNG
//! polynomial) trailer covers exactly those bytes. All integers are
//! little-endian; there are no variable-length integers and no padding, so
//! every frame has exactly one serialisation and the decoder can verify
//! length *and* checksum before touching the payload.
//!
//! [`FrameDecoder`] is a pure incremental parser: feed it arbitrary byte
//! slices ([`FrameDecoder::feed`]) and pop complete frames
//! ([`FrameDecoder::next_frame`]) — chunking is immaterial, which is what
//! the round-trip property tests exercise. Malformed input (bad CRC,
//! oversized length, unknown tag, short or overlong body) is reported as a
//! [`ProtoError`] and never panics; framing errors are fatal for the stream
//! (the decoder cannot resynchronise after a corrupt length).
//!
//! Samples travel as **i16 ADC codes** — what the node's front-end actually
//! produces — quantised with the same 12-bit ±5 mV transfer function as the
//! firmware's [`AdcModel`] ([`quantize_mv_into`] / [`dequantize_mv_into`]).
//! The code→millivolt mapping is exact in `f64`, so a record quantised once
//! on the sender yields bit-identical classifications whether it is replayed
//! over the socket or fed to `process_record` directly.

use hbc_ecg::beat::BeatClass;
use hbc_embedded::firmware::BeatOutcome;
use hbc_embedded::fixed::AdcModel;

/// Version of the wire protocol spoken by this build. Exchanged in both
/// directions by [`Frame::Hello`]; the gateway denies mismatched peers.
///
/// Version 2 added session resumption ([`Frame::ResumeSession`] /
/// [`Frame::SessionResumed`]), the resume token in [`Frame::SessionOpened`]
/// and the cumulative `acked_seq` in [`Frame::Credit`].
///
/// Version 3 added overload signalling: [`Frame::Busy`], the Deny-class
/// "come back later" response of the gateway's admission control (connection
/// and session caps, global memory budget).
pub const PROTOCOL_VERSION: u16 = 3;

/// Upper bound on `len` (tag + body) the decoder accepts. A corrupt or
/// hostile length prefix beyond this is rejected before any buffering.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Most samples one [`Frame::Samples`] may carry (keeps frames well under
/// [`MAX_FRAME_LEN`] and bounds per-frame latency).
pub const MAX_SAMPLES_PER_FRAME: usize = 16_384;

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes` — the frame trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The ADC transfer function of the wire: the firmware's default front-end
/// (12-bit, ±5 mV), whose codes fit an `i16` with headroom.
pub fn wire_adc() -> AdcModel {
    AdcModel::default_frontend()
}

/// Quantises millivolt samples to wire ADC codes (clearing `out` first) —
/// the sender-side half of the wire's sample representation. Delegates to
/// [`AdcModel::quantize_sample`], so the wire and the firmware share one
/// transfer function by construction (a 12-bit code always fits an `i16`).
pub fn quantize_mv_into(samples_mv: &[f64], out: &mut Vec<i16>) {
    let adc = wire_adc();
    out.clear();
    out.extend(samples_mv.iter().map(|&s| adc.quantize_sample(s) as i16));
}

/// Reconstructs millivolt samples from wire ADC codes (clearing `out`
/// first). [`AdcModel::dequantize_sample`] is exact in `f64`, so
/// `quantize → dequantize → quantize` is the identity on codes and the
/// gateway classifies exactly what the sender's front-end saw.
pub fn dequantize_mv_into(codes: &[i16], out: &mut Vec<f64>) {
    let adc = wire_adc();
    out.clear();
    out.extend(codes.iter().map(|&c| adc.dequantize_sample(i32::from(c))));
}

/// One classified beat on the wire: the subset of
/// [`BeatOutcome`] the node transmits (ground truth
/// is unknown online and labelled server- or analyst-side afterwards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireOutcome {
    /// Sample position of the detected R peak in the session's stream.
    pub peak: u64,
    /// Predicted class code (see [`class_to_code`]).
    pub class: u8,
    /// Whether the delineation stage ran for this beat.
    pub delineated: bool,
    /// Number of fiducial points transmitted for this beat.
    pub fiducials: u16,
}

/// Encodes a [`BeatClass`] as its wire code (0 N, 1 V, 2 L, 3 Unknown).
pub fn class_to_code(class: BeatClass) -> u8 {
    class.index().map_or(3, |i| i as u8)
}

/// Decodes a wire class code; `None` for codes outside the protocol.
pub fn code_to_class(code: u8) -> Option<BeatClass> {
    match code {
        3 => Some(BeatClass::Unknown),
        c => BeatClass::from_index(c as usize),
    }
}

impl WireOutcome {
    /// Converts a firmware outcome for transmission.
    pub fn from_outcome(o: &BeatOutcome) -> Self {
        WireOutcome {
            peak: o.peak as u64,
            class: class_to_code(o.predicted),
            delineated: o.delineated,
            fiducials: o.fiducials_transmitted.min(u16::MAX as usize) as u16,
        }
    }

    /// Reconstructs the firmware outcome (with `truth: None`, like every
    /// online beat).
    ///
    /// Returns `None` for an out-of-protocol class code.
    pub fn to_outcome(self) -> Option<BeatOutcome> {
        Some(BeatOutcome {
            peak: self.peak as usize,
            truth: None,
            predicted: code_to_class(self.class)?,
            delineated: self.delineated,
            fiducials_transmitted: usize::from(self.fiducials),
        })
    }
}

/// Final per-session counters, sent with [`Frame::Report`] when a session
/// closes (normally or by eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireReport {
    /// Beats the session emitted in total.
    pub beats: u64,
    /// Beats forwarded to the delineation stage.
    pub forwarded: u64,
    /// Raw samples the session ingested.
    pub samples: u64,
}

/// Every message of the protocol.
///
/// Client → gateway: [`Frame::Hello`], [`Frame::OpenSession`],
/// [`Frame::Samples`], [`Frame::CloseSession`], [`Frame::ResumeSession`].
/// Gateway → client: [`Frame::Hello`] (handshake echo),
/// [`Frame::SessionOpened`], [`Frame::Credit`], [`Frame::Outcomes`],
/// [`Frame::Report`], [`Frame::Deny`], [`Frame::SessionResumed`],
/// [`Frame::Busy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Handshake. The first frame in each direction; carries the protocol
    /// version.
    Hello {
        /// Speaker's protocol version.
        version: u16,
    },
    /// Requests a new per-patient session.
    OpenSession {
        /// Patient identifier (opaque to the gateway, echoed in reports).
        patient_id: u32,
        /// Acquisition sampling rate in millihertz (must match the
        /// gateway's hub).
        fs_millihertz: u32,
        /// Number of leading samples the gateway calibrates detection
        /// thresholds on before classification starts. The stretch is part
        /// of the stream (it is replayed into the session after
        /// calibration), exactly like a node's start-up phase.
        calib_len: u32,
    },
    /// A run of consecutive ADC samples for one session. `seq` numbers the
    /// sample frames of the session from 0; a gap is a protocol error.
    Samples {
        /// Gateway-assigned session id (from [`Frame::SessionOpened`]).
        session: u32,
        /// Frame sequence number within the session.
        seq: u32,
        /// ADC codes (see [`quantize_mv_into`]).
        samples: Vec<i16>,
    },
    /// Ends a session: the gateway drains it and answers with
    /// [`Frame::Outcomes`] (if beats remain) and a final [`Frame::Report`].
    CloseSession {
        /// Session to close.
        session: u32,
    },
    /// Re-attaches a session whose connection died, identified by the
    /// resume token from [`Frame::SessionOpened`]. The gateway keeps
    /// calibrated thresholds and the stream position for a retention
    /// window, so the node does not re-run threshold calibration. The
    /// gateway answers with [`Frame::SessionResumed`] (or [`Frame::Deny`]
    /// when the token is unknown or the window elapsed).
    ResumeSession {
        /// Patient identifier; must match the session being resumed.
        patient_id: u32,
        /// The resume token issued at [`Frame::SessionOpened`].
        session_token: u64,
        /// Count of [`Frame::Samples`] frames the client knows the gateway
        /// received (its last observed `acked_seq`); informational — the
        /// gateway's own `next_expected_seq` is authoritative.
        last_acked_seq: u32,
        /// Outcomes the client received before the link died; the gateway
        /// rewinds its forwarding position here so the outcome stream has
        /// no gap.
        outcomes_received: u64,
    },
    /// Open acknowledgement: the gateway-assigned session id plus the
    /// session's full credit budget (samples the client may have in flight).
    SessionOpened {
        /// Newly assigned session id.
        session: u32,
        /// Initial credit, in samples.
        credit: u32,
        /// Resume token for [`Frame::ResumeSession`]. Unique per gateway;
        /// an opaque correlation handle, not a security boundary.
        token: u64,
    },
    /// Resume acknowledgement: the wire id is unchanged, sending restarts
    /// at `next_expected_seq` with `credit` samples of budget.
    SessionResumed {
        /// The resumed session's wire id.
        session: u32,
        /// Sequence number of the next [`Frame::Samples`] frame the gateway
        /// expects — frames below it were received and must not be resent.
        next_expected_seq: u32,
        /// Absolute credit after the resume (budget minus samples still
        /// buffered gateway-side); replaces the client's counter.
        credit: u32,
    },
    /// Replenishes `grant` samples of credit as the hub consumes the
    /// session's buffered samples.
    Credit {
        /// Session the grant applies to.
        session: u32,
        /// Samples of credit returned to the sender.
        grant: u32,
        /// Cumulative count of [`Frame::Samples`] frames received for the
        /// session — everything below this sequence number is safely
        /// buffered gateway-side and may be dropped from replay buffers.
        acked_seq: u32,
    },
    /// Classified beats, in temporal order, as they fall out of the hub.
    Outcomes {
        /// Session the beats belong to.
        session: u32,
        /// The beats.
        outcomes: Vec<WireOutcome>,
    },
    /// Final counters of a closed (or evicted) session.
    Report {
        /// The session that ended.
        session: u32,
        /// Its final counters.
        report: WireReport,
    },
    /// Protocol violation or refusal; the gateway closes the connection
    /// after sending it.
    Deny {
        /// Human-readable reason.
        message: String,
    },
    /// Overload refusal (admission control): the gateway is past one of its
    /// configured limits (connections, sessions or the global memory
    /// budget). Unlike [`Frame::Deny`] this is not a protocol violation —
    /// the request was well-formed and may simply be retried after
    /// `retry_after_ms`. The gateway closes the connection after sending
    /// it, freeing the slot for the load it is shedding.
    Busy {
        /// Suggested client-side pause before retrying, in milliseconds.
        retry_after_ms: u32,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_OPEN_SESSION: u8 = 0x02;
const TAG_SAMPLES: u8 = 0x03;
const TAG_CLOSE_SESSION: u8 = 0x04;
const TAG_RESUME_SESSION: u8 = 0x05;
const TAG_SESSION_OPENED: u8 = 0x81;
const TAG_CREDIT: u8 = 0x82;
const TAG_OUTCOMES: u8 = 0x83;
const TAG_REPORT: u8 = 0x84;
const TAG_DENY: u8 = 0x85;
const TAG_SESSION_RESUMED: u8 = 0x86;
const TAG_BUSY: u8 = 0x87;

/// Decoding errors. All are fatal for the byte stream they occurred on —
/// after a framing error the decoder cannot find the next frame boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is zero).
    BadLength {
        /// The offending length.
        len: usize,
    },
    /// The CRC-32 trailer does not match the frame contents.
    BadCrc {
        /// Checksum computed over the received bytes.
        computed: u32,
        /// Checksum found in the trailer.
        found: u32,
    },
    /// The frame tag is not part of this protocol version.
    UnknownTag(u8),
    /// The body does not parse (short read, overlong body, invalid field).
    Malformed(&'static str),
    /// The stream ended in the middle of a frame.
    Truncated {
        /// Bytes buffered when the stream ended.
        buffered: usize,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadLength { len } => {
                write!(f, "frame length {len} outside (0, {MAX_FRAME_LEN}]")
            }
            ProtoError::BadCrc { computed, found } => {
                write!(
                    f,
                    "crc mismatch: computed {computed:#010x}, trailer {found:#010x}"
                )
            }
            ProtoError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            ProtoError::Malformed(what) => write!(f, "malformed frame body: {what}"),
            ProtoError::Truncated { buffered } => {
                write!(f, "stream ended mid-frame ({buffered} bytes buffered)")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over a frame body.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ProtoError::Malformed("body shorter than its fields"))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after body"))
        }
    }
}

impl Frame {
    /// Appends the frame's serialisation (length prefix, tag, body, CRC
    /// trailer) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len_at = out.len();
        put_u32(out, 0); // patched below
        let tag_at = out.len();
        match self {
            Frame::Hello { version } => {
                out.push(TAG_HELLO);
                put_u16(out, *version);
            }
            Frame::OpenSession {
                patient_id,
                fs_millihertz,
                calib_len,
            } => {
                out.push(TAG_OPEN_SESSION);
                put_u32(out, *patient_id);
                put_u32(out, *fs_millihertz);
                put_u32(out, *calib_len);
            }
            Frame::Samples {
                session,
                seq,
                samples,
            } => {
                out.push(TAG_SAMPLES);
                put_u32(out, *session);
                put_u32(out, *seq);
                for s in samples {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            Frame::CloseSession { session } => {
                out.push(TAG_CLOSE_SESSION);
                put_u32(out, *session);
            }
            Frame::ResumeSession {
                patient_id,
                session_token,
                last_acked_seq,
                outcomes_received,
            } => {
                out.push(TAG_RESUME_SESSION);
                put_u32(out, *patient_id);
                put_u64(out, *session_token);
                put_u32(out, *last_acked_seq);
                put_u64(out, *outcomes_received);
            }
            Frame::SessionOpened {
                session,
                credit,
                token,
            } => {
                out.push(TAG_SESSION_OPENED);
                put_u32(out, *session);
                put_u32(out, *credit);
                put_u64(out, *token);
            }
            Frame::SessionResumed {
                session,
                next_expected_seq,
                credit,
            } => {
                out.push(TAG_SESSION_RESUMED);
                put_u32(out, *session);
                put_u32(out, *next_expected_seq);
                put_u32(out, *credit);
            }
            Frame::Credit {
                session,
                grant,
                acked_seq,
            } => {
                out.push(TAG_CREDIT);
                put_u32(out, *session);
                put_u32(out, *grant);
                put_u32(out, *acked_seq);
            }
            Frame::Outcomes { session, outcomes } => {
                out.push(TAG_OUTCOMES);
                put_u32(out, *session);
                for o in outcomes {
                    put_u64(out, o.peak);
                    out.push(o.class);
                    out.push(u8::from(o.delineated));
                    put_u16(out, o.fiducials);
                }
            }
            Frame::Report { session, report } => {
                out.push(TAG_REPORT);
                put_u32(out, *session);
                put_u64(out, report.beats);
                put_u64(out, report.forwarded);
                put_u64(out, report.samples);
            }
            Frame::Deny { message } => {
                out.push(TAG_DENY);
                out.extend_from_slice(message.as_bytes());
            }
            Frame::Busy { retry_after_ms } => {
                out.push(TAG_BUSY);
                put_u32(out, *retry_after_ms);
            }
        }
        let len = out.len() - tag_at;
        out[len_at..len_at + 4].copy_from_slice(&(len as u32).to_le_bytes());
        let crc = crc32(&out[tag_at..]);
        put_u32(out, crc);
    }

    /// Convenience: the frame as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn decode_body(tag: u8, body: &[u8]) -> Result<Frame, ProtoError> {
        let mut c = Cursor::new(body);
        let frame = match tag {
            TAG_HELLO => Frame::Hello { version: c.u16()? },
            TAG_OPEN_SESSION => Frame::OpenSession {
                patient_id: c.u32()?,
                fs_millihertz: c.u32()?,
                calib_len: c.u32()?,
            },
            TAG_SAMPLES => {
                let session = c.u32()?;
                let seq = c.u32()?;
                let rest = c.take(body.len() - 8)?;
                if rest.len() % 2 != 0 {
                    return Err(ProtoError::Malformed("odd sample payload"));
                }
                let samples = rest
                    .chunks_exact(2)
                    .map(|b| i16::from_le_bytes([b[0], b[1]]))
                    .collect();
                Frame::Samples {
                    session,
                    seq,
                    samples,
                }
            }
            TAG_CLOSE_SESSION => Frame::CloseSession { session: c.u32()? },
            TAG_RESUME_SESSION => Frame::ResumeSession {
                patient_id: c.u32()?,
                session_token: c.u64()?,
                last_acked_seq: c.u32()?,
                outcomes_received: c.u64()?,
            },
            TAG_SESSION_OPENED => Frame::SessionOpened {
                session: c.u32()?,
                credit: c.u32()?,
                token: c.u64()?,
            },
            TAG_SESSION_RESUMED => Frame::SessionResumed {
                session: c.u32()?,
                next_expected_seq: c.u32()?,
                credit: c.u32()?,
            },
            TAG_CREDIT => Frame::Credit {
                session: c.u32()?,
                grant: c.u32()?,
                acked_seq: c.u32()?,
            },
            TAG_OUTCOMES => {
                let session = c.u32()?;
                let rest_len = body.len() - 4;
                if !rest_len.is_multiple_of(12) {
                    return Err(ProtoError::Malformed(
                        "outcome payload not a multiple of 12",
                    ));
                }
                let mut outcomes = Vec::with_capacity(rest_len / 12);
                for _ in 0..rest_len / 12 {
                    let peak = c.u64()?;
                    let class = c.u8()?;
                    let delineated = match c.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(ProtoError::Malformed("delineated flag not 0/1")),
                    };
                    let fiducials = c.u16()?;
                    if code_to_class(class).is_none() {
                        return Err(ProtoError::Malformed("class code outside the protocol"));
                    }
                    outcomes.push(WireOutcome {
                        peak,
                        class,
                        delineated,
                        fiducials,
                    });
                }
                Frame::Outcomes { session, outcomes }
            }
            TAG_REPORT => Frame::Report {
                session: c.u32()?,
                report: WireReport {
                    beats: c.u64()?,
                    forwarded: c.u64()?,
                    samples: c.u64()?,
                },
            },
            TAG_DENY => {
                let bytes = c.take(body.len())?;
                let message = std::str::from_utf8(bytes)
                    .map_err(|_| ProtoError::Malformed("deny message not UTF-8"))?
                    .to_string();
                Frame::Deny { message }
            }
            TAG_BUSY => Frame::Busy {
                retry_after_ms: c.u32()?,
            },
            other => return Err(ProtoError::UnknownTag(other)),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// Incremental frame parser: buffer bytes from any transport, pop complete
/// frames. Pure (no I/O), so the protocol is testable without sockets.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim the consumed prefix once it dominates the
        // buffer, keeping feed+pop amortised O(1) per byte.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame: `Ok(None)` means "need more bytes".
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] is fatal for the stream: the decoder's state is
    /// left untouched and every subsequent call fails the same way.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("len 4")) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(ProtoError::BadLength { len });
        }
        let total = 4 + len + 4;
        if avail.len() < total {
            return Ok(None);
        }
        let framed = &avail[4..4 + len];
        let found = u32::from_le_bytes(avail[4 + len..total].try_into().expect("len 4"));
        let computed = crc32(framed);
        if computed != found {
            return Err(ProtoError::BadCrc { computed, found });
        }
        let frame = Frame::decode_body(framed[0], &framed[1..])?;
        self.start += total;
        Ok(Some(frame))
    }

    /// Declares end of stream: errors if bytes of an incomplete frame
    /// remain buffered.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Truncated`] when the peer hung up mid-frame.
    pub fn expect_eof(&self) -> Result<(), ProtoError> {
        match self.buffered() {
            0 => Ok(()),
            buffered => Err(ProtoError::Truncated { buffered }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
            },
            Frame::OpenSession {
                patient_id: 7,
                fs_millihertz: 360_000,
                calib_len: 2880,
            },
            Frame::Samples {
                session: 1,
                seq: 0,
                samples: vec![-2048, -1, 0, 1, 2047],
            },
            Frame::SessionOpened {
                session: 1,
                credit: 65536,
                token: 0xDEAD_BEEF_F00D_CAFE,
            },
            Frame::ResumeSession {
                patient_id: 7,
                session_token: 0xDEAD_BEEF_F00D_CAFE,
                last_acked_seq: 41,
                outcomes_received: 17,
            },
            Frame::SessionResumed {
                session: 1,
                next_expected_seq: 42,
                credit: 4096,
            },
            Frame::Credit {
                session: 1,
                grant: 512,
                acked_seq: 42,
            },
            Frame::Outcomes {
                session: 1,
                outcomes: vec![
                    WireOutcome {
                        peak: 1234,
                        class: 0,
                        delineated: false,
                        fiducials: 1,
                    },
                    WireOutcome {
                        peak: u64::MAX,
                        class: 3,
                        delineated: true,
                        fiducials: 9,
                    },
                ],
            },
            Frame::Report {
                session: 1,
                report: WireReport {
                    beats: 42,
                    forwarded: 7,
                    samples: 650_000,
                },
            },
            Frame::CloseSession { session: 1 },
            Frame::Deny {
                message: "nope".into(),
            },
            Frame::Busy {
                retry_after_ms: 250,
            },
        ]
    }

    #[test]
    fn frames_round_trip_through_the_decoder() {
        let frames = sample_frames();
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        for f in &frames {
            assert_eq!(decoder.next_frame().expect("valid"), Some(f.clone()));
        }
        assert_eq!(decoder.next_frame().expect("drained"), None);
        decoder.expect_eof().expect("no residue");
    }

    #[test]
    fn byte_by_byte_feeding_is_equivalent() {
        let frames = sample_frames();
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let mut decoder = FrameDecoder::new();
        let mut seen = Vec::new();
        for &b in &bytes {
            decoder.feed(&[b]);
            while let Some(f) = decoder.next_frame().expect("valid") {
                seen.push(f);
            }
        }
        assert_eq!(seen, frames);
    }

    #[test]
    fn corrupt_crc_is_detected() {
        let mut bytes = Frame::CloseSession { session: 3 }.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        assert!(matches!(
            decoder.next_frame(),
            Err(ProtoError::BadCrc { .. })
        ));
    }

    #[test]
    fn payload_corruption_fails_the_crc_not_the_parser() {
        let mut bytes = Frame::Samples {
            session: 1,
            seq: 9,
            samples: vec![5; 64],
        }
        .encode();
        bytes[10] ^= 0x01;
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        assert!(matches!(
            decoder.next_frame(),
            Err(ProtoError::BadCrc { .. })
        ));
    }

    #[test]
    fn oversized_and_zero_lengths_are_rejected() {
        for len in [0u32, (MAX_FRAME_LEN as u32) + 1, u32::MAX] {
            let mut decoder = FrameDecoder::new();
            decoder.feed(&len.to_le_bytes());
            decoder.feed(&[0u8; 16]);
            assert!(
                matches!(decoder.next_frame(), Err(ProtoError::BadLength { .. })),
                "len {len}"
            );
        }
    }

    #[test]
    fn unknown_tags_and_malformed_bodies_error_without_panicking() {
        // Unknown tag, valid CRC.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 3);
        bytes.extend_from_slice(&[0x7F, 1, 2]);
        let crc = crc32(&bytes[4..]);
        put_u32(&mut bytes, crc);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        assert_eq!(decoder.next_frame(), Err(ProtoError::UnknownTag(0x7F)));

        // Short body for the tag (Hello needs 2 bytes).
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 2);
        bytes.extend_from_slice(&[TAG_HELLO, 1]);
        let crc = crc32(&bytes[4..]);
        put_u32(&mut bytes, crc);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        assert!(matches!(
            decoder.next_frame(),
            Err(ProtoError::Malformed(_))
        ));

        // Overlong body (Hello with 2 trailing junk bytes).
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 5);
        bytes.extend_from_slice(&[TAG_HELLO, 1, 0, 9, 9]);
        let crc = crc32(&bytes[4..]);
        put_u32(&mut bytes, crc);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        assert!(matches!(
            decoder.next_frame(),
            Err(ProtoError::Malformed(_))
        ));

        // Odd sample payload.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 1 + 8 + 3);
        bytes.push(TAG_SAMPLES);
        bytes.extend_from_slice(&[0; 8]); // session + seq
        bytes.extend_from_slice(&[1, 2, 3]);
        let crc = crc32(&bytes[4..]);
        put_u32(&mut bytes, crc);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        assert_eq!(
            decoder.next_frame(),
            Err(ProtoError::Malformed("odd sample payload"))
        );
    }

    #[test]
    fn truncated_streams_are_reported_at_eof() {
        let bytes = Frame::CloseSession { session: 1 }.encode();
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes[..bytes.len() - 3]);
        assert_eq!(decoder.next_frame().expect("incomplete"), None);
        assert!(matches!(
            decoder.expect_eof(),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn adc_round_trip_is_the_identity_on_codes() {
        let mv: Vec<f64> = (-2048..2048).map(|c| c as f64 * 5.0 / 2048.0).collect();
        let mut codes = Vec::new();
        quantize_mv_into(&mv, &mut codes);
        let mut back = Vec::new();
        dequantize_mv_into(&codes, &mut back);
        let mut codes2 = Vec::new();
        quantize_mv_into(&back, &mut codes2);
        assert_eq!(codes, codes2);
        // Saturation at the rails.
        quantize_mv_into(&[100.0, -100.0], &mut codes);
        assert_eq!(codes, vec![2047, -2048]);
    }

    #[test]
    fn class_codes_cover_all_variants() {
        for class in [
            BeatClass::Normal,
            BeatClass::PrematureVentricular,
            BeatClass::LeftBundleBranchBlock,
            BeatClass::Unknown,
        ] {
            assert_eq!(code_to_class(class_to_code(class)), Some(class));
        }
        assert_eq!(code_to_class(4), None);
    }
}
