//! A deterministic fault-injecting TCP proxy — the wire-level chaos
//! harness.
//!
//! [`ChaosProxy`] sits between a node and the gateway and mangles the byte
//! stream according to a **seeded schedule**: every fault fires at a byte
//! *offset* of the connection (not at a read boundary), so the injected
//! failure is independent of socket timing and read chunking — the same
//! seed produces the same mangled stream, which is what makes every failure
//! replayable. Fault kinds ([`FaultKind`]):
//!
//! * `Corrupt` — XOR one bit of the byte at the scheduled offset (CRC
//!   failure downstream);
//! * `Duplicate` — emit a `span`-byte block twice (framing failure);
//! * `Reorder` — hold a `span`-byte block, let the next `span` bytes pass,
//!   then emit the held block (framing failure);
//! * `Truncate` — silently drop `span` bytes (mid-frame gap; the peer's
//!   decoder stalls or errors);
//! * `Stall` — stop forwarding in the faulted direction for
//!   [`ChaosConfig::stall`] (slow-loris), then recover transparently;
//! * `Trickle` — from the scheduled offset on, forward **one byte per
//!   [`ChaosConfig::stall`] interval** in the faulted direction, forever:
//!   the canonical slow-loris peer, byte-preserving but time-starving
//!   (exercises the gateway's minimum-progress reaping);
//! * `Kill` — close both sockets of the link at the scheduled offset
//!   (mid-stream death; exercises detach → resume).
//!
//! Faults draw from a **global budget** ([`ChaosConfig::max_faults`]);
//! once it is spent the proxy is a transparent relay, which is what lets
//! chaos runs *converge* to the fault-free outcome stream.
//!
//! The proxy is std-only and single-threaded in the same nonblocking style
//! as the gateway reactor: [`ChaosProxy::poll`] sweeps accept → read →
//! transform → write, and [`ChaosProxy::run`] loops until a shutdown flag
//! flips.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Which direction of the link a fault schedule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosDirection {
    /// Client → gateway bytes (samples, opens, closes).
    Up,
    /// Gateway → client bytes (outcomes, credit, reports).
    Down,
    /// Both directions, each with its own schedule.
    Both,
}

/// The kind of fault a [`ChaosProxy`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Forward everything untouched (baseline / control runs).
    Passthrough,
    /// Flip one bit of the byte at the scheduled offset.
    Corrupt,
    /// Emit a `span`-byte block twice.
    Duplicate,
    /// Swap a `span`-byte block with the `span` bytes that follow it.
    Reorder,
    /// Silently drop `span` bytes.
    Truncate,
    /// Pause forwarding in the faulted direction for `stall`.
    Stall,
    /// From the scheduled offset on, forward one byte per `stall` interval
    /// (permanent slow-loris; byte-preserving).
    Trickle,
    /// Close both sockets of the link.
    Kill,
}

/// Tunables of the chaos proxy. All offsets are deterministic functions of
/// `seed`, so a failing run replays exactly from its seed.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the fault schedule (SplitMix64).
    pub seed: u64,
    /// What to inject.
    pub kind: FaultKind,
    /// Byte offset (per connection, per direction) around which the first
    /// fault fires; the exact offset adds a small seeded jitter.
    pub first_at: u64,
    /// Gap between subsequent faults on the same connection; `0` means at
    /// most one fault per connection per direction.
    pub repeat_every: u64,
    /// Global fault budget: total faults across the proxy's lifetime.
    /// Once spent, the proxy forwards transparently.
    pub max_faults: u32,
    /// Which direction(s) the schedule arms.
    pub direction: ChaosDirection,
    /// Bytes affected by one duplicate/reorder/truncate event.
    pub span: usize,
    /// Pause length for [`FaultKind::Stall`].
    pub stall: Duration,
}

impl ChaosConfig {
    /// A one-shot upstream fault of `kind` with defaults sized for the
    /// gateway protocol (fires a few KiB into the stream).
    pub fn fault(kind: FaultKind, seed: u64) -> Self {
        ChaosConfig {
            seed,
            kind,
            first_at: 8 * 1024,
            repeat_every: 0,
            max_faults: 1,
            direction: ChaosDirection::Up,
            span: 32,
            stall: Duration::from_millis(200),
        }
    }

    /// A transparent relay (no faults) — the control configuration.
    pub fn passthrough() -> Self {
        ChaosConfig {
            seed: 0,
            kind: FaultKind::Passthrough,
            first_at: 0,
            repeat_every: 0,
            max_faults: 0,
            direction: ChaosDirection::Up,
            span: 0,
            stall: Duration::ZERO,
        }
    }
}

/// Counters the proxy maintains; readable via [`ChaosProxy::stats`] and
/// returned by [`ChaosProxy::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Client connections accepted (and upstream links dialled).
    pub connections: u64,
    /// Bytes relayed client → gateway (after transformation).
    pub bytes_up: u64,
    /// Bytes relayed gateway → client (after transformation).
    pub bytes_down: u64,
    /// Fault events injected (all kinds).
    pub faults_injected: u64,
    /// Stall events begun.
    pub stalls: u64,
    /// Pipes switched into trickle (one byte per interval) mode.
    pub trickles: u64,
    /// Links killed mid-stream.
    pub kills: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Multi-byte transform in progress (spans read boundaries).
#[derive(Debug)]
enum Xform {
    None,
    /// Drop this many more bytes (truncation tail).
    Skip(usize),
    /// Collect a block, then emit it twice.
    DupFill {
        buf: Vec<u8>,
        span: usize,
    },
    /// Collect the held block of a reorder.
    HoldFill {
        held: Vec<u8>,
        span: usize,
    },
    /// Pass `pass_left` bytes, then emit the held block.
    HoldPass {
        held: Vec<u8>,
        pass_left: usize,
    },
}

/// One direction of a link: transforms source bytes and buffers them for
/// the destination socket.
struct Pipe {
    /// Bytes consumed from the source so far (fault offsets index this).
    consumed: u64,
    out: Vec<u8>,
    sent: usize,
    xform: Xform,
    /// Offset of the next scheduled fault, if armed.
    next_fault_at: Option<u64>,
    rng: u64,
    stall_until: Option<Instant>,
    /// Trickle fault fired: from here on the flush side emits one byte per
    /// [`ChaosConfig::stall`] interval and the read side caps its backlog.
    trickle: bool,
    /// Earliest instant the next trickled byte may go out.
    next_emit: Option<Instant>,
    /// Source half-closed; propagate once drained.
    eof: bool,
}

impl Pipe {
    fn new(armed: bool, cfg: &ChaosConfig, rng_seed: u64) -> Self {
        let mut rng = rng_seed;
        let next_fault_at = if armed && cfg.kind != FaultKind::Passthrough {
            // Seeded jitter keeps runs with different seeds genuinely
            // different while staying chunking-independent.
            let jitter = splitmix(&mut rng) % (cfg.first_at / 4 + 1);
            Some(cfg.first_at + jitter)
        } else {
            None
        };
        Pipe {
            consumed: 0,
            out: Vec::new(),
            sent: 0,
            xform: Xform::None,
            next_fault_at,
            rng,
            stall_until: None,
            trickle: false,
            next_emit: None,
            eof: false,
        }
    }

    fn stalled(&mut self, now: Instant) -> bool {
        match self.stall_until {
            Some(until) if now < until => true,
            Some(_) => {
                self.stall_until = None;
                false
            }
            None => false,
        }
    }

    fn schedule_next(&mut self, cfg: &ChaosConfig) {
        self.next_fault_at = if cfg.repeat_every > 0 {
            let jitter = splitmix(&mut self.rng) % (cfg.repeat_every / 4 + 1);
            Some(self.consumed + cfg.repeat_every + jitter)
        } else {
            None
        };
    }

    /// Transforms `bytes` into `self.out`; returns `true` when a kill
    /// fault fired (the caller tears the link down).
    fn feed(
        &mut self,
        bytes: &[u8],
        cfg: &ChaosConfig,
        faults_left: &mut u32,
        stats: &mut ChaosStats,
        now: Instant,
    ) -> bool {
        for &b in bytes {
            let offset = self.consumed;
            self.consumed += 1;
            match &mut self.xform {
                Xform::Skip(n) => {
                    *n -= 1;
                    if *n == 0 {
                        self.xform = Xform::None;
                    }
                    continue;
                }
                Xform::DupFill { buf, span } => {
                    buf.push(b);
                    if buf.len() == *span {
                        let buf = std::mem::take(buf);
                        self.out.extend_from_slice(&buf);
                        self.out.extend_from_slice(&buf);
                        self.xform = Xform::None;
                    }
                    continue;
                }
                Xform::HoldFill { held, span } => {
                    held.push(b);
                    if held.len() == *span {
                        let held = std::mem::take(held);
                        let pass_left = *span;
                        self.xform = Xform::HoldPass { held, pass_left };
                    }
                    continue;
                }
                Xform::HoldPass { held, pass_left } => {
                    self.out.push(b);
                    *pass_left -= 1;
                    if *pass_left == 0 {
                        self.out.extend_from_slice(held);
                        self.xform = Xform::None;
                    }
                    continue;
                }
                Xform::None => {}
            }
            if *faults_left > 0 && self.next_fault_at == Some(offset) {
                *faults_left -= 1;
                stats.faults_injected += 1;
                self.schedule_next(cfg);
                let span = cfg.span.max(1);
                match cfg.kind {
                    FaultKind::Passthrough => self.out.push(b),
                    FaultKind::Corrupt => {
                        let bit = (splitmix(&mut self.rng) % 8) as u8;
                        self.out.push(b ^ (1 << bit));
                    }
                    FaultKind::Duplicate => {
                        let mut buf = Vec::with_capacity(span);
                        buf.push(b);
                        if buf.len() == span {
                            self.out.extend_from_slice(&buf);
                            self.out.extend_from_slice(&buf);
                        } else {
                            self.xform = Xform::DupFill { buf, span };
                        }
                    }
                    FaultKind::Reorder => {
                        let mut held = Vec::with_capacity(span);
                        held.push(b);
                        if held.len() == span {
                            self.xform = Xform::HoldPass {
                                held,
                                pass_left: span,
                            };
                        } else {
                            self.xform = Xform::HoldFill { held, span };
                        }
                    }
                    FaultKind::Truncate => {
                        if span > 1 {
                            self.xform = Xform::Skip(span - 1);
                        }
                    }
                    FaultKind::Stall => {
                        self.out.push(b);
                        self.stall_until = Some(now + cfg.stall);
                        stats.stalls += 1;
                    }
                    FaultKind::Trickle => {
                        // Byte-preserving: the transform is pure relay; the
                        // starvation happens on the flush side.
                        self.out.push(b);
                        if !self.trickle {
                            self.trickle = true;
                            stats.trickles += 1;
                        }
                    }
                    FaultKind::Kill => {
                        stats.kills += 1;
                        return true;
                    }
                }
            } else {
                self.out.push(b);
            }
        }
        false
    }

    fn queued(&self) -> usize {
        self.out.len() - self.sent
    }
}

/// One proxied connection: the accepted client socket, the dialled
/// upstream socket and a transform pipe per direction.
struct Link {
    client: TcpStream,
    server: TcpStream,
    up: Pipe,
    down: Pipe,
    dead: bool,
}

/// The fault-injecting proxy. Bind it in front of a gateway, point the
/// node at [`ChaosProxy::local_addr`], and drive it with
/// [`ChaosProxy::run`] on a thread (or [`ChaosProxy::poll`] inline).
pub struct ChaosProxy {
    listener: TcpListener,
    upstream: SocketAddr,
    config: ChaosConfig,
    links: Vec<Option<Link>>,
    stats: ChaosStats,
    faults_left: u32,
    /// Per-connection schedule seeds derive from this stream.
    seed_state: u64,
}

impl ChaosProxy {
    /// Binds the proxy on an ephemeral loopback port, relaying to
    /// `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener or resolving
    /// `upstream`.
    pub fn bind(upstream: impl ToSocketAddrs, config: ChaosConfig) -> std::io::Result<Self> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("upstream resolved to no address"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let faults_left = config.max_faults;
        let seed_state = config.seed;
        Ok(ChaosProxy {
            listener,
            upstream,
            config,
            links: Vec::new(),
            stats: ChaosStats::default(),
            faults_left,
            seed_state,
        })
    }

    /// The address clients should dial.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Counters so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Runs the proxy until `shutdown` flips, then returns the counters.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-link errors only drop the
    /// affected link.
    pub fn run(mut self, shutdown: &AtomicBool) -> std::io::Result<ChaosStats> {
        while !shutdown.load(Ordering::Acquire) {
            if !self.poll()? {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        Ok(self.stats)
    }

    /// One sweep: accept, read + transform + write both directions of
    /// every link. Returns whether any bytes moved.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors.
    pub fn poll(&mut self) -> std::io::Result<bool> {
        let mut progress = self.accept_new()?;
        for idx in 0..self.links.len() {
            progress |= self.service_link(idx);
        }
        Ok(progress)
    }

    fn accept_new(&mut self) -> std::io::Result<bool> {
        let mut accepted = false;
        loop {
            match self.listener.accept() {
                Ok((client, _peer)) => {
                    // Loopback connect is immediate; nonblocking afterwards.
                    let Ok(server) = TcpStream::connect(self.upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    client.set_nonblocking(true)?;
                    server.set_nonblocking(true)?;
                    let _ = client.set_nodelay(true);
                    let _ = server.set_nodelay(true);
                    let arm_up = matches!(
                        self.config.direction,
                        ChaosDirection::Up | ChaosDirection::Both
                    );
                    let arm_down = matches!(
                        self.config.direction,
                        ChaosDirection::Down | ChaosDirection::Both
                    );
                    let up_seed = splitmix(&mut self.seed_state);
                    let down_seed = splitmix(&mut self.seed_state);
                    let link = Link {
                        client,
                        server,
                        up: Pipe::new(arm_up, &self.config, up_seed),
                        down: Pipe::new(arm_down, &self.config, down_seed),
                        dead: false,
                    };
                    let slot = self.links.iter().position(Option::is_none);
                    match slot {
                        Some(i) => self.links[i] = Some(link),
                        None => self.links.push(Some(link)),
                    }
                    self.stats.connections += 1;
                    accepted = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(accepted)
    }

    fn service_link(&mut self, idx: usize) -> bool {
        let Some(link) = self.links[idx].as_mut() else {
            return false;
        };
        let now = Instant::now();
        let cfg = &self.config;
        let stats = &mut self.stats;
        let faults_left = &mut self.faults_left;
        let mut progress = false;
        let mut kill = false;

        // Read + transform each direction unless it is mid-stall (a
        // stalled pipe also stops reading, so back-pressure propagates to
        // the source instead of ballooning the proxy).
        for dir in 0..2 {
            let (src, pipe) = if dir == 0 {
                (&mut link.client, &mut link.up)
            } else {
                (&mut link.server, &mut link.down)
            };
            if pipe.eof || pipe.stalled(now) {
                continue;
            }
            // A trickling pipe stops reading once a small backlog has
            // accumulated, so back-pressure reaches the source instead of
            // ballooning the proxy.
            if pipe.trickle && pipe.queued() >= 16 * 1024 {
                continue;
            }
            let mut buf = [0u8; 16 * 1024];
            loop {
                match src.read(&mut buf) {
                    Ok(0) => {
                        pipe.eof = true;
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        if pipe.feed(&buf[..n], cfg, faults_left, stats, now) {
                            kill = true;
                        }
                        if kill {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        link.dead = true;
                        break;
                    }
                }
            }
            if kill || link.dead {
                break;
            }
        }

        if kill || link.dead {
            let _ = link.client.shutdown(Shutdown::Both);
            let _ = link.server.shutdown(Shutdown::Both);
            self.links[idx] = None;
            return true;
        }

        // Flush each direction (skipping stalled pipes), then propagate
        // half-closes once drained.
        for dir in 0..2 {
            let (dst, pipe) = if dir == 0 {
                (&mut link.server, &mut link.up)
            } else {
                (&mut link.client, &mut link.down)
            };
            if pipe.stall_until.is_some() && pipe.stalled(now) {
                continue;
            }
            if pipe.trickle {
                // One byte per `stall` interval: the slow-loris drip.
                let due = pipe.next_emit.is_none_or(|t| now >= t);
                if due && pipe.queued() > 0 {
                    match dst.write(&pipe.out[pipe.sent..=pipe.sent]) {
                        Ok(0) => link.dead = true,
                        Ok(n) => {
                            pipe.sent += n;
                            if dir == 0 {
                                stats.bytes_up += n as u64;
                            } else {
                                stats.bytes_down += n as u64;
                            }
                            pipe.next_emit = Some(now + cfg.stall);
                            progress = true;
                        }
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => link.dead = true,
                    }
                }
                if pipe.sent == pipe.out.len() {
                    pipe.out.clear();
                    pipe.sent = 0;
                    if pipe.eof {
                        let _ = dst.shutdown(Shutdown::Write);
                    }
                }
                continue;
            }
            while pipe.sent < pipe.out.len() {
                match dst.write(&pipe.out[pipe.sent..]) {
                    Ok(0) => {
                        link.dead = true;
                        break;
                    }
                    Ok(n) => {
                        pipe.sent += n;
                        if dir == 0 {
                            stats.bytes_up += n as u64;
                        } else {
                            stats.bytes_down += n as u64;
                        }
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        link.dead = true;
                        break;
                    }
                }
            }
            if pipe.sent == pipe.out.len() {
                pipe.out.clear();
                pipe.sent = 0;
                if pipe.eof {
                    let _ = dst.shutdown(Shutdown::Write);
                }
            } else if pipe.sent > 64 * 1024 {
                pipe.out.drain(..pipe.sent);
                pipe.sent = 0;
            }
        }

        if link.dead
            || (link.up.eof && link.down.eof && link.up.queued() == 0 && link.down.queued() == 0)
        {
            let _ = link.client.shutdown(Shutdown::Both);
            let _ = link.server.shutdown(Shutdown::Both);
            self.links[idx] = None;
        }
        progress
    }
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.listener.local_addr().ok())
            .field("upstream", &self.upstream)
            .field("stats", &self.stats)
            .field("faults_left", &self.faults_left)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_offsets_are_chunking_invariant() {
        // Feeding the same bytes in different chunkings yields the same
        // transformed output — the schedule indexes byte offsets.
        let cfg = ChaosConfig {
            seed: 7,
            kind: FaultKind::Corrupt,
            first_at: 64,
            repeat_every: 128,
            max_faults: 8,
            direction: ChaosDirection::Up,
            span: 4,
            stall: Duration::ZERO,
        };
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let now = Instant::now();

        let run = |chunk: usize| {
            let mut pipe = Pipe::new(true, &cfg, 99);
            let mut stats = ChaosStats::default();
            let mut left = cfg.max_faults;
            for c in data.chunks(chunk) {
                assert!(!pipe.feed(c, &cfg, &mut left, &mut stats, now));
            }
            (pipe.out.clone(), stats.faults_injected)
        };

        let (whole, n1) = run(data.len());
        let (bytewise, n2) = run(1);
        let (ragged, n3) = run(23);
        assert_eq!(whole, bytewise);
        assert_eq!(whole, ragged);
        assert_eq!(n1, n2);
        assert_eq!(n2, n3);
        assert!(n1 > 0, "schedule must fire within 1 KiB");
        assert_ne!(whole, data, "corruption must change the stream");
    }

    #[test]
    fn every_multibyte_fault_changes_or_shortens_the_stream() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 256) as u8).collect();
        let now = Instant::now();
        for kind in [
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Truncate,
        ] {
            let cfg = ChaosConfig {
                first_at: 100,
                span: 16,
                ..ChaosConfig::fault(kind, 3)
            };
            let mut pipe = Pipe::new(true, &cfg, 5);
            let mut stats = ChaosStats::default();
            let mut left = cfg.max_faults;
            assert!(!pipe.feed(&data, &cfg, &mut left, &mut stats, now));
            assert_eq!(stats.faults_injected, 1);
            match kind {
                FaultKind::Duplicate => assert_eq!(pipe.out.len(), data.len() + 16),
                FaultKind::Reorder => {
                    assert_eq!(pipe.out.len(), data.len());
                    assert_ne!(pipe.out, data);
                }
                FaultKind::Truncate => assert_eq!(pipe.out.len(), data.len() - 16),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn passthrough_and_spent_budget_forward_identically() {
        let data: Vec<u8> = (0..512u32).map(|i| i as u8).collect();
        let now = Instant::now();
        let cfg = ChaosConfig::passthrough();
        let mut pipe = Pipe::new(true, &cfg, 1);
        let mut stats = ChaosStats::default();
        let mut left = 0u32;
        assert!(!pipe.feed(&data, &cfg, &mut left, &mut stats, now));
        assert_eq!(pipe.out, data);
        assert_eq!(stats.faults_injected, 0);

        // Budget exhausted → transparent even with a destructive kind.
        let cfg = ChaosConfig {
            first_at: 8,
            ..ChaosConfig::fault(FaultKind::Truncate, 2)
        };
        let mut pipe = Pipe::new(true, &cfg, 1);
        let mut left = 0u32;
        assert!(!pipe.feed(&data, &cfg, &mut left, &mut stats, now));
        assert_eq!(pipe.out, data);
    }

    #[test]
    fn trickle_preserves_bytes_and_arms_once() {
        // The trickle transform is a pure relay — the starvation is pure
        // timing on the flush side — so the scheduled stream survives
        // byte-identically and the chunking-invariance argument of the
        // other faults carries over unchanged.
        let data: Vec<u8> = (0..2048u32).map(|i| (i * 17 % 256) as u8).collect();
        let now = Instant::now();
        let cfg = ChaosConfig {
            first_at: 100,
            repeat_every: 200,
            max_faults: 5,
            ..ChaosConfig::fault(FaultKind::Trickle, 21)
        };
        let mut pipe = Pipe::new(true, &cfg, 8);
        let mut stats = ChaosStats::default();
        let mut left = cfg.max_faults;
        assert!(!pipe.feed(&data, &cfg, &mut left, &mut stats, now));
        assert_eq!(pipe.out, data, "trickle must not change the byte stream");
        assert!(pipe.trickle, "pipe must be in trickle mode after the fault");
        assert_eq!(stats.trickles, 1, "re-fires must not re-count the mode");
        assert!(stats.faults_injected >= 1);
    }

    #[test]
    fn kill_fires_once_at_its_offset() {
        let data = vec![0u8; 1024];
        let now = Instant::now();
        let cfg = ChaosConfig {
            first_at: 100,
            ..ChaosConfig::fault(FaultKind::Kill, 11)
        };
        let mut pipe = Pipe::new(true, &cfg, 4);
        let mut stats = ChaosStats::default();
        let mut left = cfg.max_faults;
        assert!(pipe.feed(&data, &cfg, &mut left, &mut stats, now));
        assert_eq!(stats.kills, 1);
        assert!(
            pipe.out.len() < data.len(),
            "bytes after the kill offset are discarded"
        );
    }
}
