//! The blocking node-side client: what a WBSN node (or a test harness)
//! speaks to the gateway.
//!
//! [`NodeClient`] multiplexes any number of sessions over one TCP
//! connection. Sending respects the gateway's credit grants: when a
//! session's credit is exhausted, [`NodeClient::send_mv`] blocks — reading
//! and dispatching incoming frames (outcomes, credit, reports) — until the
//! gateway returns credit. That is the sender half of the flow-control
//! contract: a slow gateway (or a gateway back-pressured by this client not
//! reading fast enough) stalls the sender instead of growing buffers on
//! either side.
//!
//! ## Replay and resume
//!
//! Every sample frame is queued in a per-session **replay buffer** before it
//! goes on the wire and stays there until the gateway acknowledges it (the
//! cumulative `acked_seq` riding on [`Frame::Credit`]). The buffer is
//! bounded: acknowledged frames are trimmed immediately, so for a compliant
//! gateway it never holds more than a credit budget's worth of samples plus
//! the chunk currently being sent. When the link dies mid-session,
//! [`NodeClient::reconnect_with_backoff`] dials again (exponential
//! backoff), re-attaches every open session with
//! [`Frame::ResumeSession`], discards replay entries the gateway already
//! received (`next_expected_seq`) and retransmits the rest — so the
//! gateway's stream is gap-free and duplicate-free without re-running
//! threshold calibration.
//!
//! After a transport error the client is **broken**: every send fails until
//! a successful reconnect. Samples handed to [`NodeClient::send_mv`] /
//! [`NodeClient::send_adc`] before the error are already queued for replay
//! and must not be sent again by the caller.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use hbc_embedded::firmware::BeatOutcome;

use crate::proto::{
    quantize_mv_into, Frame, FrameDecoder, WireReport, MAX_SAMPLES_PER_FRAME, PROTOCOL_VERSION,
};
use crate::NetError;

/// Client-side view of one open session.
#[derive(Debug, Default)]
struct ClientSession {
    /// Patient id the session was opened for (echoed in resume requests).
    patient_id: u32,
    /// Resume token from [`Frame::SessionOpened`].
    token: u64,
    credit: usize,
    /// Next sequence number to assign to a queued sample frame.
    next_seq: u32,
    /// Sample frames below this sequence number are acknowledged by the
    /// gateway (safely buffered there) and dropped from replay.
    acked_seq: u32,
    /// Largest frame worth queueing: `min(MAX_SAMPLES_PER_FRAME, budget)`,
    /// so every queued frame can eventually be covered by credit.
    frame_cap: usize,
    /// Unacknowledged sample frames, oldest first: `(seq, codes)`.
    replay: VecDeque<(u32, Vec<i16>)>,
    /// How many frames at the front of `replay` have been written to the
    /// *current* connection (reset to 0 on resume → full retransmit of
    /// whatever the gateway reports missing).
    transmitted: usize,
    outcomes: Vec<BeatOutcome>,
    report: Option<WireReport>,
}

/// Summary returned by [`NodeClient::close_session`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Every beat outcome the gateway streamed back, in temporal order.
    pub outcomes: Vec<BeatOutcome>,
    /// The gateway's final counters for the session.
    pub report: WireReport,
}

/// Blocking client for the gateway protocol.
#[derive(Debug)]
pub struct NodeClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    sessions: HashMap<u32, ClientSession>,
    /// Session ids acknowledged but not yet claimed by `open_session`.
    opened: Vec<u32>,
    /// Fatal [`Frame::Deny`] received from the gateway, if any.
    denied: Option<String>,
    /// A transport or protocol error poisoned the current connection; all
    /// traffic fails until [`NodeClient::reconnect_with_backoff`] succeeds.
    broken: bool,
    /// Read/write timeout applied to the transport (and re-applied after a
    /// reconnect). A timeout surfaces as an I/O error, breaking the
    /// connection — the recovery path is a resume.
    io_timeout: Option<Duration>,
}

impl NodeClient {
    /// Connects and performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, protocol errors or a version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = NodeClient {
            stream,
            decoder: FrameDecoder::new(),
            sessions: HashMap::new(),
            opened: Vec::new(),
            denied: None,
            broken: false,
            io_timeout: None,
        };
        client.handshake()?;
        Ok(client)
    }

    /// Bounds every blocking read/write on the transport: a link that goes
    /// quiet for longer errors out instead of hanging, which is what turns
    /// a byte-swallowing fault (truncation, stalled proxy) into a clean
    /// reconnect-and-resume. Survives reconnects.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        self.io_timeout = timeout;
        Ok(())
    }

    fn handshake(&mut self) -> Result<(), NetError> {
        self.send_frame(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        let hello = self.wait_frame(|f| matches!(f, Frame::Hello { .. }))?;
        match hello {
            Frame::Hello { version } if version == PROTOCOL_VERSION => Ok(()),
            Frame::Hello { version } => Err(NetError::State(format!(
                "gateway speaks protocol version {version}, this client {PROTOCOL_VERSION}"
            ))),
            _ => unreachable!("wait_frame matched Hello"),
        }
    }

    /// Opens a session and blocks until the gateway acknowledges it,
    /// returning the wire session id.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn open_session(
        &mut self,
        patient_id: u32,
        fs: f64,
        calib_len: u32,
    ) -> Result<u32, NetError> {
        self.check_usable()?;
        self.send_frame(&Frame::OpenSession {
            patient_id,
            fs_millihertz: (fs * 1000.0).round() as u32,
            calib_len,
        })?;
        while self.opened.is_empty() {
            self.read_and_dispatch()?;
        }
        let id = self.opened.remove(0);
        if let Some(s) = self.sessions.get_mut(&id) {
            s.patient_id = patient_id;
        }
        Ok(id)
    }

    /// Remaining credit of a session, in samples.
    pub fn credit(&self, session: u32) -> usize {
        self.sessions.get(&session).map_or(0, |s| s.credit)
    }

    /// Outcomes received so far for a session (kept until the session is
    /// closed).
    pub fn outcomes(&self, session: u32) -> &[BeatOutcome] {
        self.sessions
            .get(&session)
            .map_or(&[], |s| s.outcomes.as_slice())
    }

    /// Whether the gateway already sent the session's final report (the
    /// session ended — close or eviction); drain it with
    /// [`NodeClient::wait_session_end`].
    pub fn session_ended(&self, session: u32) -> bool {
        self.sessions
            .get(&session)
            .is_some_and(|s| s.report.is_some())
    }

    /// Sample frames currently held for replay (sent or queued but not yet
    /// acknowledged) — the boundedness witness for the replay buffer.
    pub fn replay_depth(&self, session: u32) -> usize {
        self.sessions.get(&session).map_or(0, |s| s.replay.len())
    }

    /// Drains whatever frames the gateway has already sent, without
    /// blocking. Useful between sends to keep outcome buffers fresh.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn pump(&mut self) -> Result<(), NetError> {
        self.stream.set_nonblocking(true)?;
        let result = self.read_available();
        self.stream.set_nonblocking(false)?;
        result?;
        self.dispatch_buffered()
    }

    /// Streams millivolt samples into a session, quantising to wire ADC
    /// codes and splitting into protocol-sized frames. Blocks while the
    /// session is out of credit.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`]. On a
    /// transport error the samples are already queued for replay: reconnect
    /// with [`NodeClient::reconnect_with_backoff`] and do **not** re-send
    /// them.
    pub fn send_mv(&mut self, session: u32, samples_mv: &[f64]) -> Result<(), NetError> {
        let mut codes = Vec::new();
        quantize_mv_into(samples_mv, &mut codes);
        self.send_adc(session, &codes)
    }

    /// Streams raw ADC codes into a session (see [`Self::send_mv`]).
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn send_adc(&mut self, session: u32, codes: &[i16]) -> Result<(), NetError> {
        // Queue first (infallible), then drive transmission. The split
        // makes error recovery unambiguous: whatever was handed to this
        // call is in the replay buffer, so after a reconnect the caller
        // continues with *new* samples only.
        let s = self.session_mut(session)?;
        if s.report.is_some() {
            return Err(NetError::State(format!(
                "session {session} was ended by the gateway mid-send \
                 (final report received; drain it with wait_session_end)"
            )));
        }
        let cap = s.frame_cap.max(1);
        for chunk in codes.chunks(cap) {
            let seq = s.next_seq;
            s.next_seq += 1;
            s.replay.push_back((seq, chunk.to_vec()));
        }
        self.transmit_queued(session)
    }

    /// Writes queued replay frames to the wire as credit allows, blocking
    /// on the gateway when out of credit.
    fn transmit_queued(&mut self, session: u32) -> Result<(), NetError> {
        loop {
            self.check_usable()?;
            self.pump()?;
            let s = self.session(session)?;
            if s.transmitted >= s.replay.len() {
                return Ok(());
            }
            if s.report.is_some() {
                return Err(NetError::State(format!(
                    "session {session} was ended by the gateway mid-send \
                     (final report received; drain it with wait_session_end)"
                )));
            }
            let frame_len = s.replay[s.transmitted].1.len();
            if s.credit < frame_len {
                // Out of credit: block until the gateway grants more.
                self.read_and_dispatch()?;
                continue;
            }
            let s = self.session_mut(session)?;
            let (seq, codes) = s.replay[s.transmitted].clone();
            s.credit -= frame_len;
            s.transmitted += 1;
            self.send_frame(&Frame::Samples {
                session,
                seq,
                samples: codes,
            })?;
        }
    }

    /// Closes a session and blocks for the gateway's final
    /// [`Frame::Report`], returning every outcome received plus the report.
    ///
    /// Safe to call again after a reconnect: queued frames are flushed
    /// first and the close request is re-issued.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn close_session(&mut self, session: u32) -> Result<SessionSummary, NetError> {
        self.session(session)?;
        if !self.session_ended(session) {
            self.transmit_queued(session)?;
            self.send_frame(&Frame::CloseSession { session })?;
        }
        while self.session(session)?.report.is_none() {
            self.read_and_dispatch()?;
        }
        let s = self.sessions.remove(&session).expect("checked above");
        Ok(SessionSummary {
            outcomes: s.outcomes,
            report: s.report.expect("loop above"),
        })
    }

    /// Waits for a session to end without asking for it — e.g. for the
    /// gateway's idle eviction — returning the final summary.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn wait_session_end(&mut self, session: u32) -> Result<SessionSummary, NetError> {
        while self.session(session)?.report.is_none() {
            self.read_and_dispatch()?;
        }
        let s = self.sessions.remove(&session).expect("checked above");
        Ok(SessionSummary {
            outcomes: s.outcomes,
            report: s.report.expect("loop above"),
        })
    }

    /// Dials `addr` with exponential backoff and re-attaches every open
    /// session via [`Frame::ResumeSession`]: replay entries the gateway
    /// already holds are dropped, the rest are retransmitted, and credit
    /// restarts at the absolute figure from [`Frame::SessionResumed`].
    ///
    /// # Errors
    ///
    /// Fails when every dial attempt errors, on a [`Frame::Deny`] (unknown
    /// or expired token — the session is unrecoverable), or on
    /// socket/protocol errors during re-attachment. A [`Frame::Busy`] from
    /// the gateway's admission control is **not** fatal: the client honors
    /// the embedded `retry_after_ms` pause and spends another attempt.
    pub fn reconnect_with_backoff(
        &mut self,
        addr: impl ToSocketAddrs,
        attempts: u32,
        base_delay: Duration,
    ) -> Result<(), NetError> {
        let mut delay = base_delay;
        let mut last_err: Option<NetError> = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match TcpStream::connect(&addr) {
                Ok(stream) => match self.resume_on(stream) {
                    // The gateway is overloaded, not unreachable: honor its
                    // retry hint, then spend another attempt.
                    Err(NetError::Busy(after)) => {
                        std::thread::sleep(after);
                        last_err = Some(NetError::Busy(after));
                    }
                    done => return done,
                },
                Err(e) => last_err = Some(e.into()),
            }
        }
        Err(last_err.unwrap_or(NetError::State("no connection attempts made".into())))
    }

    /// Replaces the transport with `stream` and resumes every open session.
    fn resume_on(&mut self, stream: TcpStream) -> Result<(), NetError> {
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        self.stream = stream;
        self.decoder = FrameDecoder::new();
        self.denied = None;
        self.broken = false;
        self.handshake()?;
        let mut ids: Vec<u32> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.report.is_none())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let s = self.session(id)?;
            let request = Frame::ResumeSession {
                patient_id: s.patient_id,
                session_token: s.token,
                last_acked_seq: s.acked_seq,
                outcomes_received: s.outcomes.len() as u64,
            };
            self.send_frame(&request)?;
            let resumed = self.wait_frame(|f| matches!(f, Frame::SessionResumed { .. }))?;
            let Frame::SessionResumed {
                session,
                next_expected_seq,
                credit,
            } = resumed
            else {
                unreachable!("wait_frame matched SessionResumed");
            };
            if session != id {
                return Err(NetError::State(format!(
                    "gateway resumed session {session}, expected {id}"
                )));
            }
            let s = self.session_mut(id)?;
            while s
                .replay
                .front()
                .is_some_and(|(seq, _)| *seq < next_expected_seq)
            {
                s.replay.pop_front();
            }
            s.acked_seq = next_expected_seq;
            s.credit = credit as usize;
            s.transmitted = 0;
            self.transmit_queued(id)?;
        }
        Ok(())
    }

    /// Abruptly shuts the transport down (both directions) without telling
    /// the gateway — a link failure in miniature, for tests and the chaos
    /// harness. Subsequent traffic fails until
    /// [`NodeClient::reconnect_with_backoff`].
    pub fn sever(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.broken = true;
    }

    fn check_usable(&self) -> Result<(), NetError> {
        if self.broken {
            return Err(NetError::State(
                "connection is broken; call reconnect_with_backoff".into(),
            ));
        }
        Ok(())
    }

    fn session(&self, session: u32) -> Result<&ClientSession, NetError> {
        self.sessions
            .get(&session)
            .ok_or_else(|| NetError::State(format!("unknown session {session}")))
    }

    fn session_mut(&mut self, session: u32) -> Result<&mut ClientSession, NetError> {
        self.sessions
            .get_mut(&session)
            .ok_or_else(|| NetError::State(format!("unknown session {session}")))
    }

    fn send_frame(&mut self, frame: &Frame) -> Result<(), NetError> {
        let bytes = frame.encode();
        if let Err(e) = self.stream.write_all(&bytes) {
            self.broken = true;
            return Err(e.into());
        }
        Ok(())
    }

    /// Blocking read of at least one byte, then dispatch of every complete
    /// frame.
    fn read_and_dispatch(&mut self) -> Result<(), NetError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.broken = true;
                    return Err(self
                        .denied
                        .take()
                        .map_or(NetError::Closed, NetError::Denied));
                }
                Ok(n) => {
                    self.decoder.feed(&buf[..n]);
                    break;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.broken = true;
                    return Err(e.into());
                }
            }
        }
        self.dispatch_buffered()
    }

    /// Nonblocking read of everything currently available.
    fn read_available(&mut self) -> Result<(), NetError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.broken = true;
                    return Err(self
                        .denied
                        .take()
                        .map_or(NetError::Closed, NetError::Denied));
                }
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.broken = true;
                    return Err(e.into());
                }
            }
        }
    }

    fn dispatch_buffered(&mut self) -> Result<(), NetError> {
        while let Some(frame) = self.decoder.next_frame()? {
            self.dispatch(frame)?;
        }
        Ok(())
    }

    fn wait_frame(&mut self, want: impl Fn(&Frame) -> bool) -> Result<Frame, NetError> {
        loop {
            while let Some(frame) = self.decoder.next_frame()? {
                if want(&frame) {
                    return Ok(frame);
                }
                self.dispatch(frame)?;
            }
            let mut buf = [0u8; 16 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.broken = true;
                    return Err(self
                        .denied
                        .take()
                        .map_or(NetError::Closed, NetError::Denied));
                }
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.broken = true;
                    return Err(e.into());
                }
            }
        }
    }

    fn dispatch(&mut self, frame: Frame) -> Result<(), NetError> {
        match frame {
            Frame::SessionOpened {
                session,
                credit,
                token,
            } => {
                self.sessions.insert(
                    session,
                    ClientSession {
                        token,
                        credit: credit as usize,
                        frame_cap: (credit as usize).min(MAX_SAMPLES_PER_FRAME),
                        ..ClientSession::default()
                    },
                );
                self.opened.push(session);
            }
            Frame::Credit {
                session,
                grant,
                acked_seq,
            } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.credit += grant as usize;
                    if acked_seq > s.acked_seq {
                        s.acked_seq = acked_seq;
                        while s.replay.front().is_some_and(|(seq, _)| *seq < acked_seq) {
                            s.replay.pop_front();
                            s.transmitted = s.transmitted.saturating_sub(1);
                        }
                    }
                }
            }
            Frame::Outcomes { session, outcomes } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    for o in outcomes {
                        s.outcomes.push(o.to_outcome().ok_or(NetError::State(
                            "gateway sent an out-of-protocol class code".into(),
                        ))?);
                    }
                }
            }
            Frame::Report { session, report } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.report = Some(report);
                }
            }
            Frame::Deny { message } => {
                self.denied = Some(message.clone());
                self.broken = true;
                return Err(NetError::Denied(message));
            }
            Frame::Busy { retry_after_ms } => {
                // Admission control, not a violation: the gateway closes
                // this connection but invites a retry after the pause.
                self.broken = true;
                return Err(NetError::Busy(Duration::from_millis(u64::from(
                    retry_after_ms,
                ))));
            }
            Frame::Hello { .. } => {
                return Err(NetError::State("unexpected Hello after handshake".into()))
            }
            Frame::SessionResumed { .. } => {
                return Err(NetError::State(
                    "unsolicited SessionResumed outside a resume".into(),
                ))
            }
            Frame::OpenSession { .. }
            | Frame::Samples { .. }
            | Frame::CloseSession { .. }
            | Frame::ResumeSession { .. } => {
                return Err(NetError::State("gateway sent a client-only frame".into()))
            }
        }
        Ok(())
    }
}
