//! The blocking node-side client: what a WBSN node (or a test harness)
//! speaks to the gateway.
//!
//! [`NodeClient`] multiplexes any number of sessions over one TCP
//! connection. Sending respects the gateway's credit grants: when a
//! session's credit is exhausted, [`NodeClient::send_mv`] blocks — reading
//! and dispatching incoming frames (outcomes, credit, reports) — until the
//! gateway returns credit. That is the sender half of the flow-control
//! contract: a slow gateway (or a gateway back-pressured by this client not
//! reading fast enough) stalls the sender instead of growing buffers on
//! either side.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use hbc_embedded::firmware::BeatOutcome;

use crate::proto::{
    quantize_mv_into, Frame, FrameDecoder, WireReport, MAX_SAMPLES_PER_FRAME, PROTOCOL_VERSION,
};
use crate::NetError;

/// Client-side view of one open session.
#[derive(Debug, Default)]
struct ClientSession {
    credit: usize,
    next_seq: u32,
    outcomes: Vec<BeatOutcome>,
    report: Option<WireReport>,
}

/// Summary returned by [`NodeClient::close_session`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Every beat outcome the gateway streamed back, in temporal order.
    pub outcomes: Vec<BeatOutcome>,
    /// The gateway's final counters for the session.
    pub report: WireReport,
}

/// Blocking client for the gateway protocol.
#[derive(Debug)]
pub struct NodeClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    sessions: HashMap<u32, ClientSession>,
    /// Session ids acknowledged but not yet claimed by `open_session`.
    opened: Vec<u32>,
    /// Fatal [`Frame::Deny`] received from the gateway, if any.
    denied: Option<String>,
}

impl NodeClient {
    /// Connects and performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, protocol errors or a version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = NodeClient {
            stream,
            decoder: FrameDecoder::new(),
            sessions: HashMap::new(),
            opened: Vec::new(),
            denied: None,
        };
        client.send_frame(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        let hello = client.wait_frame(|f| matches!(f, Frame::Hello { .. }))?;
        match hello {
            Frame::Hello { version } if version == PROTOCOL_VERSION => Ok(client),
            Frame::Hello { version } => Err(NetError::State(format!(
                "gateway speaks protocol version {version}, this client {PROTOCOL_VERSION}"
            ))),
            _ => unreachable!("wait_frame matched Hello"),
        }
    }

    /// Opens a session and blocks until the gateway acknowledges it,
    /// returning the wire session id.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn open_session(
        &mut self,
        patient_id: u32,
        fs: f64,
        calib_len: u32,
    ) -> Result<u32, NetError> {
        self.send_frame(&Frame::OpenSession {
            patient_id,
            fs_millihertz: (fs * 1000.0).round() as u32,
            calib_len,
        })?;
        while self.opened.is_empty() {
            self.read_and_dispatch()?;
        }
        Ok(self.opened.remove(0))
    }

    /// Remaining credit of a session, in samples.
    pub fn credit(&self, session: u32) -> usize {
        self.sessions.get(&session).map_or(0, |s| s.credit)
    }

    /// Outcomes received so far for a session (kept until the session is
    /// closed).
    pub fn outcomes(&self, session: u32) -> &[BeatOutcome] {
        self.sessions
            .get(&session)
            .map_or(&[], |s| s.outcomes.as_slice())
    }

    /// Drains whatever frames the gateway has already sent, without
    /// blocking. Useful between sends to keep outcome buffers fresh.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn pump(&mut self) -> Result<(), NetError> {
        self.stream.set_nonblocking(true)?;
        let result = self.read_available();
        self.stream.set_nonblocking(false)?;
        result?;
        self.dispatch_buffered()
    }

    /// Streams millivolt samples into a session, quantising to wire ADC
    /// codes and splitting into protocol-sized frames. Blocks while the
    /// session is out of credit.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn send_mv(&mut self, session: u32, samples_mv: &[f64]) -> Result<(), NetError> {
        let mut codes = Vec::new();
        quantize_mv_into(samples_mv, &mut codes);
        self.send_adc(session, &codes)
    }

    /// Streams raw ADC codes into a session (see [`Self::send_mv`]).
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn send_adc(&mut self, session: u32, codes: &[i16]) -> Result<(), NetError> {
        let mut rest = codes;
        while !rest.is_empty() {
            self.pump()?;
            let s = self.session(session)?;
            if s.report.is_some() {
                // The gateway ended the session (eviction) while samples
                // were still queued here: no more credit will ever arrive.
                return Err(NetError::State(format!(
                    "session {session} was ended by the gateway mid-send \
                     (final report received; drain it with wait_session_end)"
                )));
            }
            let credit = s.credit;
            if credit == 0 {
                // Out of credit: block until the gateway grants more.
                self.read_and_dispatch()?;
                continue;
            }
            let n = rest.len().min(credit).min(MAX_SAMPLES_PER_FRAME);
            let (chunk, tail) = rest.split_at(n);
            let s = self.session_mut(session)?;
            let seq = s.next_seq;
            s.next_seq += 1;
            s.credit -= n;
            self.send_frame(&Frame::Samples {
                session,
                seq,
                samples: chunk.to_vec(),
            })?;
            rest = tail;
        }
        Ok(())
    }

    /// Closes a session and blocks for the gateway's final
    /// [`Frame::Report`], returning every outcome received plus the report.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn close_session(&mut self, session: u32) -> Result<SessionSummary, NetError> {
        self.session(session)?;
        self.send_frame(&Frame::CloseSession { session })?;
        while self.session(session)?.report.is_none() {
            self.read_and_dispatch()?;
        }
        let s = self.sessions.remove(&session).expect("checked above");
        Ok(SessionSummary {
            outcomes: s.outcomes,
            report: s.report.expect("loop above"),
        })
    }

    /// Waits for a session to end without asking for it — e.g. for the
    /// gateway's idle eviction — returning the final summary.
    ///
    /// # Errors
    ///
    /// Fails on socket/protocol errors or a [`Frame::Deny`].
    pub fn wait_session_end(&mut self, session: u32) -> Result<SessionSummary, NetError> {
        while self.session(session)?.report.is_none() {
            self.read_and_dispatch()?;
        }
        let s = self.sessions.remove(&session).expect("checked above");
        Ok(SessionSummary {
            outcomes: s.outcomes,
            report: s.report.expect("loop above"),
        })
    }

    fn session(&self, session: u32) -> Result<&ClientSession, NetError> {
        self.sessions
            .get(&session)
            .ok_or_else(|| NetError::State(format!("unknown session {session}")))
    }

    fn session_mut(&mut self, session: u32) -> Result<&mut ClientSession, NetError> {
        self.sessions
            .get_mut(&session)
            .ok_or_else(|| NetError::State(format!("unknown session {session}")))
    }

    fn send_frame(&mut self, frame: &Frame) -> Result<(), NetError> {
        let bytes = frame.encode();
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Blocking read of at least one byte, then dispatch of every complete
    /// frame.
    fn read_and_dispatch(&mut self) -> Result<(), NetError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(self
                        .denied
                        .take()
                        .map_or(NetError::Closed, NetError::Denied))
                }
                Ok(n) => {
                    self.decoder.feed(&buf[..n]);
                    break;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        self.dispatch_buffered()
    }

    /// Nonblocking read of everything currently available.
    fn read_available(&mut self) -> Result<(), NetError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(self
                        .denied
                        .take()
                        .map_or(NetError::Closed, NetError::Denied))
                }
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn dispatch_buffered(&mut self) -> Result<(), NetError> {
        while let Some(frame) = self.decoder.next_frame()? {
            self.dispatch(frame)?;
        }
        Ok(())
    }

    fn wait_frame(&mut self, want: impl Fn(&Frame) -> bool) -> Result<Frame, NetError> {
        loop {
            while let Some(frame) = self.decoder.next_frame()? {
                if want(&frame) {
                    return Ok(frame);
                }
                self.dispatch(frame)?;
            }
            let mut buf = [0u8; 16 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(self
                        .denied
                        .take()
                        .map_or(NetError::Closed, NetError::Denied))
                }
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn dispatch(&mut self, frame: Frame) -> Result<(), NetError> {
        match frame {
            Frame::SessionOpened { session, credit } => {
                self.sessions.insert(
                    session,
                    ClientSession {
                        credit: credit as usize,
                        ..ClientSession::default()
                    },
                );
                self.opened.push(session);
            }
            Frame::Credit { session, grant } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.credit += grant as usize;
                }
            }
            Frame::Outcomes { session, outcomes } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    for o in outcomes {
                        s.outcomes.push(o.to_outcome().ok_or(NetError::State(
                            "gateway sent an out-of-protocol class code".into(),
                        ))?);
                    }
                }
            }
            Frame::Report { session, report } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.report = Some(report);
                }
            }
            Frame::Deny { message } => {
                self.denied = Some(message.clone());
                return Err(NetError::Denied(message));
            }
            Frame::Hello { .. } => {
                return Err(NetError::State("unexpected Hello after handshake".into()))
            }
            Frame::OpenSession { .. } | Frame::Samples { .. } | Frame::CloseSession { .. } => {
                return Err(NetError::State("gateway sent a client-only frame".into()))
            }
        }
        Ok(())
    }
}
