//! Session lifecycle management for the gateway.
//!
//! One [`NetSession`] tracks a patient stream from the wire side:
//!
//! ```text
//!  OpenSession           calib_len samples buffered      CloseSession /
//!  ───────────▶ Calibrating ───────────────────▶ Streaming ─────────▶ gone
//!                   │        thresholds from the   │        idle timeout
//!                   │        first stretch, hub    │
//!                   ▼        session created,      ▼
//!              (samples buffer)   stretch replayed  (samples flow into the
//!                                 into the stream    hub in credit-bounded
//!                                                    batches)
//! ```
//!
//! The manager is transport-agnostic: it owns the per-session sample buffer
//! (`pending`, bounded by the credit budget), the sequence check and the
//! idle clock, while the reactor in [`crate::server`] owns sockets and the
//! [`StreamHub`](hbc_core::StreamHub). That split keeps the state machine
//! testable without I/O.
//!
//! ## Resume
//!
//! When a connection dies with live sessions on it, those sessions are
//! **detached** rather than destroyed: the [`NetSession`] (and with it the
//! hub session holding the calibrated `PeakThresholds` and the stream
//! position) parks in a side table keyed by its resume token. A client that
//! reconnects within the retention window re-attaches with
//! [`crate::proto::Frame::ResumeSession`] and continues at the sequence
//! number the gateway reports — no re-calibration, no replayed samples.
//! Detached sessions the window expires are discarded and their wire ids
//! retired like any other end.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// How many ended-session ids the manager remembers for race tolerance.
/// In-flight frames for an ended session can only be a connection's
/// receive-buffer worth of traffic behind, so a small recent window
/// suffices; the cap keeps a long-running gateway's memory flat.
const RETIRED_CAP: usize = 4096;

use hbc_core::SessionId;

/// How much a session's buffered telemetry is worth protecting when the
/// gateway sheds load under its global memory budget.
///
/// Priority is **derived from the recent outcome stream** (see
/// `StreamHub::recent_abnormal`): a session whose recent beats include an
/// abnormal prediction is ARR-critical and its buffers are shed last, so the
/// safety invariant *abnormal ⇒ routed onward* holds under overload too. A
/// session can decay back to [`SessionPriority::Normal`] once its recent
/// window is clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum SessionPriority {
    /// Recent outcomes are all normal (or the session has produced none
    /// yet); buffered telemetry may be dropped first under overload.
    #[default]
    Normal,
    /// The recent outcome window contains an abnormal (ARR-flagged) beat;
    /// shed everything else before touching this stream.
    Critical,
}

/// Where a session is in its lifecycle.
#[derive(Debug)]
pub enum SessionPhase {
    /// Buffering the first `calib_len` samples; no hub session exists yet.
    Calibrating {
        /// Samples required before thresholds can be derived.
        calib_len: usize,
    },
    /// Thresholds derived, hub session live, samples flowing.
    Streaming {
        /// The hub-side session handle.
        hub: SessionId,
    },
}

/// One wire session's gateway-side state.
#[derive(Debug)]
pub struct NetSession {
    /// Wire-level id (never reused within a gateway).
    pub wire_id: u32,
    /// Resume token issued at open (unique per manager, never reused).
    pub token: u64,
    /// Index of the connection that currently owns the session.
    pub conn: usize,
    /// Patient identifier from the open request.
    pub patient_id: u32,
    /// Lifecycle phase.
    pub phase: SessionPhase,
    /// Decoded millivolt samples received but not yet consumed by the hub.
    /// Bounded by the credit budget for well-behaved senders.
    pub pending: Vec<f64>,
    /// Scratch the reactor moves a chunk into while the hub ingests it
    /// (keeps the borrow of `pending` short and reuses the allocation).
    pub chunk: Vec<f64>,
    /// Next expected [`crate::proto::Frame::Samples`] sequence number.
    pub next_seq: u32,
    /// Hub outcomes already forwarded to the client.
    pub outcomes_sent: usize,
    /// Samples consumed by the hub since the last credit grant.
    pub consumed_since_grant: usize,
    /// Total samples received over the wire.
    pub samples_received: u64,
    /// Last time a frame touched this session (drives eviction).
    pub last_activity: Instant,
    /// Shedding priority, refreshed from the recent outcome stream by the
    /// reactor's forwarding sweep.
    pub priority: SessionPriority,
    /// Arrival time of the oldest sample in `pending`, kept while the buffer
    /// is non-empty. After a partial drain the anchor is left in place: the
    /// remaining samples arrived no earlier, so latency derived from it
    /// over-estimates rather than hides queueing delay.
    pub oldest_pending_at: Option<Instant>,
    /// Arrival anchor of the chunk most recently staged into the hub; the
    /// reactor charges `now - staged_anchor` to the beat-to-outcome
    /// histogram for every outcome that chunk produced, then clears it.
    pub staged_anchor: Option<Instant>,
}

impl NetSession {
    /// Samples currently buffered gateway-side for this session.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// The hub handle, if the session has finished calibrating.
    pub fn hub_id(&self) -> Option<SessionId> {
        match self.phase {
            SessionPhase::Streaming { hub } => Some(hub),
            SessionPhase::Calibrating { .. } => None,
        }
    }
}

/// A session parked after its connection died, waiting for a
/// [`crate::proto::Frame::ResumeSession`] within the retention window.
#[derive(Debug)]
struct DetachedSession {
    session: NetSession,
    /// When the session was detached; drives retention expiry.
    since: Instant,
}

/// What [`SessionManager::resume`] decided.
#[derive(Debug, PartialEq, Eq)]
pub enum ResumeOutcome {
    /// Re-attached: the wire id of the session now owned by the new
    /// connection.
    Resumed(u32),
    /// No live or detached session carries this token (never issued, or
    /// the retention window elapsed and the session was discarded).
    UnknownToken,
    /// The token exists but belongs to a different patient id.
    WrongPatient,
}

/// Owns every live [`NetSession`] of a gateway, keyed by wire id.
#[derive(Debug, Default)]
pub struct SessionManager {
    sessions: HashMap<u32, NetSession>,
    /// Detached-but-resumable sessions, keyed by resume token.
    detached: HashMap<u64, DetachedSession>,
    /// SplitMix64 state behind token issuance — deterministic per manager,
    /// unique per session; a correlation handle, not a security boundary.
    token_state: u64,
    /// Wire ids of recently ended sessions (closed or evicted). Ends are
    /// asynchronous, so a compliant peer can still have frames for such a
    /// session in flight — the reactor ignores those instead of treating
    /// them as violations. Ids are never reused, so membership is
    /// unambiguous; retention is capped at [`RETIRED_CAP`] (oldest ids
    /// forgotten first) so a long-running gateway's memory stays flat.
    retired: HashSet<u32>,
    /// The retired ids in retirement order, backing the cap.
    retired_order: VecDeque<u32>,
    next_id: u32,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws the next resume token (SplitMix64 over a per-manager counter).
    fn next_token(&mut self) -> u64 {
        self.token_state = self.token_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.token_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Registers a new session in the calibrating phase and returns its
    /// wire id. Wire ids are assigned sequentially and never reused.
    pub fn open(&mut self, conn: usize, patient_id: u32, calib_len: usize, now: Instant) -> u32 {
        let wire_id = self.next_id;
        self.next_id += 1;
        let token = self.next_token();
        self.sessions.insert(
            wire_id,
            NetSession {
                wire_id,
                token,
                conn,
                patient_id,
                phase: SessionPhase::Calibrating { calib_len },
                pending: Vec::new(),
                chunk: Vec::new(),
                next_seq: 0,
                outcomes_sent: 0,
                consumed_since_grant: 0,
                samples_received: 0,
                last_activity: now,
                priority: SessionPriority::Normal,
                oldest_pending_at: None,
                staged_anchor: None,
            },
        );
        wire_id
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Looks a session up by wire id.
    pub fn get(&self, wire_id: u32) -> Option<&NetSession> {
        self.sessions.get(&wire_id)
    }

    /// Mutable lookup by wire id.
    pub fn get_mut(&mut self, wire_id: u32) -> Option<&mut NetSession> {
        self.sessions.get_mut(&wire_id)
    }

    /// Removes a session, returning its final state and remembering the id
    /// as retired (see [`Self::is_retired`]).
    pub fn remove(&mut self, wire_id: u32) -> Option<NetSession> {
        let removed = self.sessions.remove(&wire_id);
        if removed.is_some() {
            self.retire(wire_id);
        }
        removed
    }

    /// Whether `wire_id` belonged to a session that ended recently —
    /// frames racing an asynchronous end (eviction, connection teardown)
    /// are dropped rather than denied.
    pub fn is_retired(&self, wire_id: u32) -> bool {
        self.retired.contains(&wire_id)
    }

    /// Wire ids of every session owned by connection `conn`.
    pub fn ids_for_conn(&self, conn: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .sessions
            .values()
            .filter(|s| s.conn == conn)
            .map(|s| s.wire_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Wire ids of every live session, in id order (deterministic sweeps).
    pub fn ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.sessions.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Wire ids whose last activity is older than `idle` seconds before
    /// `now` — the eviction candidates. Detached sessions are not idle,
    /// they are waiting (their clock is the retention window).
    pub fn idle_ids(&self, now: Instant, idle: Duration) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .sessions
            .values()
            .filter(|s| now.duration_since(s.last_activity) > idle)
            .map(|s| s.wire_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Parks a live session in the detached table (its connection died).
    /// The session keeps its hub handle — calibrated thresholds and stream
    /// position survive — and waits for a resume until the retention window
    /// expires. Returns whether the wire id was live.
    pub fn detach(&mut self, wire_id: u32, now: Instant) -> bool {
        let Some(session) = self.sessions.remove(&wire_id) else {
            return false;
        };
        self.detached.insert(
            session.token,
            DetachedSession {
                session,
                since: now,
            },
        );
        true
    }

    /// Number of sessions currently parked for resume.
    pub fn detached_len(&self) -> usize {
        self.detached.len()
    }

    /// Resume tokens of every parked session, in wire-id order
    /// (deterministic shedding sweeps).
    pub fn detached_tokens(&self) -> Vec<u64> {
        let mut parked: Vec<(u32, u64)> = self
            .detached
            .iter()
            .map(|(&token, d)| (d.session.wire_id, token))
            .collect();
        parked.sort_unstable();
        parked.into_iter().map(|(_, token)| token).collect()
    }

    /// A parked session's state, by resume token.
    pub fn detached_get(&self, token: u64) -> Option<&NetSession> {
        self.detached.get(&token).map(|d| &d.session)
    }

    /// Mutable access to a parked session — the shedding path drops
    /// buffered telemetry of detached normal-priority streams too.
    pub fn detached_get_mut(&mut self, token: u64) -> Option<&mut NetSession> {
        self.detached.get_mut(&token).map(|d| &mut d.session)
    }

    /// Samples buffered across every live **and** parked session — the
    /// recount behind the reactor's incremental global-memory ledger (the
    /// reactor audits its counter against this in debug builds).
    pub fn total_buffered_samples(&self) -> usize {
        self.sessions
            .values()
            .map(NetSession::buffered)
            .chain(self.detached.values().map(|d| d.session.buffered()))
            .sum()
    }

    /// Inserts a rebuilt session directly into the detached table — the
    /// durable-log recovery path: a gateway restarted on its log directory
    /// parks every recovered session here so the owning node can re-attach
    /// with the ordinary [`crate::proto::Frame::ResumeSession`] flow.
    pub fn insert_detached(&mut self, session: NetSession, since: Instant) {
        self.detached
            .insert(session.token, DetachedSession { session, since });
    }

    /// Raises the next wire id to at least `min_next`, so ids assigned after
    /// a log recovery never collide with ids recovered from the log.
    pub fn ensure_next_id(&mut self, min_next: u32) {
        self.next_id = self.next_id.max(min_next);
    }

    /// Advances the token generator by `count` draws without issuing them.
    /// Tokens are SplitMix64 over a per-manager counter, so replaying the
    /// number of sessions ever opened (as counted from the durable log)
    /// reproduces the exact generator state of the crashed gateway — tokens
    /// issued after recovery continue the original sequence and can never
    /// collide with recovered ones.
    pub fn skip_tokens(&mut self, count: u64) {
        self.token_state = self
            .token_state
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(count));
    }

    /// Re-attaches the session carrying `token` to connection `conn`.
    ///
    /// Covers both the parked case (connection already reaped) and the
    /// takeover case (the old connection has not been noticed dead yet —
    /// the session is still live on it); either way the token holder wins.
    pub fn resume(
        &mut self,
        token: u64,
        patient_id: u32,
        conn: usize,
        now: Instant,
    ) -> ResumeOutcome {
        // Parked?
        if let Some(parked) = self.detached.get(&token) {
            if parked.session.patient_id != patient_id {
                return ResumeOutcome::WrongPatient;
            }
            let mut parked = self.detached.remove(&token).expect("present");
            parked.session.conn = conn;
            parked.session.last_activity = now;
            let wire_id = parked.session.wire_id;
            self.sessions.insert(wire_id, parked.session);
            return ResumeOutcome::Resumed(wire_id);
        }
        // Still live on a dying connection?
        let live = self
            .sessions
            .values()
            .find(|s| s.token == token)
            .map(|s| (s.wire_id, s.patient_id));
        match live {
            Some((_, pid)) if pid != patient_id => ResumeOutcome::WrongPatient,
            Some((wire_id, _)) => {
                let s = self.sessions.get_mut(&wire_id).expect("found above");
                s.conn = conn;
                s.last_activity = now;
                ResumeOutcome::Resumed(wire_id)
            }
            None => ResumeOutcome::UnknownToken,
        }
    }

    /// Removes every detached session older than `window`, retiring its
    /// wire id (stragglers and late resumes are then dropped / denied).
    /// Returns the expired sessions for the caller to dispose of
    /// (hub-session teardown).
    pub fn expire_detached(&mut self, now: Instant, window: Duration) -> Vec<NetSession> {
        let expired: Vec<u64> = self
            .detached
            .iter()
            .filter(|(_, d)| now.duration_since(d.since) > window)
            .map(|(&token, _)| token)
            .collect();
        let mut out: Vec<NetSession> = expired
            .into_iter()
            .map(|token| self.detached.remove(&token).expect("listed").session)
            .collect();
        out.sort_unstable_by_key(|s| s.wire_id);
        for s in &out {
            self.retire(s.wire_id);
        }
        out
    }

    /// Marks a wire id as recently ended (see [`Self::is_retired`]).
    fn retire(&mut self, wire_id: u32) {
        if self.retired.insert(wire_id) {
            self.retired_order.push_back(wire_id);
            while self.retired_order.len() > RETIRED_CAP {
                let oldest = self.retired_order.pop_front().expect("non-empty");
                self.retired.remove(&oldest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn wire_ids_are_sequential_and_never_reused() {
        let mut mgr = SessionManager::new();
        let now = Instant::now();
        let a = mgr.open(0, 10, 100, now);
        let b = mgr.open(1, 11, 100, now);
        assert_eq!((a, b), (0, 1));
        mgr.remove(a).expect("live");
        let c = mgr.open(0, 12, 100, now);
        assert_eq!(c, 2, "removed ids must not be reassigned");
        assert_eq!(mgr.len(), 2);
        assert_eq!(mgr.ids(), vec![1, 2]);
        assert_eq!(mgr.ids_for_conn(0), vec![2]);
        assert!(mgr.is_retired(a), "ended ids are remembered");
        assert!(!mgr.is_retired(b));
        assert!(!mgr.is_retired(99), "never-assigned ids are not retired");
    }

    #[test]
    fn retired_memory_is_capped() {
        let mut mgr = SessionManager::new();
        let now = Instant::now();
        for _ in 0..(RETIRED_CAP + 10) {
            let id = mgr.open(0, 1, 1, now);
            mgr.remove(id).expect("live");
        }
        assert!(!mgr.is_retired(0), "oldest retired ids are forgotten");
        assert!(!mgr.is_retired(9));
        assert!(mgr.is_retired(10));
        assert!(mgr.is_retired((RETIRED_CAP + 9) as u32));
    }

    #[test]
    fn idle_sessions_are_found_by_age() {
        let mut mgr = SessionManager::new();
        let past = Instant::now() - Duration::from_secs(60);
        let old = mgr.open(0, 1, 10, past);
        let now = Instant::now();
        let fresh = mgr.open(0, 2, 10, now);
        let idle = mgr.idle_ids(now, Duration::from_secs(30));
        assert_eq!(idle, vec![old]);
        assert!(mgr.get(fresh).is_some());
    }

    #[test]
    fn detach_then_resume_keeps_state_and_reassigns_the_connection() {
        let mut mgr = SessionManager::new();
        let now = Instant::now();
        let id = mgr.open(0, 42, 100, now);
        let token = mgr.get(id).expect("live").token;
        let s = mgr.get_mut(id).expect("live");
        s.next_seq = 7;
        s.samples_received = 700;

        assert!(mgr.detach(id, now));
        assert_eq!(mgr.len(), 0);
        assert_eq!(mgr.detached_len(), 1);
        assert!(
            !mgr.is_retired(id),
            "a detached session has not ended — its id must not be retired"
        );
        assert!(
            mgr.idle_ids(now + Duration::from_secs(3600), Duration::from_secs(1))
                .is_empty(),
            "detached sessions are not idle-eviction candidates"
        );

        assert_eq!(
            mgr.resume(token, 41, 3, now),
            ResumeOutcome::WrongPatient,
            "token + wrong patient must not re-attach"
        );
        assert_eq!(mgr.resume(token, 42, 3, now), ResumeOutcome::Resumed(id));
        let s = mgr.get(id).expect("re-attached");
        assert_eq!((s.conn, s.next_seq, s.samples_received), (3, 7, 700));
        assert_eq!(mgr.detached_len(), 0);
    }

    #[test]
    fn resume_of_a_still_live_session_is_a_takeover() {
        let mut mgr = SessionManager::new();
        let now = Instant::now();
        let id = mgr.open(0, 9, 64, now);
        let token = mgr.get(id).expect("live").token;
        assert_eq!(mgr.resume(token, 9, 5, now), ResumeOutcome::Resumed(id));
        assert_eq!(mgr.get(id).expect("live").conn, 5);
        assert_eq!(
            mgr.resume(0xBAD_70CEB, 9, 5, now),
            ResumeOutcome::UnknownToken
        );
    }

    #[test]
    fn detached_sessions_expire_after_the_window_and_retire_their_ids() {
        let mut mgr = SessionManager::new();
        let now = Instant::now();
        let a = mgr.open(0, 1, 10, now);
        let b = mgr.open(0, 2, 10, now);
        let token_a = mgr.get(a).expect("live").token;
        mgr.detach(a, now);
        mgr.detach(b, now + Duration::from_secs(5));

        let window = Duration::from_secs(10);
        assert!(mgr
            .expire_detached(now + Duration::from_secs(9), window)
            .is_empty());
        let expired = mgr.expire_detached(now + Duration::from_secs(12), window);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].wire_id, a);
        assert!(mgr.is_retired(a), "expiry is an end — the id retires");
        assert!(!mgr.is_retired(b));
        assert_eq!(
            mgr.resume(token_a, 1, 0, now + Duration::from_secs(12)),
            ResumeOutcome::UnknownToken,
            "an expired token is gone"
        );
        assert_eq!(mgr.detached_len(), 1);
    }

    #[test]
    fn tokens_are_unique_per_manager() {
        let mut mgr = SessionManager::new();
        let now = Instant::now();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let id = mgr.open(0, 1, 1, now);
            assert!(seen.insert(mgr.get(id).expect("live").token));
            mgr.remove(id);
        }
    }

    #[test]
    fn recovery_inserts_park_and_replay_the_id_and_token_streams() {
        // Simulate what log recovery rebuilds: a fresh manager that must
        // continue a crashed manager's id/token sequences exactly.
        let mut crashed = SessionManager::new();
        let now = Instant::now();
        let a = crashed.open(0, 1, 10, now);
        let b = crashed.open(0, 2, 10, now);
        let token_b = crashed.get(b).expect("live").token;
        // The token the crashed manager would have issued next.
        let probe = crashed.open(0, 9, 1, now);
        let next_token_before_crash = crashed.get(probe).expect("live").token;

        let mut recovered = SessionManager::new();
        recovered.skip_tokens(2); // two opens counted from the log
        recovered.ensure_next_id(b + 1);
        recovered.insert_detached(
            NetSession {
                wire_id: b,
                token: token_b,
                conn: usize::MAX,
                patient_id: 2,
                phase: SessionPhase::Calibrating { calib_len: 10 },
                pending: Vec::new(),
                chunk: Vec::new(),
                next_seq: 3,
                outcomes_sent: 0,
                consumed_since_grant: 0,
                samples_received: 30,
                last_activity: now,
                priority: SessionPriority::Normal,
                oldest_pending_at: None,
                staged_anchor: None,
            },
            now,
        );
        assert_eq!(recovered.detached_len(), 1);
        assert_eq!(
            recovered.resume(token_b, 2, 4, now),
            ResumeOutcome::Resumed(b)
        );
        let s = recovered.get(b).expect("re-attached");
        assert_eq!((s.conn, s.next_seq, s.samples_received), (4, 3, 30));

        // New ids continue after the recovered maximum; new tokens continue
        // the crashed generator's sequence.
        let c = recovered.open(0, 3, 10, now);
        assert_eq!(c, b + 1, "recovered ids must never be reassigned");
        assert_eq!(
            recovered.get(c).expect("live").token,
            next_token_before_crash,
            "the token stream must continue exactly where the crash left it"
        );
        let _ = a;
    }

    #[test]
    fn buffered_totals_and_detached_access_cover_live_and_parked_sessions() {
        let mut mgr = SessionManager::new();
        let now = Instant::now();
        let a = mgr.open(0, 1, 10, now);
        let b = mgr.open(1, 2, 10, now);
        mgr.get_mut(a).expect("live").pending.extend([0.0; 5]);
        mgr.get_mut(b).expect("live").pending.extend([0.0; 7]);
        assert_eq!(mgr.total_buffered_samples(), 12);
        assert_eq!(
            mgr.get(a).expect("live").priority,
            SessionPriority::Normal,
            "sessions open at normal priority"
        );
        assert!(SessionPriority::Critical > SessionPriority::Normal);

        // Parking moves the buffer, it does not free it: the global ledger
        // still counts detached pending samples.
        let token_b = mgr.get(b).expect("live").token;
        assert!(mgr.detach(b, now));
        assert_eq!(mgr.total_buffered_samples(), 12);
        assert_eq!(mgr.detached_tokens(), vec![token_b]);
        assert_eq!(mgr.detached_get(token_b).expect("parked").buffered(), 7);

        // Shedding a parked session's tail shows up in the recount.
        mgr.detached_get_mut(token_b)
            .expect("parked")
            .pending
            .truncate(2);
        assert_eq!(mgr.total_buffered_samples(), 7);
        assert!(mgr.detached_get(0xDEAD).is_none());
        assert!(mgr.detached_get_mut(0xDEAD).is_none());
    }

    #[test]
    fn phases_expose_the_hub_handle_only_once_streaming() {
        let mut mgr = SessionManager::new();
        let id = mgr.open(3, 9, 64, Instant::now());
        let s = mgr.get_mut(id).expect("live");
        assert!(s.hub_id().is_none());
        assert_eq!(s.buffered(), 0);
        s.pending.extend([0.0; 5]);
        assert_eq!(s.buffered(), 5);
    }
}
