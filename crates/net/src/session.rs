//! Session lifecycle management for the gateway.
//!
//! One [`NetSession`] tracks a patient stream from the wire side:
//!
//! ```text
//!  OpenSession           calib_len samples buffered      CloseSession /
//!  ───────────▶ Calibrating ───────────────────▶ Streaming ─────────▶ gone
//!                   │        thresholds from the   │        idle timeout
//!                   │        first stretch, hub    │
//!                   ▼        session created,      ▼
//!              (samples buffer)   stretch replayed  (samples flow into the
//!                                 into the stream    hub in credit-bounded
//!                                                    batches)
//! ```
//!
//! The manager is transport-agnostic: it owns the per-session sample buffer
//! (`pending`, bounded by the credit budget), the sequence check and the
//! idle clock, while the reactor in [`crate::server`] owns sockets and the
//! [`StreamHub`](hbc_core::StreamHub). That split keeps the state machine
//! testable without I/O.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

/// How many ended-session ids the manager remembers for race tolerance.
/// In-flight frames for an ended session can only be a connection's
/// receive-buffer worth of traffic behind, so a small recent window
/// suffices; the cap keeps a long-running gateway's memory flat.
const RETIRED_CAP: usize = 4096;

use hbc_core::SessionId;

/// Where a session is in its lifecycle.
#[derive(Debug)]
pub enum SessionPhase {
    /// Buffering the first `calib_len` samples; no hub session exists yet.
    Calibrating {
        /// Samples required before thresholds can be derived.
        calib_len: usize,
    },
    /// Thresholds derived, hub session live, samples flowing.
    Streaming {
        /// The hub-side session handle.
        hub: SessionId,
    },
}

/// One wire session's gateway-side state.
#[derive(Debug)]
pub struct NetSession {
    /// Wire-level id (never reused within a gateway).
    pub wire_id: u32,
    /// Index of the connection that opened the session.
    pub conn: usize,
    /// Patient identifier from the open request.
    pub patient_id: u32,
    /// Lifecycle phase.
    pub phase: SessionPhase,
    /// Decoded millivolt samples received but not yet consumed by the hub.
    /// Bounded by the credit budget for well-behaved senders.
    pub pending: Vec<f64>,
    /// Scratch the reactor moves a chunk into while the hub ingests it
    /// (keeps the borrow of `pending` short and reuses the allocation).
    pub chunk: Vec<f64>,
    /// Next expected [`crate::proto::Frame::Samples`] sequence number.
    pub next_seq: u32,
    /// Hub outcomes already forwarded to the client.
    pub outcomes_sent: usize,
    /// Samples consumed by the hub since the last credit grant.
    pub consumed_since_grant: usize,
    /// Total samples received over the wire.
    pub samples_received: u64,
    /// Last time a frame touched this session (drives eviction).
    pub last_activity: Instant,
}

impl NetSession {
    /// Samples currently buffered gateway-side for this session.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// The hub handle, if the session has finished calibrating.
    pub fn hub_id(&self) -> Option<SessionId> {
        match self.phase {
            SessionPhase::Streaming { hub } => Some(hub),
            SessionPhase::Calibrating { .. } => None,
        }
    }
}

/// Owns every live [`NetSession`] of a gateway, keyed by wire id.
#[derive(Debug, Default)]
pub struct SessionManager {
    sessions: HashMap<u32, NetSession>,
    /// Wire ids of recently ended sessions (closed or evicted). Ends are
    /// asynchronous, so a compliant peer can still have frames for such a
    /// session in flight — the reactor ignores those instead of treating
    /// them as violations. Ids are never reused, so membership is
    /// unambiguous; retention is capped at [`RETIRED_CAP`] (oldest ids
    /// forgotten first) so a long-running gateway's memory stays flat.
    retired: HashSet<u32>,
    /// The retired ids in retirement order, backing the cap.
    retired_order: VecDeque<u32>,
    next_id: u32,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new session in the calibrating phase and returns its
    /// wire id. Wire ids are assigned sequentially and never reused.
    pub fn open(&mut self, conn: usize, patient_id: u32, calib_len: usize, now: Instant) -> u32 {
        let wire_id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(
            wire_id,
            NetSession {
                wire_id,
                conn,
                patient_id,
                phase: SessionPhase::Calibrating { calib_len },
                pending: Vec::new(),
                chunk: Vec::new(),
                next_seq: 0,
                outcomes_sent: 0,
                consumed_since_grant: 0,
                samples_received: 0,
                last_activity: now,
            },
        );
        wire_id
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Looks a session up by wire id.
    pub fn get(&self, wire_id: u32) -> Option<&NetSession> {
        self.sessions.get(&wire_id)
    }

    /// Mutable lookup by wire id.
    pub fn get_mut(&mut self, wire_id: u32) -> Option<&mut NetSession> {
        self.sessions.get_mut(&wire_id)
    }

    /// Removes a session, returning its final state and remembering the id
    /// as retired (see [`Self::is_retired`]).
    pub fn remove(&mut self, wire_id: u32) -> Option<NetSession> {
        let removed = self.sessions.remove(&wire_id);
        if removed.is_some() && self.retired.insert(wire_id) {
            self.retired_order.push_back(wire_id);
            while self.retired_order.len() > RETIRED_CAP {
                let oldest = self.retired_order.pop_front().expect("non-empty");
                self.retired.remove(&oldest);
            }
        }
        removed
    }

    /// Whether `wire_id` belonged to a session that ended recently —
    /// frames racing an asynchronous end (eviction, connection teardown)
    /// are dropped rather than denied.
    pub fn is_retired(&self, wire_id: u32) -> bool {
        self.retired.contains(&wire_id)
    }

    /// Wire ids of every session owned by connection `conn`.
    pub fn ids_for_conn(&self, conn: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .sessions
            .values()
            .filter(|s| s.conn == conn)
            .map(|s| s.wire_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Wire ids of every live session, in id order (deterministic sweeps).
    pub fn ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.sessions.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Wire ids whose last activity is older than `idle` seconds before
    /// `now` — the eviction candidates.
    pub fn idle_ids(&self, now: Instant, idle: std::time::Duration) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .sessions
            .values()
            .filter(|s| now.duration_since(s.last_activity) > idle)
            .map(|s| s.wire_id)
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn wire_ids_are_sequential_and_never_reused() {
        let mut mgr = SessionManager::new();
        let now = Instant::now();
        let a = mgr.open(0, 10, 100, now);
        let b = mgr.open(1, 11, 100, now);
        assert_eq!((a, b), (0, 1));
        mgr.remove(a).expect("live");
        let c = mgr.open(0, 12, 100, now);
        assert_eq!(c, 2, "removed ids must not be reassigned");
        assert_eq!(mgr.len(), 2);
        assert_eq!(mgr.ids(), vec![1, 2]);
        assert_eq!(mgr.ids_for_conn(0), vec![2]);
        assert!(mgr.is_retired(a), "ended ids are remembered");
        assert!(!mgr.is_retired(b));
        assert!(!mgr.is_retired(99), "never-assigned ids are not retired");
    }

    #[test]
    fn retired_memory_is_capped() {
        let mut mgr = SessionManager::new();
        let now = Instant::now();
        for _ in 0..(RETIRED_CAP + 10) {
            let id = mgr.open(0, 1, 1, now);
            mgr.remove(id).expect("live");
        }
        assert!(!mgr.is_retired(0), "oldest retired ids are forgotten");
        assert!(!mgr.is_retired(9));
        assert!(mgr.is_retired(10));
        assert!(mgr.is_retired((RETIRED_CAP + 9) as u32));
    }

    #[test]
    fn idle_sessions_are_found_by_age() {
        let mut mgr = SessionManager::new();
        let past = Instant::now() - Duration::from_secs(60);
        let old = mgr.open(0, 1, 10, past);
        let now = Instant::now();
        let fresh = mgr.open(0, 2, 10, now);
        let idle = mgr.idle_ids(now, Duration::from_secs(30));
        assert_eq!(idle, vec![old]);
        assert!(mgr.get(fresh).is_some());
    }

    #[test]
    fn phases_expose_the_hub_handle_only_once_streaming() {
        let mut mgr = SessionManager::new();
        let id = mgr.open(3, 9, 64, Instant::now());
        let s = mgr.get_mut(id).expect("live");
        assert!(s.hub_id().is_none());
        assert_eq!(s.buffered(), 0);
        s.pending.extend([0.0; 5]);
        assert_eq!(s.buffered(), 5);
    }
}
