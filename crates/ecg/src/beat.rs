//! Heartbeat domain types.
//!
//! A *beat* is a fixed-length window of ECG samples centred on the R peak,
//! together with its morphology label. The paper considers three morphologies
//! from the MIT-BIH Arrhythmia Database — normal sinus rhythm (N), left bundle
//! branch block (L) and premature ventricular contraction (V) — and the
//! classifier may additionally emit an *Unknown* (U) decision when the fuzzy
//! evidence is not conclusive.

use crate::{POST_PEAK_SAMPLES, PRE_PEAK_SAMPLES};

/// Morphology class of a heartbeat.
///
/// The ordering of the variants matches the class index used throughout the
/// classifier crates (`N = 0`, `V = 1`, `L = 2`); [`BeatClass::Unknown`] is a
/// classifier *output* only and never appears as a ground-truth label.
///
/// ```
/// use hbc_ecg::BeatClass;
/// assert_eq!(BeatClass::Normal.index(), Some(0));
/// assert!(BeatClass::PrematureVentricular.is_abnormal());
/// assert!(!BeatClass::Normal.is_abnormal());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BeatClass {
    /// Normal sinus-rhythm beat (MIT-BIH annotation code `N`).
    Normal,
    /// Premature ventricular contraction (MIT-BIH annotation code `V`).
    PrematureVentricular,
    /// Left bundle branch block beat (MIT-BIH annotation code `L`).
    LeftBundleBranchBlock,
    /// Classifier could not decide with enough confidence; treated as
    /// pathological by the defuzzification rule of the paper.
    Unknown,
}

/// Number of ground-truth classes handled by the classifier (N, V, L).
pub const NUM_CLASSES: usize = 3;

impl BeatClass {
    /// All ground-truth classes in index order.
    pub const LABELLED: [BeatClass; NUM_CLASSES] = [
        BeatClass::Normal,
        BeatClass::PrematureVentricular,
        BeatClass::LeftBundleBranchBlock,
    ];

    /// Index of the class in the classifier output layer, or `None` for
    /// [`BeatClass::Unknown`].
    pub fn index(self) -> Option<usize> {
        match self {
            BeatClass::Normal => Some(0),
            BeatClass::PrematureVentricular => Some(1),
            BeatClass::LeftBundleBranchBlock => Some(2),
            BeatClass::Unknown => None,
        }
    }

    /// Builds a class from its output-layer index.
    ///
    /// Returns `None` when `idx >= NUM_CLASSES`.
    pub fn from_index(idx: usize) -> Option<BeatClass> {
        BeatClass::LABELLED.get(idx).copied()
    }

    /// Whether the beat is considered pathological by the early-classification
    /// policy of the paper (V, L and U activate the detailed delineation; only
    /// N is discarded).
    pub fn is_abnormal(self) -> bool {
        !matches!(self, BeatClass::Normal)
    }

    /// Single-character mnemonic used by the paper and by the MIT-BIH
    /// annotation convention.
    pub fn symbol(self) -> char {
        match self {
            BeatClass::Normal => 'N',
            BeatClass::PrematureVentricular => 'V',
            BeatClass::LeftBundleBranchBlock => 'L',
            BeatClass::Unknown => 'U',
        }
    }

    /// Parses the MIT-BIH annotation symbol for the three supported classes.
    ///
    /// Any other symbol (paced beats, fusion beats, non-beat annotations, …)
    /// returns `None` and is skipped by the dataset builder, mirroring the
    /// paper which restricts its evaluation to N, V and L.
    pub fn from_symbol(symbol: char) -> Option<BeatClass> {
        match symbol {
            'N' => Some(BeatClass::Normal),
            'V' => Some(BeatClass::PrematureVentricular),
            'L' => Some(BeatClass::LeftBundleBranchBlock),
            _ => None,
        }
    }
}

impl std::fmt::Display for BeatClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Binary outcome of the early-classification stage: is the beat normal (and
/// thus discarded) or pathological (and thus forwarded to the detailed
/// delineation / transmitted in full)?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryLabel {
    /// Normal beat — discarded by the WBSN early stage.
    Normal,
    /// Pathological (or undecidable) beat — triggers the detailed analysis.
    Pathological,
}

impl From<BeatClass> for BinaryLabel {
    fn from(c: BeatClass) -> Self {
        if c.is_abnormal() {
            BinaryLabel::Pathological
        } else {
            BinaryLabel::Normal
        }
    }
}

impl std::fmt::Display for BinaryLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryLabel::Normal => write!(f, "normal"),
            BinaryLabel::Pathological => write!(f, "pathological"),
        }
    }
}

/// A labelled heartbeat: the windowed samples around the R peak plus its
/// ground-truth morphology.
///
/// Samples are stored as `f64` in millivolts at the acquisition sampling rate
/// (360 Hz for MIT-BIH and for the synthetic generator). The embedded crates
/// quantise these windows to integers before classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Beat {
    /// Windowed samples (`PRE_PEAK_SAMPLES` before + `POST_PEAK_SAMPLES`
    /// after the R peak at 360 Hz).
    pub samples: Vec<f64>,
    /// Ground-truth morphology.
    pub class: BeatClass,
    /// Index of the R peak inside `samples` (normally `PRE_PEAK_SAMPLES`).
    pub peak_index: usize,
    /// Record identifier the beat was extracted from (0 for synthetic beats
    /// that are not attached to a record).
    pub record_id: u32,
    /// Sample index of the R peak inside the source record, when known.
    pub record_position: usize,
}

impl Beat {
    /// Creates a beat from a full window of samples, assuming the peak sits at
    /// the canonical position `PRE_PEAK_SAMPLES`.
    pub fn new(samples: Vec<f64>, class: BeatClass) -> Self {
        let peak_index = PRE_PEAK_SAMPLES.min(samples.len().saturating_sub(1));
        Beat {
            samples,
            class,
            peak_index,
            record_id: 0,
            record_position: 0,
        }
    }

    /// Length of the sample window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Binary normal/pathological ground truth derived from the class label.
    pub fn binary_label(&self) -> BinaryLabel {
        self.class.into()
    }

    /// Returns a downsampled copy of the beat keeping one sample out of
    /// `factor` (the paper uses `factor = 4`, i.e. 90 Hz, for the WBSN
    /// version).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn downsample(&self, factor: usize) -> Beat {
        assert!(factor > 0, "downsampling factor must be non-zero");
        let samples: Vec<f64> = self.samples.iter().step_by(factor).copied().collect();
        Beat {
            peak_index: self.peak_index / factor,
            samples,
            class: self.class,
            record_id: self.record_id,
            record_position: self.record_position,
        }
    }

    /// Amplitude range (max − min) of the window, useful for quantisation.
    pub fn amplitude_range(&self) -> f64 {
        let (min, max) = self
            .samples
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
        if min.is_finite() && max.is_finite() {
            max - min
        } else {
            0.0
        }
    }

    /// Quantises the beat window to signed integers using the given full-scale
    /// range in millivolts mapped onto `[-2^(bits-1), 2^(bits-1) - 1]`.
    ///
    /// This mimics the ADC front-end of the WBSN: the IcyHeart platform
    /// acquires samples through a multi-channel ADC and the embedded
    /// classifier operates on integer samples only.
    pub fn quantize(&self, full_scale_mv: f64, bits: u32) -> Vec<i32> {
        let half = (1i64 << (bits - 1)) as f64;
        self.samples
            .iter()
            .map(|&s| {
                let x = (s / full_scale_mv * half).round();
                x.clamp(-half, half - 1.0) as i32
            })
            .collect()
    }
}

/// Geometry of the beat window used to cut beats out of a continuous record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeatWindow {
    /// Samples kept before the R peak.
    pub pre: usize,
    /// Samples kept after the R peak.
    pub post: usize,
}

impl BeatWindow {
    /// The window used by the paper at 360 Hz: 100 samples before and 100
    /// after the R peak.
    pub const PAPER: BeatWindow = BeatWindow {
        pre: PRE_PEAK_SAMPLES,
        post: POST_PEAK_SAMPLES,
    };

    /// Creates a window with the given number of samples before/after the
    /// peak.
    pub fn new(pre: usize, post: usize) -> Self {
        BeatWindow { pre, post }
    }

    /// Total number of samples in the window.
    pub fn len(&self) -> usize {
        self.pre + self.post
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the window around `peak` from `signal`, returning `None` when
    /// the window would fall outside the signal.
    pub fn extract(&self, signal: &[f64], peak: usize) -> Option<Vec<f64>> {
        if peak < self.pre || peak + self.post > signal.len() {
            return None;
        }
        Some(signal[peak - self.pre..peak + self.post].to_vec())
    }
}

impl Default for BeatWindow {
    fn default() -> Self {
        BeatWindow::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_roundtrip() {
        for (i, c) in BeatClass::LABELLED.iter().enumerate() {
            assert_eq!(c.index(), Some(i));
            assert_eq!(BeatClass::from_index(i), Some(*c));
        }
        assert_eq!(BeatClass::Unknown.index(), None);
        assert_eq!(BeatClass::from_index(3), None);
    }

    #[test]
    fn symbols_roundtrip() {
        for c in BeatClass::LABELLED {
            assert_eq!(BeatClass::from_symbol(c.symbol()), Some(c));
        }
        assert_eq!(BeatClass::from_symbol('Q'), None);
        assert_eq!(BeatClass::Unknown.symbol(), 'U');
    }

    #[test]
    fn abnormality_matches_paper_definition() {
        assert!(!BeatClass::Normal.is_abnormal());
        assert!(BeatClass::PrematureVentricular.is_abnormal());
        assert!(BeatClass::LeftBundleBranchBlock.is_abnormal());
        assert!(BeatClass::Unknown.is_abnormal());
        assert_eq!(BinaryLabel::from(BeatClass::Normal), BinaryLabel::Normal);
        assert_eq!(
            BinaryLabel::from(BeatClass::Unknown),
            BinaryLabel::Pathological
        );
    }

    #[test]
    fn beat_downsampling_keeps_every_fourth_sample() {
        let samples: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let beat = Beat::new(samples, BeatClass::Normal);
        let ds = beat.downsample(4);
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.samples[0], 0.0);
        assert_eq!(ds.samples[1], 4.0);
        assert_eq!(ds.peak_index, beat.peak_index / 4);
    }

    #[test]
    #[should_panic(expected = "downsampling factor")]
    fn downsample_by_zero_panics() {
        Beat::new(vec![0.0; 10], BeatClass::Normal).downsample(0);
    }

    #[test]
    fn quantize_respects_bit_width() {
        let beat = Beat::new(vec![-5.0, -1.0, 0.0, 1.0, 5.0], BeatClass::Normal);
        let q = beat.quantize(2.0, 12);
        assert_eq!(q.len(), 5);
        assert!(q.iter().all(|&v| (-2048..=2047).contains(&v)));
        assert_eq!(q[2], 0);
        assert_eq!(q[0], -2048); // clipped
        assert_eq!(q[4], 2047); // clipped
    }

    #[test]
    fn window_extraction_bounds() {
        let signal: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let w = BeatWindow::PAPER;
        assert!(w.extract(&signal, 50).is_none());
        assert!(w.extract(&signal, 450).is_none());
        let ok = w.extract(&signal, 250).expect("window in range");
        assert_eq!(ok.len(), 200);
        assert_eq!(ok[0], 150.0);
        assert_eq!(ok[199], 349.0);
    }

    #[test]
    fn amplitude_range_of_flat_and_empty_windows() {
        assert_eq!(Beat::new(vec![], BeatClass::Normal).amplitude_range(), 0.0);
        assert_eq!(
            Beat::new(vec![1.5; 7], BeatClass::Normal).amplitude_range(),
            0.0
        );
        assert_eq!(
            Beat::new(vec![-1.0, 3.0], BeatClass::Normal).amplitude_range(),
            4.0
        );
    }
}
