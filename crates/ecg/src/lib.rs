//! # hbc-ecg — ECG data substrate
//!
//! This crate provides everything the RP-based heartbeat classification
//! framework needs to obtain labelled heartbeats:
//!
//! * Core domain types: [`BeatClass`], [`Beat`], [`Annotation`], [`EcgRecord`].
//! * A reader for the MIT-BIH Arrhythmia Database *format 212* signal files and
//!   the binary annotation format ([`mitbih`]), usable when the real PhysioBank
//!   data is available on disk.
//! * A **synthetic ECG generator** ([`synthetic`]) producing normal (N), left
//!   bundle branch block (L) and premature ventricular contraction (V)
//!   morphologies with realistic noise, used as the documented substitution for
//!   the MIT-BIH recordings when the database is not available (see
//!   `DESIGN.md`).
//! * Dataset construction matching Table I of the paper ([`dataset`]).
//!
//! ## Example
//!
//! ```
//! use hbc_ecg::{synthetic::SyntheticEcg, BeatClass};
//!
//! let mut gen = SyntheticEcg::with_seed(42);
//! let beat = gen.beat(BeatClass::Normal);
//! assert_eq!(beat.samples.len(), 200);
//! assert_eq!(beat.class, BeatClass::Normal);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod beat;
pub mod dataset;
pub mod mitbih;
pub mod noise;
pub mod record;
pub mod synthetic;

pub use beat::{Beat, BeatClass, BeatWindow, BinaryLabel};
pub use dataset::{Dataset, DatasetSpec, Split};
pub use record::{Annotation, EcgRecord, Lead};

/// Sampling frequency of the MIT-BIH Arrhythmia Database recordings, in Hz.
pub const MITBIH_FS: f64 = 360.0;

/// Number of samples taken before the R peak when windowing a beat at 360 Hz.
pub const PRE_PEAK_SAMPLES: usize = 100;

/// Number of samples taken after the R peak when windowing a beat at 360 Hz.
pub const POST_PEAK_SAMPLES: usize = 100;

/// Total beat window length at the native 360 Hz sampling rate.
pub const BEAT_WINDOW_LEN: usize = PRE_PEAK_SAMPLES + POST_PEAK_SAMPLES;

/// Errors produced by this crate.
#[derive(Debug)]
pub enum EcgError {
    /// An I/O error occurred while reading a record or annotation file.
    Io(std::io::Error),
    /// The file content did not match the expected MIT-BIH format.
    Format(String),
    /// A request referenced data that is out of range (e.g. a beat window
    /// extending past the end of a record).
    OutOfRange(String),
    /// A dataset specification could not be satisfied.
    Dataset(String),
}

impl std::fmt::Display for EcgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcgError::Io(e) => write!(f, "i/o error: {e}"),
            EcgError::Format(m) => write!(f, "invalid record format: {m}"),
            EcgError::OutOfRange(m) => write!(f, "out of range: {m}"),
            EcgError::Dataset(m) => write!(f, "dataset error: {m}"),
        }
    }
}

impl std::error::Error for EcgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EcgError {
    fn from(e: std::io::Error) -> Self {
        EcgError::Io(e)
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, EcgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = EcgError::Format("bad header".into());
        assert!(e.to_string().contains("bad header"));
        let e = EcgError::Dataset("not enough beats".into());
        assert!(e.to_string().contains("not enough beats"));
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(BEAT_WINDOW_LEN, PRE_PEAK_SAMPLES + POST_PEAK_SAMPLES);
        const _: () = assert!(MITBIH_FS > 0.0);
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EcgError>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: EcgError = io.into();
        assert!(matches!(e, EcgError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
