//! Noise models for synthetic ECG generation.
//!
//! Ambulatory ECG recordings are corrupted by three dominant artefact sources,
//! which the paper's filtering stage is designed to remove:
//!
//! * **baseline wander** caused by respiration (slow, large-amplitude drift,
//!   typically below 0.5 Hz),
//! * **muscle (EMG) noise** from body movement (broadband, roughly Gaussian),
//! * **powerline interference** (a 50 Hz or 60 Hz sinusoid picked up by the
//!   electrodes).
//!
//! [`NoiseModel`] synthesises the sum of the three so that the synthetic
//! records exercise the same conditioning path the MIT-BIH recordings would.

use rand::Rng;

/// Draws a standard normal sample using the Box–Muller transform.
///
/// `rand` alone (without `rand_distr`) only provides uniform sampling; this
/// helper is all the crate needs for Gaussian noise.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Configuration of the additive noise applied to a synthetic ECG lead.
///
/// All amplitudes are in millivolts (peak for the deterministic components,
/// standard deviation for the EMG term).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Peak amplitude of the respiration-induced baseline wander.
    pub baseline_amplitude_mv: f64,
    /// Frequency of the baseline wander in Hz (respiration rate).
    pub baseline_frequency_hz: f64,
    /// Standard deviation of the broadband muscle-artefact noise.
    pub emg_std_mv: f64,
    /// Peak amplitude of the powerline interference.
    pub powerline_amplitude_mv: f64,
    /// Powerline frequency in Hz (50 Hz in Europe, 60 Hz in the US; the
    /// MIT-BIH recordings were acquired at 60 Hz mains).
    pub powerline_frequency_hz: f64,
}

impl NoiseModel {
    /// Moderate ambulatory noise: the default used by the dataset generator.
    pub fn ambulatory() -> Self {
        NoiseModel {
            baseline_amplitude_mv: 0.15,
            baseline_frequency_hz: 0.25,
            emg_std_mv: 0.02,
            powerline_amplitude_mv: 0.02,
            powerline_frequency_hz: 60.0,
        }
    }

    /// Clean signal: no noise at all. Useful for unit tests that check
    /// morphology in isolation.
    pub fn clean() -> Self {
        NoiseModel {
            baseline_amplitude_mv: 0.0,
            baseline_frequency_hz: 0.25,
            emg_std_mv: 0.0,
            powerline_amplitude_mv: 0.0,
            powerline_frequency_hz: 60.0,
        }
    }

    /// Heavy noise: stress-test setting exercising the filtering stage.
    pub fn heavy() -> Self {
        NoiseModel {
            baseline_amplitude_mv: 0.4,
            baseline_frequency_hz: 0.33,
            emg_std_mv: 0.06,
            powerline_amplitude_mv: 0.05,
            powerline_frequency_hz: 60.0,
        }
    }

    /// Whether every noise component is disabled.
    pub fn is_clean(&self) -> bool {
        self.baseline_amplitude_mv == 0.0
            && self.emg_std_mv == 0.0
            && self.powerline_amplitude_mv == 0.0
    }

    /// Adds the configured noise, in place, to `signal` sampled at `fs` Hz.
    ///
    /// `phase_seed` decorrelates the deterministic components across leads and
    /// records (it offsets the sinusoid phases), while `rng` drives the
    /// stochastic EMG term.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        signal: &mut [f64],
        fs: f64,
        phase_seed: f64,
        rng: &mut R,
    ) {
        if self.is_clean() {
            return;
        }
        let two_pi = 2.0 * std::f64::consts::PI;
        for (i, s) in signal.iter_mut().enumerate() {
            let t = i as f64 / fs;
            let baseline = self.baseline_amplitude_mv
                * (two_pi * self.baseline_frequency_hz * t + phase_seed).sin();
            let powerline = self.powerline_amplitude_mv
                * (two_pi * self.powerline_frequency_hz * t + 1.7 * phase_seed).sin();
            let emg = self.emg_std_mv * standard_normal(rng);
            *s += baseline + powerline + emg;
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::ambulatory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn clean_model_leaves_signal_untouched() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut signal = vec![0.5; 256];
        NoiseModel::clean().apply(&mut signal, 360.0, 0.0, &mut rng);
        assert!(signal.iter().all(|&s| s == 0.5));
        assert!(NoiseModel::clean().is_clean());
        assert!(!NoiseModel::ambulatory().is_clean());
    }

    #[test]
    fn ambulatory_noise_perturbs_signal_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = NoiseModel::ambulatory();
        let mut signal = vec![0.0; 3600];
        model.apply(&mut signal, 360.0, 0.3, &mut rng);
        let max = signal.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(max > 0.01, "noise should be visible");
        // Bound: baseline + powerline + ~6 sigma of EMG.
        let bound =
            model.baseline_amplitude_mv + model.powerline_amplitude_mv + 6.0 * model.emg_std_mv;
        assert!(max < bound + 1e-9, "noise {max} exceeds bound {bound}");
    }

    #[test]
    fn heavy_noise_is_larger_than_ambulatory() {
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let mut a = vec![0.0; 3600];
        let mut b = vec![0.0; 3600];
        NoiseModel::ambulatory().apply(&mut a, 360.0, 0.1, &mut rng_a);
        NoiseModel::heavy().apply(&mut b, 360.0, 0.1, &mut rng_b);
        let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        assert!(rms(&b) > rms(&a));
    }
}
