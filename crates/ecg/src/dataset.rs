//! Dataset construction matching Table I of the paper.
//!
//! The paper trains and evaluates on three disjoint beat sets drawn from the
//! MIT-BIH Arrhythmia Database:
//!
//! | split | N | V | L | total |
//! |---|---|---|---|---|
//! | training set 1 | 150 | 150 | 150 | 450 |
//! | training set 2 | 10 024 | 892 | 1 084 | 12 000 |
//! | test set | 74 355 | 6 618 | 8 039 | 89 012 |
//!
//! *Training set 1* (small, class-balanced) trains the neuro-fuzzy membership
//! functions with the scaled conjugate gradient; *training set 2* scores each
//! candidate random projection inside the genetic algorithm; the *test set*
//! (every N/V/L beat of the database) produces the reported figures of merit.
//!
//! [`DatasetSpec::paper`] reproduces those exact counts; scaled-down variants
//! are provided because the full 101 462-beat corpus is expensive to generate
//! and classify inside unit tests.

use crate::beat::{Beat, BeatClass, NUM_CLASSES};
use crate::synthetic::SyntheticEcg;
use crate::{EcgError, Result};

/// Identifier of one of the three splits used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Small class-balanced set used to train the membership functions.
    Training1,
    /// Larger set used to score candidate projections in the genetic search.
    Training2,
    /// Full evaluation set.
    Test,
}

impl std::fmt::Display for Split {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Split::Training1 => write!(f, "training set 1"),
            Split::Training2 => write!(f, "training set 2"),
            Split::Test => write!(f, "test set"),
        }
    }
}

/// Per-split class composition (number of beats per class, in N/V/L order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSpec {
    /// Beats per class in class-index order (N, V, L).
    pub counts: [usize; NUM_CLASSES],
}

impl SplitSpec {
    /// Creates a split specification from per-class counts (N, V, L).
    pub fn new(n: usize, v: usize, l: usize) -> Self {
        SplitSpec { counts: [n, v, l] }
    }

    /// Total number of beats in the split.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of abnormal (V + L) beats.
    pub fn abnormal_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.counts[1] + self.counts[2]) as f64 / self.total() as f64
    }

    /// Scales every class count by `factor` (rounding up so no class
    /// disappears as long as it was present).
    pub fn scaled(&self, factor: f64) -> SplitSpec {
        let scale = |c: usize| {
            if c == 0 {
                0
            } else {
                ((c as f64 * factor).ceil() as usize).max(1)
            }
        };
        SplitSpec {
            counts: [
                scale(self.counts[0]),
                scale(self.counts[1]),
                scale(self.counts[2]),
            ],
        }
    }
}

/// Composition of the three splits (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Training set 1 composition.
    pub training1: SplitSpec,
    /// Training set 2 composition.
    pub training2: SplitSpec,
    /// Test set composition.
    pub test: SplitSpec,
}

impl DatasetSpec {
    /// The exact Table I composition of the paper.
    pub fn paper() -> Self {
        DatasetSpec {
            training1: SplitSpec::new(150, 150, 150),
            training2: SplitSpec::new(10_024, 892, 1_084),
            test: SplitSpec::new(74_355, 6_618, 8_039),
        }
    }

    /// A reduced composition that preserves the class imbalance of Table I but
    /// scales the two large splits by `factor` (training set 1 is kept at its
    /// original 150/150/150 because it is already small).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn paper_scaled(factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let full = Self::paper();
        DatasetSpec {
            training1: full.training1,
            training2: full.training2.scaled(factor),
            test: full.test.scaled(factor),
        }
    }

    /// A small composition for fast unit tests and doc examples.
    pub fn tiny() -> Self {
        DatasetSpec {
            training1: SplitSpec::new(60, 60, 60),
            training2: SplitSpec::new(320, 40, 40),
            test: SplitSpec::new(500, 50, 50),
        }
    }

    /// The composition of a given split.
    pub fn split(&self, split: Split) -> SplitSpec {
        match split {
            Split::Training1 => self.training1,
            Split::Training2 => self.training2,
            Split::Test => self.test,
        }
    }

    /// Total number of beats across all splits.
    pub fn total(&self) -> usize {
        self.training1.total() + self.training2.total() + self.test.total()
    }
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec::paper()
    }
}

/// A fully materialised dataset: labelled beats for each split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Beats of training set 1.
    pub training1: Vec<Beat>,
    /// Beats of training set 2.
    pub training2: Vec<Beat>,
    /// Beats of the test set.
    pub test: Vec<Beat>,
    /// The specification the dataset was built from.
    pub spec: DatasetSpec,
}

impl Dataset {
    /// Generates a synthetic dataset following `spec`, using `seed` for
    /// reproducibility.
    ///
    /// Beats are generated independently per split with interleaved classes so
    /// that no split shares a beat with another, mirroring the paper's use of
    /// disjoint database excerpts. The generator uses the *challenging*
    /// intra-class variability and heavy ambulatory noise so the classes
    /// overlap like real MIT-BIH morphologies do — without this the
    /// classification experiments saturate at 100 % and the paper's
    /// comparisons become meaningless.
    pub fn synthetic(spec: DatasetSpec, seed: u64) -> Dataset {
        let mut gen = SyntheticEcg::with_seed(seed)
            .with_variability(crate::synthetic::Variability::challenging())
            .with_noise(crate::noise::NoiseModel::ambulatory());
        let build = |gen: &mut SyntheticEcg, s: SplitSpec| -> Vec<Beat> {
            let mut beats = Vec::with_capacity(s.total());
            for (class_idx, &count) in s.counts.iter().enumerate() {
                let class = BeatClass::from_index(class_idx).expect("class index in range");
                beats.extend(gen.beats(class, count));
            }
            // Interleave classes deterministically so batch-order effects do
            // not leak class information into any downstream consumer.
            beats.sort_by_key(|b| {
                // A simple deterministic shuffle key derived from the sample
                // content keeps the operation reproducible without an RNG.
                let h = b.samples.iter().fold(0u64, |acc, &s| {
                    acc.wrapping_mul(31).wrapping_add(s.to_bits())
                });
                h
            });
            beats
        };
        let training1 = build(&mut gen, spec.training1);
        let training2 = build(&mut gen, spec.training2);
        let test = build(&mut gen, spec.test);
        Dataset {
            training1,
            training2,
            test,
            spec,
        }
    }

    /// Builds a dataset from already-extracted beats (e.g. from real MIT-BIH
    /// records), splitting them according to `spec` in N/V/L order.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::Dataset`] when `beats` does not contain enough
    /// beats of some class to satisfy the specification.
    pub fn from_beats(spec: DatasetSpec, beats: &[Beat]) -> Result<Dataset> {
        let mut by_class: [Vec<&Beat>; NUM_CLASSES] = [Vec::new(), Vec::new(), Vec::new()];
        for b in beats {
            if let Some(i) = b.class.index() {
                by_class[i].push(b);
            }
        }
        let mut cursor = [0usize; NUM_CLASSES];
        let mut take = |s: SplitSpec| -> Result<Vec<Beat>> {
            let mut out = Vec::with_capacity(s.total());
            for (class_idx, &count) in s.counts.iter().enumerate() {
                let available = by_class[class_idx].len() - cursor[class_idx];
                if available < count {
                    return Err(EcgError::Dataset(format!(
                        "class {} needs {count} beats but only {available} remain",
                        BeatClass::from_index(class_idx).expect("valid index")
                    )));
                }
                for k in 0..count {
                    out.push(by_class[class_idx][cursor[class_idx] + k].clone());
                }
                cursor[class_idx] += count;
            }
            Ok(out)
        };
        let training1 = take(spec.training1)?;
        let training2 = take(spec.training2)?;
        let test = take(spec.test)?;
        Ok(Dataset {
            training1,
            training2,
            test,
            spec,
        })
    }

    /// Returns the beats of a split.
    pub fn split(&self, split: Split) -> &[Beat] {
        match split {
            Split::Training1 => &self.training1,
            Split::Training2 => &self.training2,
            Split::Test => &self.test,
        }
    }

    /// Counts the beats of each class in a split (N, V, L order).
    pub fn class_counts(&self, split: Split) -> [usize; NUM_CLASSES] {
        let mut counts = [0usize; NUM_CLASSES];
        for b in self.split(split) {
            if let Some(i) = b.class.index() {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Formats the Table I style composition report for this dataset.
    pub fn table1_report(&self) -> String {
        let mut s = String::new();
        s.push_str("split              N        V        L    Total\n");
        for split in [Split::Training1, Split::Training2, Split::Test] {
            let c = self.class_counts(split);
            s.push_str(&format!(
                "{:<16} {:>7} {:>8} {:>8} {:>8}\n",
                split.to_string(),
                c[0],
                c[1],
                c[2],
                c.iter().sum::<usize>()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_table1() {
        let spec = DatasetSpec::paper();
        assert_eq!(spec.training1.counts, [150, 150, 150]);
        assert_eq!(spec.training1.total(), 450);
        assert_eq!(spec.training2.counts, [10_024, 892, 1_084]);
        assert_eq!(spec.training2.total(), 12_000);
        assert_eq!(spec.test.counts, [74_355, 6_618, 8_039]);
        assert_eq!(spec.test.total(), 89_012);
        assert_eq!(spec.total(), 450 + 12_000 + 89_012);
    }

    #[test]
    fn scaled_spec_preserves_balance_and_keeps_train1() {
        let spec = DatasetSpec::paper_scaled(0.01);
        assert_eq!(spec.training1.counts, [150, 150, 150]);
        assert!(spec.test.counts[0] >= 740 && spec.test.counts[0] <= 745);
        assert!(spec.test.counts[1] >= 66 && spec.test.counts[1] <= 68);
        // Abnormal fraction close to the paper's 16.5 %.
        let full = DatasetSpec::paper();
        assert!(
            (spec.test.abnormal_fraction() - full.test.abnormal_fraction()).abs() < 0.01,
            "abnormal fraction drifted: {} vs {}",
            spec.test.abnormal_fraction(),
            full.test.abnormal_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn scaled_spec_rejects_zero_factor() {
        DatasetSpec::paper_scaled(0.0);
    }

    #[test]
    fn synthetic_dataset_matches_spec() {
        let spec = DatasetSpec::tiny();
        let ds = Dataset::synthetic(spec, 7);
        assert_eq!(ds.class_counts(Split::Training1), spec.training1.counts);
        assert_eq!(ds.class_counts(Split::Training2), spec.training2.counts);
        assert_eq!(ds.class_counts(Split::Test), spec.test.counts);
        assert_eq!(ds.training1.len(), spec.training1.total());
    }

    #[test]
    fn synthetic_dataset_is_reproducible() {
        let spec = DatasetSpec::tiny();
        let a = Dataset::synthetic(spec, 99);
        let b = Dataset::synthetic(spec, 99);
        assert_eq!(a.training1, b.training1);
        assert_eq!(a.test, b.test);
        let c = Dataset::synthetic(spec, 100);
        assert_ne!(a.training1, c.training1);
    }

    #[test]
    fn from_beats_respects_spec_and_reports_shortage() {
        let mut gen = SyntheticEcg::with_seed(5);
        let mut beats = Vec::new();
        beats.extend(gen.beats(BeatClass::Normal, 50));
        beats.extend(gen.beats(BeatClass::PrematureVentricular, 10));
        beats.extend(gen.beats(BeatClass::LeftBundleBranchBlock, 10));
        let small = DatasetSpec {
            training1: SplitSpec::new(10, 5, 5),
            training2: SplitSpec::new(20, 3, 3),
            test: SplitSpec::new(20, 2, 2),
        };
        let ds = Dataset::from_beats(small, &beats).expect("enough beats");
        assert_eq!(ds.class_counts(Split::Training1), [10, 5, 5]);
        assert_eq!(ds.class_counts(Split::Test), [20, 2, 2]);

        let too_big = DatasetSpec {
            training1: SplitSpec::new(10, 5, 5),
            training2: SplitSpec::new(20, 3, 3),
            test: SplitSpec::new(30, 2, 2), // needs 60 N but only 50 exist
        };
        assert!(matches!(
            Dataset::from_beats(too_big, &beats),
            Err(EcgError::Dataset(_))
        ));
    }

    #[test]
    fn table1_report_contains_all_rows() {
        let ds = Dataset::synthetic(DatasetSpec::tiny(), 1);
        let report = ds.table1_report();
        assert!(report.contains("training set 1"));
        assert!(report.contains("training set 2"));
        assert!(report.contains("test set"));
        assert!(report.contains("Total"));
    }

    #[test]
    fn splits_are_disjoint_objects() {
        let ds = Dataset::synthetic(DatasetSpec::tiny(), 3);
        // Disjointness of synthetic splits: no identical sample vectors across
        // splits (astronomically unlikely to collide if truly independent).
        for a in ds.training1.iter().take(10) {
            for b in ds.test.iter().take(50) {
                assert_ne!(a.samples, b.samples);
            }
        }
    }
}
