//! Synthetic ECG generation.
//!
//! The MIT-BIH Arrhythmia Database cannot be redistributed with this
//! repository, so this module provides the documented substitution (see
//! `DESIGN.md`): a morphology-accurate synthetic generator for the three beat
//! classes the paper evaluates.
//!
//! Each beat is modelled as a sum of Gaussian waves (P, Q, R, S, T), following
//! the classic dynamical ECG model of McSharry et al. restricted to a single
//! beat window. The class templates encode the clinically discriminative
//! features the neuro-fuzzy classifier exploits:
//!
//! * **Normal (N)** — narrow QRS (~80 ms), upright P and T waves.
//! * **Left bundle branch block (L)** — widened (~140 ms), notched QRS with a
//!   slurred R wave, absent Q, and a discordant (inverted) T wave.
//! * **Premature ventricular contraction (V)** — very wide (~160 ms), bizarre
//!   high-amplitude QRS with no preceding P wave and a large discordant T
//!   wave; the coupling interval to the previous beat is short.
//!
//! Intra-class variability is injected by jittering every wave's amplitude,
//! width and position, plus per-beat amplitude scaling, so that the classifier
//! faces a realistic within-class spread rather than copies of one template.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::beat::{Beat, BeatClass, BeatWindow};
use crate::noise::{standard_normal, NoiseModel};
use crate::record::{Annotation, EcgRecord};
use crate::MITBIH_FS;

/// A single Gaussian wave component of a beat template.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wave {
    /// Peak amplitude in millivolts (negative for downward deflections).
    pub amplitude_mv: f64,
    /// Centre of the wave relative to the R peak, in seconds.
    pub center_s: f64,
    /// Gaussian width (standard deviation) in seconds.
    pub width_s: f64,
}

impl Wave {
    /// Creates a wave component.
    pub fn new(amplitude_mv: f64, center_s: f64, width_s: f64) -> Self {
        Wave {
            amplitude_mv,
            center_s,
            width_s,
        }
    }

    /// Evaluates the wave at time `t` (seconds relative to the R peak).
    pub fn value_at(&self, t: f64) -> f64 {
        let d = (t - self.center_s) / self.width_s;
        self.amplitude_mv * (-0.5 * d * d).exp()
    }
}

/// Morphology template: the set of Gaussian waves composing one beat class.
#[derive(Debug, Clone, PartialEq)]
pub struct BeatTemplate {
    /// Class this template generates.
    pub class: BeatClass,
    /// Wave components (P, Q, R, S, T and possible notches).
    pub waves: Vec<Wave>,
    /// Nominal RR interval preceding this beat, in seconds.
    pub nominal_rr_s: f64,
}

impl BeatTemplate {
    /// Template for a normal sinus beat.
    pub fn normal() -> Self {
        BeatTemplate {
            class: BeatClass::Normal,
            waves: vec![
                Wave::new(0.12, -0.180, 0.022),  // P
                Wave::new(-0.14, -0.030, 0.008), // Q
                Wave::new(1.05, 0.000, 0.011),   // R
                Wave::new(-0.22, 0.030, 0.009),  // S
                Wave::new(0.28, 0.230, 0.045),   // T
            ],
            nominal_rr_s: 0.80,
        }
    }

    /// Template for a left bundle branch block beat: wide, notched QRS with a
    /// discordant T wave.
    pub fn left_bundle_branch_block() -> Self {
        BeatTemplate {
            class: BeatClass::LeftBundleBranchBlock,
            waves: vec![
                Wave::new(0.10, -0.200, 0.022), // P (still present)
                Wave::new(0.75, -0.022, 0.020), // slurred R, first hump
                Wave::new(0.82, 0.028, 0.022),  // notched R, second hump
                Wave::new(-0.25, 0.085, 0.018), // delayed S
                Wave::new(-0.33, 0.270, 0.055), // discordant (inverted) T
            ],
            nominal_rr_s: 0.82,
        }
    }

    /// Template for a premature ventricular contraction: wide, bizarre,
    /// high-amplitude QRS, no P wave, large discordant T.
    pub fn premature_ventricular() -> Self {
        BeatTemplate {
            class: BeatClass::PrematureVentricular,
            waves: vec![
                Wave::new(-0.30, -0.060, 0.020), // deep initial deflection
                Wave::new(1.45, 0.005, 0.028),   // broad dominant R
                Wave::new(-0.55, 0.080, 0.026),  // wide S
                Wave::new(-0.45, 0.300, 0.065),  // large discordant T
            ],
            nominal_rr_s: 0.55, // short coupling interval
        }
    }

    /// The template associated with a ground-truth class.
    ///
    /// # Panics
    ///
    /// Panics if called with [`BeatClass::Unknown`], which is not a
    /// generatable morphology.
    pub fn for_class(class: BeatClass) -> Self {
        match class {
            BeatClass::Normal => Self::normal(),
            BeatClass::LeftBundleBranchBlock => Self::left_bundle_branch_block(),
            BeatClass::PrematureVentricular => Self::premature_ventricular(),
            BeatClass::Unknown => panic!("cannot generate a beat for the Unknown class"),
        }
    }

    /// Evaluates the noiseless template at time `t` seconds relative to the R
    /// peak.
    pub fn value_at(&self, t: f64) -> f64 {
        self.waves.iter().map(|w| w.value_at(t)).sum()
    }
}

/// Controls the amount of intra-class variability injected per generated beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variability {
    /// Relative standard deviation applied to each wave amplitude.
    pub amplitude_rel_std: f64,
    /// Relative standard deviation applied to each wave width.
    pub width_rel_std: f64,
    /// Absolute standard deviation (seconds) applied to each wave centre.
    pub timing_std_s: f64,
    /// Relative standard deviation of the whole-beat gain (electrode contact
    /// and inter-patient differences).
    pub gain_rel_std: f64,
}

impl Variability {
    /// Realistic default used by the record generator.
    pub fn realistic() -> Self {
        Variability {
            amplitude_rel_std: 0.08,
            width_rel_std: 0.06,
            timing_std_s: 0.004,
            gain_rel_std: 0.10,
        }
    }

    /// Wider intra-class spread used by the dataset generator: electrode
    /// placement, inter-patient anatomy and beat-to-beat changes make real
    /// MIT-BIH classes overlap, so the classification problem must not be
    /// trivially separable. These values are chosen so that the quick-scale
    /// experiments operate away from the 100 % saturation point.
    pub fn challenging() -> Self {
        Variability {
            amplitude_rel_std: 0.13,
            width_rel_std: 0.11,
            timing_std_s: 0.007,
            gain_rel_std: 0.18,
        }
    }

    /// No variability: every beat of a class is identical (testing only).
    pub fn none() -> Self {
        Variability {
            amplitude_rel_std: 0.0,
            width_rel_std: 0.0,
            timing_std_s: 0.0,
            gain_rel_std: 0.0,
        }
    }
}

impl Default for Variability {
    fn default() -> Self {
        Variability::realistic()
    }
}

/// Synthetic ECG generator.
///
/// The generator is deterministic for a given seed, so datasets and
/// experiments are reproducible run to run.
///
/// ```
/// use hbc_ecg::synthetic::SyntheticEcg;
/// use hbc_ecg::BeatClass;
///
/// let mut gen = SyntheticEcg::with_seed(1);
/// let a = gen.beat(BeatClass::PrematureVentricular);
/// let mut gen2 = SyntheticEcg::with_seed(1);
/// let b = gen2.beat(BeatClass::PrematureVentricular);
/// assert_eq!(a, b, "same seed, same beat");
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticEcg {
    rng: StdRng,
    /// Sampling frequency of generated signals, in Hz.
    pub fs: f64,
    /// Window geometry used when producing isolated beats.
    pub window: BeatWindow,
    /// Intra-class variability settings.
    pub variability: Variability,
    /// Noise model applied to generated signals.
    pub noise: NoiseModel,
}

impl SyntheticEcg {
    /// Creates a generator with the paper's acquisition parameters (360 Hz,
    /// 100+100-sample window, ambulatory noise) and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        SyntheticEcg {
            rng: StdRng::seed_from_u64(seed),
            fs: MITBIH_FS,
            window: BeatWindow::PAPER,
            variability: Variability::realistic(),
            noise: NoiseModel::ambulatory(),
        }
    }

    /// Replaces the noise model, returning the modified generator (builder
    /// style).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the variability settings, returning the modified generator.
    pub fn with_variability(mut self, variability: Variability) -> Self {
        self.variability = variability;
        self
    }

    /// Draws a jittered copy of `template` according to the variability
    /// settings.
    fn jittered_template(&mut self, template: &BeatTemplate) -> BeatTemplate {
        let v = self.variability;
        let gain = 1.0 + v.gain_rel_std * standard_normal(&mut self.rng);
        let waves = template
            .waves
            .iter()
            .map(|w| {
                let amp = w.amplitude_mv
                    * gain
                    * (1.0 + v.amplitude_rel_std * standard_normal(&mut self.rng));
                let width = (w.width_s * (1.0 + v.width_rel_std * standard_normal(&mut self.rng)))
                    .max(0.002);
                let center = w.center_s + v.timing_std_s * standard_normal(&mut self.rng);
                Wave::new(amp, center, width)
            })
            .collect();
        BeatTemplate {
            class: template.class,
            waves,
            nominal_rr_s: template.nominal_rr_s,
        }
    }

    /// Generates a single windowed beat of the requested class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is [`BeatClass::Unknown`].
    pub fn beat(&mut self, class: BeatClass) -> Beat {
        let template = self.jittered_template(&BeatTemplate::for_class(class));
        let pre = self.window.pre;
        let n = self.window.len();
        let fs = self.fs;
        let mut samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 - pre as f64) / fs;
                template.value_at(t)
            })
            .collect();
        let phase: f64 = self.rng.gen::<f64>() * std::f64::consts::TAU;
        let noise = self.noise;
        noise.apply(&mut samples, fs, phase, &mut self.rng);
        Beat {
            samples,
            class,
            peak_index: pre,
            record_id: 0,
            record_position: 0,
        }
    }

    /// Generates `count` beats of the requested class.
    pub fn beats(&mut self, class: BeatClass, count: usize) -> Vec<Beat> {
        (0..count).map(|_| self.beat(class)).collect()
    }

    /// Generates a continuous multi-lead annotated record.
    ///
    /// `rhythm` gives the beat classes in temporal order; RR intervals follow
    /// each class's nominal coupling interval with ±8 % variability. Lead 0 is
    /// the reference morphology; further leads are scaled and slightly
    /// time-shifted projections of the same cardiac activity, which is enough
    /// to exercise the multi-lead delineation path of the paper.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::EcgError`] if the assembled record is inconsistent
    /// (which would indicate a bug in the generator).
    pub fn record(
        &mut self,
        id: u32,
        rhythm: &[BeatClass],
        num_leads: usize,
    ) -> crate::Result<EcgRecord> {
        assert!(num_leads >= 1, "a record needs at least one lead");
        let fs = self.fs;
        // Lay out R-peak positions.
        let mut peaks = Vec::with_capacity(rhythm.len());
        let mut t = 0.5; // lead-in of half a second before the first beat
        for &class in rhythm {
            let template = BeatTemplate::for_class(class);
            let rr = template.nominal_rr_s * (1.0 + 0.08 * standard_normal(&mut self.rng));
            t += rr.max(0.3);
            peaks.push((t, class));
        }
        let total_s = t + 0.6;
        let len = (total_s * fs).ceil() as usize;

        // Per-lead projection parameters.
        let lead_gains: Vec<f64> = (0..num_leads)
            .map(|l| match l {
                0 => 1.0,
                1 => 0.65 + 0.1 * standard_normal(&mut self.rng),
                _ => 0.45 + 0.1 * standard_normal(&mut self.rng),
            })
            .collect();
        let lead_shifts: Vec<f64> = (0..num_leads).map(|l| l as f64 * 0.002).collect();

        let mut leads: Vec<Vec<f64>> = vec![vec![0.0; len]; num_leads];
        let mut annotations = Vec::with_capacity(rhythm.len());

        for &(peak_t, class) in &peaks {
            let template = self.jittered_template(&BeatTemplate::for_class(class));
            let peak_sample = (peak_t * fs).round() as usize;
            if peak_sample >= len {
                continue;
            }
            annotations.push(Annotation::new(peak_sample, class));
            // Render the beat into every lead over a ±0.45 s support.
            let half = (0.45 * fs) as isize;
            for (lead_idx, lead) in leads.iter_mut().enumerate() {
                let gain = lead_gains[lead_idx];
                let shift = lead_shifts[lead_idx];
                for off in -half..=half {
                    let idx = peak_sample as isize + off;
                    if idx < 0 || idx as usize >= len {
                        continue;
                    }
                    let tt = off as f64 / fs - shift;
                    lead[idx as usize] += gain * template.value_at(tt);
                }
            }
        }

        // Add noise independently per lead.
        let noise = self.noise;
        for lead in &mut leads {
            let phase: f64 = self.rng.gen::<f64>() * std::f64::consts::TAU;
            noise.apply(lead, fs, phase, &mut self.rng);
        }

        EcgRecord::new(id, fs, leads, annotations)
    }

    /// Generates a rhythm string with the requested number of beats where
    /// abnormal beats (V, L) are interleaved among normals with the given
    /// probabilities.
    pub fn rhythm(&mut self, beats: usize, p_v: f64, p_l: f64) -> Vec<BeatClass> {
        (0..beats)
            .map(|_| {
                let x: f64 = self.rng.gen();
                if x < p_v {
                    BeatClass::PrematureVentricular
                } else if x < p_v + p_l {
                    BeatClass::LeftBundleBranchBlock
                } else {
                    BeatClass::Normal
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Adversarial scenarios
    //
    // These generators stress the monitoring pipeline with inputs the
    // classifier was never trained on. The contract under test is *ARR-safe
    // degradation*: the pipeline may classify such beats as `Unknown`, but it
    // must keep detecting them and keep routing them onward (Unknown is
    // abnormal, hence transmitted), never silently dropping them.
    // ------------------------------------------------------------------

    /// Generates an atrial-fibrillation-like record: irregularly irregular RR
    /// intervals, conducted beats without a P wave, and a low-amplitude
    /// fibrillatory (6–8 Hz) baseline between beats.
    ///
    /// Every annotation carries [`BeatClass::Unknown`] — AF is not one of the
    /// three trained morphologies, so the ground truth for downstream
    /// evaluation is "abnormal, class unknown".
    ///
    /// # Errors
    ///
    /// Propagates [`crate::EcgError`] if the assembled record is inconsistent.
    pub fn af_record(
        &mut self,
        id: u32,
        beats: usize,
        num_leads: usize,
    ) -> crate::Result<EcgRecord> {
        assert!(num_leads >= 1, "a record needs at least one lead");
        let fs = self.fs;
        // Conducted AF beat: normal morphology minus the P wave (waves[0]).
        let base = BeatTemplate {
            class: BeatClass::Normal,
            waves: BeatTemplate::normal().waves[1..].to_vec(),
            nominal_rr_s: 0.70,
        };
        // Irregularly irregular: RR drawn uniformly, no memory beat to beat.
        let mut peaks = Vec::with_capacity(beats);
        let mut t = 0.5;
        for _ in 0..beats {
            t += self.rng.gen_range(0.35..1.10);
            peaks.push(t);
        }
        let total_s = t + 0.6;
        let len = (total_s * fs).ceil() as usize;

        let lead_gains: Vec<f64> = (0..num_leads)
            .map(|l| match l {
                0 => 1.0,
                1 => 0.65 + 0.1 * standard_normal(&mut self.rng),
                _ => 0.45 + 0.1 * standard_normal(&mut self.rng),
            })
            .collect();
        let lead_shifts: Vec<f64> = (0..num_leads).map(|l| l as f64 * 0.002).collect();

        let mut leads: Vec<Vec<f64>> = vec![vec![0.0; len]; num_leads];
        let mut annotations = Vec::with_capacity(beats);

        for &peak_t in &peaks {
            let template = self.jittered_template(&base);
            let peak_sample = (peak_t * fs).round() as usize;
            if peak_sample >= len {
                continue;
            }
            annotations.push(Annotation::new(peak_sample, BeatClass::Unknown));
            let half = (0.45 * fs) as isize;
            for (lead_idx, lead) in leads.iter_mut().enumerate() {
                let gain = lead_gains[lead_idx];
                let shift = lead_shifts[lead_idx];
                for off in -half..=half {
                    let idx = peak_sample as isize + off;
                    if idx < 0 || idx as usize >= len {
                        continue;
                    }
                    let tt = off as f64 / fs - shift;
                    lead[idx as usize] += gain * template.value_at(tt);
                }
            }
        }

        // Fibrillatory baseline: a ~0.06 mV oscillation at 6–8 Hz whose
        // amplitude wanders slowly, replacing the absent P waves.
        for lead in &mut leads {
            let f_hz: f64 = self.rng.gen_range(6.0..8.0);
            let phase: f64 = self.rng.gen::<f64>() * std::f64::consts::TAU;
            let wander_phase: f64 = self.rng.gen::<f64>() * std::f64::consts::TAU;
            for (i, s) in lead.iter_mut().enumerate() {
                let tt = i as f64 / fs;
                let envelope = 1.0 + 0.5 * (std::f64::consts::TAU * 0.3 * tt + wander_phase).sin();
                *s += 0.06 * envelope * (std::f64::consts::TAU * f_hz * tt + phase).sin();
            }
        }

        let noise = self.noise;
        for lead in &mut leads {
            let phase: f64 = self.rng.gen::<f64>() * std::f64::consts::TAU;
            noise.apply(lead, fs, phase, &mut self.rng);
        }

        EcgRecord::new(id, fs, leads, annotations)
    }

    /// Injects `pops` electrode-pop artifacts into an existing record: at a
    /// random position on a random lead, the signal jumps by ±3–8 mV and the
    /// offset decays exponentially with a ~0.3 s time constant, as when an
    /// electrode momentarily loses and regains skin contact.
    pub fn electrode_pop(&mut self, record: &mut EcgRecord, pops: usize) {
        let len = record.len();
        if len == 0 {
            return;
        }
        let fs = record.fs;
        let tau_samples = 0.3 * fs;
        for _ in 0..pops {
            let lead = self.rng.gen_range(0..record.leads.len());
            let at = self.rng.gen_range(0..len);
            let magnitude: f64 = self.rng.gen_range(3.0..8.0);
            let step = if self.rng.gen_bool(0.5) {
                magnitude
            } else {
                -magnitude
            };
            let signal = &mut record.leads[lead];
            for (off, s) in signal[at..].iter_mut().enumerate() {
                let decay = (-(off as f64) / tau_samples).exp();
                if decay < 1e-3 {
                    break;
                }
                *s += step * decay;
            }
        }
    }

    /// Flatlines one lead over `[start_s, start_s + dur_s)`: the lead holds
    /// its last pre-dropout value, as when a lead wire detaches. Other leads
    /// are untouched, so multi-lead delineation can still recover the beats.
    ///
    /// Out-of-range times are clamped to the record; an out-of-range lead is
    /// a no-op.
    pub fn lead_dropout(record: &mut EcgRecord, lead: usize, start_s: f64, dur_s: f64) {
        let len = record.len();
        let Some(signal) = record.leads.get_mut(lead) else {
            return;
        };
        let start = ((start_s * record.fs).round().max(0.0) as usize).min(len);
        let end = (((start_s + dur_s) * record.fs).round().max(0.0) as usize).min(len);
        if start >= end {
            return;
        }
        let hold = if start > 0 { signal[start - 1] } else { 0.0 };
        for s in &mut signal[start..end] {
            *s = hold;
        }
    }

    /// Adds a severe multi-component baseline-wander storm to every lead:
    /// three superimposed drifts at random frequencies in 0.10–0.60 Hz, each
    /// up to `amplitude_mv` peak — far beyond the ambulatory noise model, as
    /// during vigorous motion.
    pub fn baseline_storm(&mut self, record: &mut EcgRecord, amplitude_mv: f64) {
        let fs = record.fs;
        for lead in &mut record.leads {
            for _ in 0..3 {
                let f_hz: f64 = self.rng.gen_range(0.10..0.60);
                let amp: f64 = amplitude_mv * self.rng.gen_range(0.4..1.0);
                let phase: f64 = self.rng.gen::<f64>() * std::f64::consts::TAU;
                for (i, s) in lead.iter_mut().enumerate() {
                    let tt = i as f64 / fs;
                    *s += amp * (std::f64::consts::TAU * f_hz * tt + phase).sin();
                }
            }
        }
    }

    /// Superimposes pacemaker-like artifacts on every lead: very narrow
    /// (~2-sample) ~4 mV spikes repeating every `period_s` seconds with a
    /// small timing jitter. Narrow spikes stress the morphological R-peak
    /// detector, which must not mistake them for QRS complexes or lose the
    /// real beats between them.
    pub fn pacing_artifacts(&mut self, record: &mut EcgRecord, period_s: f64) {
        assert!(period_s > 0.0, "pacing period must be positive");
        let fs = record.fs;
        let len = record.len();
        let mut t = self.rng.gen_range(0.0..period_s);
        while (t * fs) < len as f64 {
            let at = (t * fs).round() as usize;
            let amp: f64 = 4.0 * self.rng.gen_range(0.8..1.2);
            let polarity = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            for lead in &mut record.leads {
                for off in 0..2usize {
                    if at + off < len {
                        lead[at + off] += polarity * amp * if off == 0 { 1.0 } else { 0.45 };
                    }
                }
            }
            t += period_s * (1.0 + 0.02 * standard_normal(&mut self.rng));
        }
    }

    /// Resamples a record by `factor` without changing its declared sampling
    /// frequency, simulating a sensor whose ADC clock runs fast
    /// (`factor > 1`, beats look slower/wider) or slow (`factor < 1`).
    /// Signals are linearly interpolated; annotation positions are scaled to
    /// stay on their R peaks. Deterministic — no generator state involved.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EcgError::OutOfRange`] when `factor` is not a normal
    /// positive number or the skewed record would be empty; otherwise
    /// propagates [`crate::EcgError`] from record assembly.
    pub fn rate_skew(record: &EcgRecord, factor: f64) -> crate::Result<EcgRecord> {
        if !factor.is_normal() || factor <= 0.0 {
            return Err(crate::EcgError::OutOfRange(format!(
                "rate-skew factor must be a positive finite number, got {factor}"
            )));
        }
        let src_len = record.len();
        let new_len = ((src_len as f64) * factor).round() as usize;
        if src_len < 2 || new_len < 2 {
            return Err(crate::EcgError::OutOfRange(
                "rate skew needs at least two samples before and after".into(),
            ));
        }
        let leads: Vec<Vec<f64>> = record
            .leads
            .iter()
            .map(|src| {
                (0..new_len)
                    .map(|i| {
                        let pos = i as f64 / factor;
                        let lo = (pos.floor() as usize).min(src_len - 1);
                        let hi = (lo + 1).min(src_len - 1);
                        let frac = pos - lo as f64;
                        src[lo] * (1.0 - frac) + src[hi] * frac
                    })
                    .collect()
            })
            .collect();
        let annotations: Vec<Annotation> = record
            .annotations
            .iter()
            .map(|a| {
                let sample = ((a.sample as f64) * factor).round() as usize;
                Annotation::new(sample.min(new_len - 1), a.class)
            })
            .collect();
        EcgRecord::new(record.id, record.fs, leads, annotations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qrs_width_above(beat: &Beat, threshold_mv: f64) -> f64 {
        // Width (in seconds at 360 Hz) of the region around the peak where the
        // absolute amplitude stays above the threshold.
        let above: Vec<usize> = beat
            .samples
            .iter()
            .enumerate()
            .filter(|(_, &s)| s.abs() > threshold_mv)
            .map(|(i, _)| i)
            .collect();
        if above.is_empty() {
            return 0.0;
        }
        (above[above.len() - 1] - above[0]) as f64 / MITBIH_FS
    }

    #[test]
    fn beats_have_the_requested_window_length() {
        let mut gen = SyntheticEcg::with_seed(3);
        for class in BeatClass::LABELLED {
            let b = gen.beat(class);
            assert_eq!(b.samples.len(), 200);
            assert_eq!(b.peak_index, 100);
            assert_eq!(b.class, class);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = SyntheticEcg::with_seed(11);
        let mut b = SyntheticEcg::with_seed(11);
        assert_eq!(a.beat(BeatClass::Normal), b.beat(BeatClass::Normal));
        let mut c = SyntheticEcg::with_seed(12);
        assert_ne!(a.beat(BeatClass::Normal), c.beat(BeatClass::Normal));
    }

    #[test]
    fn morphologies_are_discriminable() {
        // Clean templates: the V beat must have a much wider high-amplitude
        // region than the N beat, and the L beat must have an inverted T wave.
        let mut gen = SyntheticEcg::with_seed(5)
            .with_noise(NoiseModel::clean())
            .with_variability(Variability::none());
        let n = gen.beat(BeatClass::Normal);
        let v = gen.beat(BeatClass::PrematureVentricular);
        let l = gen.beat(BeatClass::LeftBundleBranchBlock);

        let wn = qrs_width_above(&n, 0.3);
        let wv = qrs_width_above(&v, 0.3);
        assert!(
            wv > 1.5 * wn,
            "V QRS ({wv}s) should be much wider than N ({wn}s)"
        );

        // T wave region: 180–270 ms after the peak (within the 100-sample
        // post-peak window).
        let t_region = |b: &Beat| -> f64 {
            let start = 100 + (0.18 * MITBIH_FS) as usize;
            let end = 100 + (0.27 * MITBIH_FS) as usize;
            b.samples[start..end].iter().sum::<f64>() / (end - start) as f64
        };
        assert!(t_region(&n) > 0.0, "normal T wave is upright");
        assert!(t_region(&l) < 0.0, "LBBB T wave is discordant (inverted)");
        assert!(t_region(&v) < 0.0, "PVC T wave is discordant (inverted)");
    }

    #[test]
    fn pvc_lacks_p_wave() {
        let mut gen = SyntheticEcg::with_seed(9)
            .with_noise(NoiseModel::clean())
            .with_variability(Variability::none());
        let n = gen.beat(BeatClass::Normal);
        let v = gen.beat(BeatClass::PrematureVentricular);
        // P-wave region: 220–140 ms before the peak.
        let p_region = |b: &Beat| -> f64 {
            let start = 100 - (0.22 * MITBIH_FS) as usize;
            let end = 100 - (0.14 * MITBIH_FS) as usize;
            b.samples[start..end].iter().map(|s| s.abs()).sum::<f64>() / (end - start) as f64
        };
        assert!(
            p_region(&n) > 3.0 * p_region(&v),
            "N has a P wave, V does not"
        );
    }

    #[test]
    fn record_generation_annotates_every_rendered_beat() {
        let mut gen = SyntheticEcg::with_seed(21);
        let rhythm = gen.rhythm(40, 0.1, 0.1);
        let record = gen.record(200, &rhythm, 3).expect("record generation");
        assert_eq!(record.num_leads(), 3);
        assert_eq!(record.annotations.len(), 40);
        assert!(record.duration_s() > 20.0);
        // Annotated peaks should coincide with locally large amplitudes.
        let lead0 = record.lead(crate::record::Lead(0)).expect("lead 0");
        for ann in &record.annotations {
            let lo = ann.sample.saturating_sub(5);
            let hi = (ann.sample + 5).min(lead0.len());
            let local_max = lead0[lo..hi].iter().cloned().fold(f64::MIN, f64::max);
            assert!(
                local_max > 0.4,
                "annotation at {} does not sit on a QRS (max {local_max})",
                ann.sample
            );
        }
    }

    #[test]
    fn rhythm_probabilities_are_respected_roughly() {
        let mut gen = SyntheticEcg::with_seed(33);
        let rhythm = gen.rhythm(5000, 0.2, 0.1);
        let v = rhythm
            .iter()
            .filter(|&&c| c == BeatClass::PrematureVentricular)
            .count() as f64
            / 5000.0;
        let l = rhythm
            .iter()
            .filter(|&&c| c == BeatClass::LeftBundleBranchBlock)
            .count() as f64
            / 5000.0;
        assert!((v - 0.2).abs() < 0.03, "V fraction {v}");
        assert!((l - 0.1).abs() < 0.03, "L fraction {l}");
    }

    #[test]
    #[should_panic(expected = "Unknown")]
    fn unknown_class_cannot_be_generated() {
        let mut gen = SyntheticEcg::with_seed(1);
        gen.beat(BeatClass::Unknown);
    }

    // ----- adversarial scenarios -----

    #[test]
    fn af_record_is_irregular_p_less_and_all_unknown() {
        let mut gen = SyntheticEcg::with_seed(71);
        let record = gen.af_record(300, 30, 2).expect("af record");
        assert_eq!(record.num_leads(), 2);
        assert_eq!(record.annotations.len(), 30);
        assert!(record
            .annotations
            .iter()
            .all(|a| a.class == BeatClass::Unknown));
        // Irregularly irregular: RR spread far wider than the ±8 % of a
        // sinus rhythm.
        let rrs: Vec<f64> = record
            .annotations
            .windows(2)
            .map(|w| (w[1].sample - w[0].sample) as f64 / record.fs)
            .collect();
        let min = rrs.iter().cloned().fold(f64::MAX, f64::min);
        let max = rrs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max / min > 1.5,
            "AF RR spread should be wide (min {min}, max {max})"
        );
        // Beats are still there: each annotation sits on a QRS.
        let lead0 = record.lead(crate::record::Lead(0)).expect("lead 0");
        for ann in &record.annotations {
            let lo = ann.sample.saturating_sub(5);
            let hi = (ann.sample + 5).min(lead0.len());
            let local_max = lead0[lo..hi].iter().cloned().fold(f64::MIN, f64::max);
            assert!(local_max > 0.4, "annotation at {} off a QRS", ann.sample);
        }
        // Determinism for a fixed seed.
        let again = SyntheticEcg::with_seed(71)
            .af_record(300, 30, 2)
            .expect("af record");
        assert_eq!(record, again);
    }

    #[test]
    fn electrode_pop_adds_large_decaying_steps() {
        let mut gen = SyntheticEcg::with_seed(41);
        let rhythm = vec![BeatClass::Normal; 10];
        let clean = gen.record(301, &rhythm, 2).expect("record");
        let mut popped = clean.clone();
        gen.electrode_pop(&mut popped, 3);
        assert_eq!(popped.len(), clean.len());
        assert_eq!(popped.annotations, clean.annotations, "labels untouched");
        // Somewhere, the difference to the clean record reaches pop scale.
        let max_diff = popped
            .leads
            .iter()
            .zip(&clean.leads)
            .flat_map(|(p, c)| p.iter().zip(c).map(|(a, b)| (a - b).abs()))
            .fold(f64::MIN, f64::max);
        assert!(
            max_diff > 2.5,
            "pop amplitude visible (max diff {max_diff})"
        );
    }

    #[test]
    fn lead_dropout_flatlines_only_the_requested_lead() {
        let mut gen = SyntheticEcg::with_seed(42);
        let rhythm = vec![BeatClass::Normal; 12];
        let clean = gen.record(302, &rhythm, 3).expect("record");
        let mut dropped = clean.clone();
        SyntheticEcg::lead_dropout(&mut dropped, 1, 2.0, 3.0);
        let fs = dropped.fs;
        let (start, end) = ((2.0 * fs) as usize, (5.0 * fs) as usize);
        let hold = dropped.leads[1][start];
        assert!(
            dropped.leads[1][start..end].iter().all(|&s| s == hold),
            "dropout window is flat"
        );
        assert_eq!(dropped.leads[0], clean.leads[0], "lead 0 untouched");
        assert_eq!(dropped.leads[2], clean.leads[2], "lead 2 untouched");
        // Out-of-range lead and empty window are no-ops.
        let before = dropped.clone();
        SyntheticEcg::lead_dropout(&mut dropped, 9, 0.0, 1.0);
        SyntheticEcg::lead_dropout(&mut dropped, 0, 5.0, 0.0);
        assert_eq!(dropped, before);
    }

    #[test]
    fn baseline_storm_adds_low_frequency_power() {
        let mut gen = SyntheticEcg::with_seed(43);
        let rhythm = vec![BeatClass::Normal; 10];
        let clean = gen.record(303, &rhythm, 1).expect("record");
        let mut stormy = clean.clone();
        gen.baseline_storm(&mut stormy, 1.5);
        assert_eq!(stormy.annotations, clean.annotations);
        // The added drift should move the signal mean over multi-second
        // windows by a sizeable fraction of the storm amplitude somewhere.
        let fs = clean.fs as usize;
        let max_window_shift = stormy.leads[0]
            .chunks(fs)
            .zip(clean.leads[0].chunks(fs))
            .map(|(s, c)| {
                let ms = s.iter().sum::<f64>() / s.len() as f64;
                let mc = c.iter().sum::<f64>() / c.len() as f64;
                (ms - mc).abs()
            })
            .fold(f64::MIN, f64::max);
        assert!(
            max_window_shift > 0.5,
            "storm shifts one-second means (max {max_window_shift})"
        );
    }

    #[test]
    fn pacing_artifacts_appear_at_the_requested_cadence() {
        let mut gen = SyntheticEcg::with_seed(44);
        let rhythm = vec![BeatClass::Normal; 10];
        let clean = gen.record(304, &rhythm, 1).expect("record");
        let mut paced = clean.clone();
        gen.pacing_artifacts(&mut paced, 1.0);
        assert_eq!(paced.annotations, clean.annotations);
        // Count samples whose difference to the clean record exceeds 2 mV:
        // roughly one spike (2 samples) per second.
        let spikes = paced.leads[0]
            .iter()
            .zip(&clean.leads[0])
            .filter(|(a, b)| (*a - *b).abs() > 2.0)
            .count();
        let seconds = clean.duration_s();
        assert!(
            spikes as f64 > seconds * 0.8 && (spikes as f64) < seconds * 4.0,
            "~2 spike samples per second expected, got {spikes} over {seconds:.1}s"
        );
    }

    #[test]
    fn rate_skew_scales_signal_and_annotations() {
        let mut gen = SyntheticEcg::with_seed(45);
        let rhythm = vec![BeatClass::Normal; 8];
        let clean = gen.record(305, &rhythm, 2).expect("record");
        let skewed = SyntheticEcg::rate_skew(&clean, 1.10).expect("skewed");
        assert_eq!(skewed.num_leads(), clean.num_leads());
        assert_eq!(skewed.annotations.len(), clean.annotations.len());
        let expected = ((clean.len() as f64) * 1.10).round() as usize;
        assert_eq!(skewed.len(), expected);
        for (s, c) in skewed.annotations.iter().zip(&clean.annotations) {
            assert_eq!(s.class, c.class);
            let expected = ((c.sample as f64) * 1.10).round() as usize;
            assert_eq!(s.sample, expected);
        }
        // Identity skew reproduces the record exactly.
        let same = SyntheticEcg::rate_skew(&clean, 1.0).expect("identity");
        assert_eq!(same, clean);
        // Invalid factors are rejected.
        assert!(SyntheticEcg::rate_skew(&clean, 0.0).is_err());
        assert!(SyntheticEcg::rate_skew(&clean, f64::NAN).is_err());
        assert!(SyntheticEcg::rate_skew(&clean, -1.0).is_err());
    }
}
