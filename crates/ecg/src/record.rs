//! Continuous ECG records and beat annotations.
//!
//! An [`EcgRecord`] is a multi-lead, uniformly sampled recording together with
//! a list of beat [`Annotation`]s (R-peak position + morphology label), exactly
//! like a record of the MIT-BIH Arrhythmia Database. Records are either read
//! from disk ([`crate::mitbih`]) or produced by the synthetic generator
//! ([`crate::synthetic`]).

use crate::beat::{Beat, BeatClass, BeatWindow};
use crate::{EcgError, Result};

/// Identifier of an ECG lead within a record.
///
/// The MIT-BIH records carry two leads (usually MLII and V1); the delineation
/// scenario of the paper (Figure 6) uses three leads. The synthetic generator
/// can produce an arbitrary number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lead(pub usize);

impl std::fmt::Display for Lead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lead {}", self.0)
    }
}

/// A beat annotation: the sample index of the R peak and the morphology
/// assigned by a cardiologist (or by the synthetic generator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Annotation {
    /// Sample index of the annotated R peak.
    pub sample: usize,
    /// Morphology label.
    pub class: BeatClass,
}

impl Annotation {
    /// Creates a new annotation.
    pub fn new(sample: usize, class: BeatClass) -> Self {
        Annotation { sample, class }
    }
}

/// A multi-lead ECG recording with beat annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct EcgRecord {
    /// Numeric identifier (e.g. `100`, `208` for MIT-BIH records).
    pub id: u32,
    /// Sampling frequency in Hz.
    pub fs: f64,
    /// One signal per lead, all of identical length, in millivolts.
    pub leads: Vec<Vec<f64>>,
    /// Beat annotations sorted by sample index.
    pub annotations: Vec<Annotation>,
}

impl EcgRecord {
    /// Creates a record from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::Format`] when no lead is present or the leads have
    /// mismatched lengths, and [`EcgError::OutOfRange`] when an annotation
    /// points outside the signal.
    pub fn new(
        id: u32,
        fs: f64,
        leads: Vec<Vec<f64>>,
        mut annotations: Vec<Annotation>,
    ) -> Result<Self> {
        if leads.is_empty() {
            return Err(EcgError::Format(
                "record must contain at least one lead".into(),
            ));
        }
        let len = leads[0].len();
        if leads.iter().any(|l| l.len() != len) {
            return Err(EcgError::Format(format!(
                "all leads must have the same length (first lead has {len} samples)"
            )));
        }
        if let Some(a) = annotations.iter().find(|a| a.sample >= len) {
            return Err(EcgError::OutOfRange(format!(
                "annotation at sample {} is outside the {}-sample record",
                a.sample, len
            )));
        }
        annotations.sort_by_key(|a| a.sample);
        Ok(EcgRecord {
            id,
            fs,
            leads,
            annotations,
        })
    }

    /// Number of samples per lead.
    pub fn len(&self) -> usize {
        self.leads.first().map_or(0, Vec::len)
    }

    /// Whether the record holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of leads.
    pub fn num_leads(&self) -> usize {
        self.leads.len()
    }

    /// Recording duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.len() as f64 / self.fs
    }

    /// Returns the samples of one lead.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::OutOfRange`] when the lead does not exist.
    pub fn lead(&self, lead: Lead) -> Result<&[f64]> {
        self.leads
            .get(lead.0)
            .map(Vec::as_slice)
            .ok_or_else(|| EcgError::OutOfRange(format!("record {} has no {lead}", self.id)))
    }

    /// Extracts every annotated beat of the three supported morphologies from
    /// the given lead using `window`, skipping beats whose window would fall
    /// outside the record.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::OutOfRange`] when the lead does not exist.
    pub fn extract_beats(&self, lead: Lead, window: BeatWindow) -> Result<Vec<Beat>> {
        let signal = self.lead(lead)?;
        let mut beats = Vec::with_capacity(self.annotations.len());
        for ann in &self.annotations {
            if ann.class == BeatClass::Unknown {
                continue;
            }
            if let Some(samples) = window.extract(signal, ann.sample) {
                beats.push(Beat {
                    samples,
                    class: ann.class,
                    peak_index: window.pre,
                    record_id: self.id,
                    record_position: ann.sample,
                });
            }
        }
        Ok(beats)
    }

    /// Counts annotations per class, in class-index order (N, V, L).
    pub fn class_counts(&self) -> [usize; crate::beat::NUM_CLASSES] {
        let mut counts = [0usize; crate::beat::NUM_CLASSES];
        for a in &self.annotations {
            if let Some(i) = a.class.index() {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Average RR interval (distance between consecutive annotated peaks) in
    /// seconds, or `None` when fewer than two annotations exist.
    pub fn mean_rr_s(&self) -> Option<f64> {
        if self.annotations.len() < 2 {
            return None;
        }
        let total: usize = self
            .annotations
            .windows(2)
            .map(|w| w[1].sample - w[0].sample)
            .sum();
        Some(total as f64 / (self.annotations.len() - 1) as f64 / self.fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with(leads: Vec<Vec<f64>>, anns: Vec<Annotation>) -> Result<EcgRecord> {
        EcgRecord::new(100, 360.0, leads, anns)
    }

    #[test]
    fn rejects_empty_and_ragged_leads() {
        assert!(matches!(
            record_with(vec![], vec![]),
            Err(EcgError::Format(_))
        ));
        assert!(matches!(
            record_with(vec![vec![0.0; 10], vec![0.0; 9]], vec![]),
            Err(EcgError::Format(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_annotation() {
        let r = record_with(
            vec![vec![0.0; 100]],
            vec![Annotation::new(100, BeatClass::Normal)],
        );
        assert!(matches!(r, Err(EcgError::OutOfRange(_))));
    }

    #[test]
    fn annotations_are_sorted() {
        let r = record_with(
            vec![vec![0.0; 1000]],
            vec![
                Annotation::new(700, BeatClass::Normal),
                Annotation::new(300, BeatClass::PrematureVentricular),
            ],
        )
        .expect("valid record");
        assert_eq!(r.annotations[0].sample, 300);
        assert_eq!(r.annotations[1].sample, 700);
    }

    #[test]
    fn beat_extraction_skips_edge_beats() {
        let signal: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let r = record_with(
            vec![signal],
            vec![
                Annotation::new(50, BeatClass::Normal), // too close to start
                Annotation::new(500, BeatClass::Normal),
                Annotation::new(950, BeatClass::LeftBundleBranchBlock), // too close to end
            ],
        )
        .expect("valid record");
        let beats = r
            .extract_beats(Lead(0), BeatWindow::PAPER)
            .expect("lead exists");
        assert_eq!(beats.len(), 1);
        assert_eq!(beats[0].record_position, 500);
        assert_eq!(beats[0].samples.len(), 200);
        assert_eq!(beats[0].samples[0], 400.0);
    }

    #[test]
    fn missing_lead_is_an_error() {
        let r = record_with(vec![vec![0.0; 10]], vec![]).expect("valid record");
        assert!(r.lead(Lead(1)).is_err());
        assert!(r.extract_beats(Lead(3), BeatWindow::PAPER).is_err());
    }

    #[test]
    fn class_counts_and_rr() {
        let r = record_with(
            vec![vec![0.0; 2000]],
            vec![
                Annotation::new(300, BeatClass::Normal),
                Annotation::new(660, BeatClass::PrematureVentricular),
                Annotation::new(1020, BeatClass::Normal),
                Annotation::new(1380, BeatClass::LeftBundleBranchBlock),
            ],
        )
        .expect("valid record");
        assert_eq!(r.class_counts(), [2, 1, 1]);
        let rr = r.mean_rr_s().expect("at least two annotations");
        assert!(
            (rr - 1.0).abs() < 1e-9,
            "360 samples at 360 Hz is 1 s, got {rr}"
        );
        assert!((r.duration_s() - 2000.0 / 360.0).abs() < 1e-9);
    }

    #[test]
    fn mean_rr_requires_two_annotations() {
        let r = record_with(
            vec![vec![0.0; 10]],
            vec![Annotation::new(2, BeatClass::Normal)],
        )
        .expect("valid record");
        assert_eq!(r.mean_rr_s(), None);
    }
}
