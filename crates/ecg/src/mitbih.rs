//! MIT-BIH Arrhythmia Database file formats.
//!
//! The paper evaluates on the MIT-BIH Arrhythmia Database distributed by
//! PhysioBank. This module implements readers (and, to support round-trip
//! testing and offline fixture generation, writers) for the two formats a
//! record consists of:
//!
//! * **format 212 signal files** (`*.dat`) — two interleaved 12-bit channels
//!   packed into 3 bytes per sample pair;
//! * **annotation files** (`*.atr`) — the compact MIT annotation byte-pair
//!   encoding carrying, per beat, a time increment and an annotation code.
//!
//! When the real database is present on disk these readers feed the exact
//! recordings into the pipeline; otherwise the synthetic generator
//! ([`crate::synthetic`]) is used instead (see `DESIGN.md` for the
//! substitution rationale).

use std::io::Read;
use std::path::Path;

use crate::beat::BeatClass;
use crate::record::{Annotation, EcgRecord};
use crate::{EcgError, Result, MITBIH_FS};

/// Default analogue-to-digital gain of the MIT-BIH recordings (ADC units per
/// millivolt).
pub const DEFAULT_ADC_GAIN: f64 = 200.0;

/// Default ADC zero offset of the MIT-BIH recordings.
pub const DEFAULT_ADC_ZERO: i32 = 1024;

/// MIT annotation codes for the beat types used in the paper.
///
/// Codes follow the PhysioBank `ecgcodes.h` convention: `NORMAL = 1`,
/// `LBBB = 3`, `PVC = 5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitAnnotationCode {
    /// Normal beat (`N`, code 1).
    Normal,
    /// Left bundle branch block beat (`L`, code 3).
    Lbbb,
    /// Premature ventricular contraction (`V`, code 5).
    Pvc,
    /// Any other code (fusion, paced, artifacts, rhythm changes, …).
    Other(u8),
}

impl MitAnnotationCode {
    /// Numeric code as stored in the annotation file.
    pub fn code(self) -> u8 {
        match self {
            MitAnnotationCode::Normal => 1,
            MitAnnotationCode::Lbbb => 3,
            MitAnnotationCode::Pvc => 5,
            MitAnnotationCode::Other(c) => c,
        }
    }

    /// Builds the enum from a raw numeric code.
    pub fn from_code(code: u8) -> Self {
        match code {
            1 => MitAnnotationCode::Normal,
            3 => MitAnnotationCode::Lbbb,
            5 => MitAnnotationCode::Pvc,
            c => MitAnnotationCode::Other(c),
        }
    }

    /// Maps onto the classifier's [`BeatClass`], or `None` for codes outside
    /// the paper's three classes.
    pub fn beat_class(self) -> Option<BeatClass> {
        match self {
            MitAnnotationCode::Normal => Some(BeatClass::Normal),
            MitAnnotationCode::Lbbb => Some(BeatClass::LeftBundleBranchBlock),
            MitAnnotationCode::Pvc => Some(BeatClass::PrematureVentricular),
            MitAnnotationCode::Other(_) => None,
        }
    }
}

/// Decodes a format-212 byte stream into two channels of raw ADC samples.
///
/// Format 212 packs two 12-bit samples into three bytes:
/// byte 0 = low 8 bits of sample A, byte 1 = high 4 bits of sample B (upper
/// nibble) and high 4 bits of sample A (lower nibble), byte 2 = low 8 bits of
/// sample B. Samples are two's-complement 12-bit values.
///
/// # Errors
///
/// Returns [`EcgError::Format`] if the byte stream length is not a multiple of
/// three.
pub fn decode_format_212(bytes: &[u8]) -> Result<(Vec<i32>, Vec<i32>)> {
    if !bytes.len().is_multiple_of(3) {
        return Err(EcgError::Format(format!(
            "format 212 stream length {} is not a multiple of 3",
            bytes.len()
        )));
    }
    let pairs = bytes.len() / 3;
    let mut ch0 = Vec::with_capacity(pairs);
    let mut ch1 = Vec::with_capacity(pairs);
    for chunk in bytes.chunks_exact(3) {
        let a = (chunk[0] as u16) | (((chunk[1] & 0x0F) as u16) << 8);
        let b = (chunk[2] as u16) | (((chunk[1] & 0xF0) as u16) << 4);
        ch0.push(sign_extend_12(a));
        ch1.push(sign_extend_12(b));
    }
    Ok((ch0, ch1))
}

/// Encodes two channels of 12-bit samples into a format-212 byte stream.
///
/// Used to build test fixtures and to verify the decoder by round-trip.
///
/// # Panics
///
/// Panics if the channels have different lengths or a sample does not fit in
/// 12 bits.
pub fn encode_format_212(ch0: &[i32], ch1: &[i32]) -> Vec<u8> {
    assert_eq!(
        ch0.len(),
        ch1.len(),
        "format 212 requires equal-length channels"
    );
    let mut out = Vec::with_capacity(ch0.len() * 3);
    for (&a, &b) in ch0.iter().zip(ch1) {
        assert!(
            (-2048..=2047).contains(&a),
            "sample {a} does not fit in 12 bits"
        );
        assert!(
            (-2048..=2047).contains(&b),
            "sample {b} does not fit in 12 bits"
        );
        let ua = (a & 0x0FFF) as u16;
        let ub = (b & 0x0FFF) as u16;
        out.push((ua & 0xFF) as u8);
        out.push((((ub >> 8) as u8) << 4) | ((ua >> 8) as u8));
        out.push((ub & 0xFF) as u8);
    }
    out
}

fn sign_extend_12(v: u16) -> i32 {
    let v = v & 0x0FFF;
    if v & 0x0800 != 0 {
        (v as i32) - 4096
    } else {
        v as i32
    }
}

/// Decodes an MIT annotation byte stream into `(sample, code)` pairs.
///
/// The MIT annotation format stores a sequence of little-endian 16-bit words;
/// the upper 6 bits are the annotation code and the lower 10 bits a time
/// increment relative to the previous annotation. Code 0 with increment 0
/// terminates the stream. `SKIP` (59) extends the time increment with a
/// 4-byte value. Auxiliary codes (`NUM`=60, `SUB`=61, `CHN`=62, `AUX`=63) are
/// parsed and skipped.
///
/// # Errors
///
/// Returns [`EcgError::Format`] on a truncated stream.
pub fn decode_annotations(bytes: &[u8]) -> Result<Vec<(usize, MitAnnotationCode)>> {
    let mut out = Vec::new();
    let mut time: i64 = 0;
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        let word = u16::from_le_bytes([bytes[i], bytes[i + 1]]);
        i += 2;
        let code = (word >> 10) as u8;
        let delta = (word & 0x03FF) as i64;
        match code {
            0 if delta == 0 => break, // end of file marker
            59 => {
                // SKIP: the next four bytes hold a long time increment
                // (PhysioBank stores the high word first).
                if i + 3 >= bytes.len() {
                    return Err(EcgError::Format("truncated SKIP annotation".into()));
                }
                let high = u16::from_le_bytes([bytes[i], bytes[i + 1]]) as i64;
                let low = u16::from_le_bytes([bytes[i + 2], bytes[i + 3]]) as i64;
                time += (high << 16) | low;
                i += 4;
            }
            60..=62 => { /* NUM / SUB / CHN: modifier only, no time advance */ }
            63 => {
                // AUX: delta holds the byte count of an auxiliary string,
                // padded to an even length.
                let n = (delta as usize) + (delta as usize & 1);
                if i + n > bytes.len() {
                    return Err(EcgError::Format("truncated AUX annotation".into()));
                }
                i += n;
            }
            _ => {
                time += delta;
                out.push((time.max(0) as usize, MitAnnotationCode::from_code(code)));
            }
        }
    }
    Ok(out)
}

/// Encodes `(sample, code)` pairs into the MIT annotation byte format.
///
/// Only plain beat annotations are produced (no AUX/SKIP unless an interval
/// exceeds the 10-bit range, in which case a SKIP record is emitted).
///
/// # Panics
///
/// Panics if the samples are not strictly increasing.
pub fn encode_annotations(annotations: &[(usize, MitAnnotationCode)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(annotations.len() * 2 + 2);
    let mut prev: usize = 0;
    for &(sample, code) in annotations {
        assert!(sample >= prev, "annotation samples must be non-decreasing");
        let mut delta = sample - prev;
        if delta > 0x03FF {
            // Emit SKIP with the full increment, then the annotation with a
            // zero delta.
            let d = delta as u32;
            out.extend_from_slice(&((59u16 << 10).to_le_bytes()));
            out.extend_from_slice(&(((d >> 16) as u16).to_le_bytes()));
            out.extend_from_slice(&((d as u16).to_le_bytes()));
            delta = 0;
        }
        let word: u16 = ((code.code() as u16) << 10) | (delta as u16 & 0x03FF);
        out.extend_from_slice(&word.to_le_bytes());
        prev = sample;
    }
    out.extend_from_slice(&0u16.to_le_bytes()); // end marker
    out
}

/// Reads an MIT-BIH record from a format-212 signal file and an annotation
/// file.
///
/// `adc_gain` converts raw ADC units into millivolts and `adc_zero` is the
/// baseline offset (use [`DEFAULT_ADC_GAIN`] / [`DEFAULT_ADC_ZERO`] for the
/// Arrhythmia Database).
///
/// # Errors
///
/// Returns [`EcgError::Io`] if a file cannot be read and [`EcgError::Format`]
/// if its content is malformed.
pub fn read_record(
    id: u32,
    dat_path: &Path,
    atr_path: &Path,
    adc_gain: f64,
    adc_zero: i32,
) -> Result<EcgRecord> {
    let mut dat = Vec::new();
    std::fs::File::open(dat_path)?.read_to_end(&mut dat)?;
    let mut atr = Vec::new();
    std::fs::File::open(atr_path)?.read_to_end(&mut atr)?;
    record_from_bytes(id, &dat, &atr, adc_gain, adc_zero)
}

/// Builds an [`EcgRecord`] from in-memory format-212 and annotation byte
/// streams. This is the pure core of [`read_record`], exposed for testing and
/// for callers that keep the database in memory.
///
/// # Errors
///
/// Returns [`EcgError::Format`] if either stream is malformed.
pub fn record_from_bytes(
    id: u32,
    dat: &[u8],
    atr: &[u8],
    adc_gain: f64,
    adc_zero: i32,
) -> Result<EcgRecord> {
    let (ch0, ch1) = decode_format_212(dat)?;
    let to_mv = |v: &i32| (*v - adc_zero) as f64 / adc_gain;
    let leads = vec![
        ch0.iter().map(to_mv).collect(),
        ch1.iter().map(to_mv).collect(),
    ];
    let annotations = decode_annotations(atr)?
        .into_iter()
        .filter_map(|(sample, code)| code.beat_class().map(|c| Annotation::new(sample, c)))
        .filter(|a| a.sample < ch0.len())
        .collect();
    EcgRecord::new(id, MITBIH_FS, leads, annotations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_212_roundtrip() {
        let ch0: Vec<i32> = vec![0, 1, -1, 2047, -2048, 512, -100, 99];
        let ch1: Vec<i32> = vec![-5, 7, 1023, -1024, 0, 33, -2048, 2047];
        let bytes = encode_format_212(&ch0, &ch1);
        assert_eq!(bytes.len(), ch0.len() * 3);
        let (d0, d1) = decode_format_212(&bytes).expect("decode");
        assert_eq!(d0, ch0);
        assert_eq!(d1, ch1);
    }

    #[test]
    fn format_212_rejects_bad_length() {
        assert!(decode_format_212(&[0, 1]).is_err());
        assert!(decode_format_212(&[0, 1, 2, 3]).is_err());
        assert!(decode_format_212(&[]).expect("empty is fine").0.is_empty());
    }

    #[test]
    fn sign_extension_is_correct() {
        assert_eq!(sign_extend_12(0x000), 0);
        assert_eq!(sign_extend_12(0x7FF), 2047);
        assert_eq!(sign_extend_12(0x800), -2048);
        assert_eq!(sign_extend_12(0xFFF), -1);
    }

    #[test]
    fn annotation_roundtrip_small_deltas() {
        let anns = vec![
            (10usize, MitAnnotationCode::Normal),
            (370, MitAnnotationCode::Pvc),
            (800, MitAnnotationCode::Lbbb),
            (805, MitAnnotationCode::Other(8)),
        ];
        let bytes = encode_annotations(&anns);
        let decoded = decode_annotations(&bytes).expect("decode");
        assert_eq!(decoded.len(), 4);
        for ((s, c), (ds, dc)) in anns.iter().zip(&decoded) {
            assert_eq!(s, ds);
            assert_eq!(c.code(), dc.code());
        }
    }

    #[test]
    fn annotation_roundtrip_with_skip_records() {
        // A gap larger than 1023 samples forces a SKIP record.
        let anns = vec![
            (100usize, MitAnnotationCode::Normal),
            (100_000, MitAnnotationCode::Pvc),
            (100_360, MitAnnotationCode::Normal),
        ];
        let bytes = encode_annotations(&anns);
        let decoded = decode_annotations(&bytes).expect("decode");
        let samples: Vec<usize> = decoded.iter().map(|(s, _)| *s).collect();
        assert_eq!(samples, vec![100, 100_000, 100_360]);
    }

    #[test]
    fn annotation_codes_map_to_classes() {
        assert_eq!(
            MitAnnotationCode::Normal.beat_class(),
            Some(BeatClass::Normal)
        );
        assert_eq!(
            MitAnnotationCode::Pvc.beat_class(),
            Some(BeatClass::PrematureVentricular)
        );
        assert_eq!(
            MitAnnotationCode::Lbbb.beat_class(),
            Some(BeatClass::LeftBundleBranchBlock)
        );
        assert_eq!(MitAnnotationCode::Other(12).beat_class(), None);
        assert_eq!(MitAnnotationCode::from_code(5), MitAnnotationCode::Pvc);
        assert_eq!(
            MitAnnotationCode::from_code(42),
            MitAnnotationCode::Other(42)
        );
    }

    #[test]
    fn record_from_bytes_converts_to_millivolts() {
        // Two channels, 400 samples of a constant at ADC zero + 200 (i.e. 1 mV).
        let n = 1200;
        let ch: Vec<i32> = vec![DEFAULT_ADC_ZERO + 200; n]
            .iter()
            .map(|&v| v - 1024)
            .map(|v| v + 1024 - 1024)
            .collect();
        // Keep raw samples within 12-bit range: use 200 (≈1 mV above zero offset
        // after subtracting adc_zero in the conversion, stored as 200+1024>2047?
        // 1224 > 2047 is false, fine).
        let raw: Vec<i32> = vec![1224; n];
        let _ = ch;
        let dat = encode_format_212(&raw, &raw);
        let atr = encode_annotations(&[
            (300, MitAnnotationCode::Normal),
            (700, MitAnnotationCode::Other(14)),
        ]);
        let rec =
            record_from_bytes(100, &dat, &atr, DEFAULT_ADC_GAIN, DEFAULT_ADC_ZERO).expect("record");
        assert_eq!(rec.num_leads(), 2);
        assert_eq!(rec.len(), n);
        assert!((rec.leads[0][0] - 1.0).abs() < 1e-9, "1224 raw = 1 mV");
        // The non-beat annotation (code 14) is filtered out.
        assert_eq!(rec.annotations.len(), 1);
        assert_eq!(rec.annotations[0].sample, 300);
    }

    #[test]
    fn truncated_aux_annotation_is_an_error() {
        // AUX code 63 with a claimed 10-byte payload but nothing following.
        let word: u16 = (63u16 << 10) | 10;
        let bytes = word.to_le_bytes().to_vec();
        assert!(decode_annotations(&bytes).is_err());
    }
}
