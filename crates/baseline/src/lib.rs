//! # hbc-baseline — PCA dimensionality-reduction baseline
//!
//! Table II of the paper compares the random-projection front-end against an
//! off-line Principal Component Analysis (the `PCA-PC` row, following Ceylan
//! & Özbay): the beat window is projected onto its top `k` principal
//! components before feeding the same neuro-fuzzy classifier.
//!
//! PCA is a far heavier front-end than a random projection — it needs the
//! training covariance matrix, an eigendecomposition, and a dense
//! floating-point matrix–vector product per beat — which is exactly why the
//! paper argues it is not WBSN-friendly even when its accuracy is comparable.
//! This crate implements it from scratch (covariance accumulation + cyclic
//! Jacobi eigensolver) so the comparison can be regenerated without any
//! external linear-algebra dependency.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pca;

pub use pca::{Pca, PcaError};

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_usable() {
        // Compile-time check that the public surface is wired up.
        fn assert_send<T: Send>() {}
        assert_send::<super::Pca>();
    }
}
