//! Principal Component Analysis via covariance accumulation and a cyclic
//! Jacobi eigensolver.
//!
//! The implementation is deliberately dependency-free: the matrices involved
//! are at most `d × d` with `d ≤ 200` (the beat-window length), for which the
//! classic Jacobi rotation method is both simple and numerically robust.

/// Errors produced by the PCA baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcaError {
    /// The training set is empty or its rows have inconsistent lengths.
    InvalidData(String),
    /// More components were requested than input dimensions are available.
    TooManyComponents {
        /// Components requested.
        requested: usize,
        /// Input dimensionality available.
        available: usize,
    },
}

impl std::fmt::Display for PcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcaError::InvalidData(m) => write!(f, "invalid training data: {m}"),
            PcaError::TooManyComponents {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} components but only {available} dimensions are available"
            ),
        }
    }
}

impl std::error::Error for PcaError {}

/// A fitted PCA projection.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    mean: Vec<f64>,
    /// Principal components stored row-major: `components[c]` is the c-th
    /// eigenvector (unit norm), ordered by decreasing eigenvalue.
    components: Vec<Vec<f64>>,
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits a PCA with `num_components` components on the rows of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`PcaError::InvalidData`] for an empty or ragged training set
    /// and [`PcaError::TooManyComponents`] when `num_components` exceeds the
    /// input dimensionality.
    // Index loops mirror the symmetric-matrix math more directly than
    // iterator chains throughout this routine.
    #[allow(clippy::needless_range_loop)]
    pub fn fit(data: &[Vec<f64>], num_components: usize) -> Result<Self, PcaError> {
        if data.is_empty() {
            return Err(PcaError::InvalidData("empty training set".into()));
        }
        let d = data[0].len();
        if d == 0 {
            return Err(PcaError::InvalidData("zero-dimensional rows".into()));
        }
        if data.iter().any(|row| row.len() != d) {
            return Err(PcaError::InvalidData(
                "training rows have inconsistent lengths".into(),
            ));
        }
        if num_components == 0 || num_components > d {
            return Err(PcaError::TooManyComponents {
                requested: num_components,
                available: d,
            });
        }

        // Mean.
        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for row in data {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x / n;
            }
        }

        // Covariance (upper triangle, then mirrored).
        let mut cov = vec![vec![0.0; d]; d];
        for row in data {
            let centered: Vec<f64> = row.iter().zip(&mean).map(|(x, m)| x - m).collect();
            for i in 0..d {
                for j in i..d {
                    cov[i][j] += centered[i] * centered[j] / n;
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                cov[i][j] = cov[j][i];
            }
        }

        let (eigenvalues, eigenvectors) = jacobi_eigen(&cov, 100, 1e-12);

        // Sort by decreasing eigenvalue.
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| {
            eigenvalues[b]
                .partial_cmp(&eigenvalues[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let components = order
            .iter()
            .take(num_components)
            .map(|&c| eigenvectors.iter().map(|row| row[c]).collect())
            .collect();
        let sorted_values = order
            .iter()
            .take(num_components)
            .map(|&c| eigenvalues[c])
            .collect();

        Ok(Pca {
            mean,
            components,
            eigenvalues: sorted_values,
        })
    }

    /// Number of components retained.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Input dimensionality the PCA was fitted on.
    pub fn input_dimension(&self) -> usize {
        self.mean.len()
    }

    /// Eigenvalues (variances) of the retained components, in decreasing
    /// order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Projects one sample onto the retained components.
    ///
    /// # Panics
    ///
    /// Panics when the sample length does not match
    /// [`Self::input_dimension`]; use [`Self::try_project`] for a fallible
    /// variant.
    pub fn project(&self, sample: &[f64]) -> Vec<f64> {
        self.try_project(sample)
            .expect("sample length must equal the fitted dimensionality")
    }

    /// Fallible projection.
    ///
    /// # Errors
    ///
    /// Returns [`PcaError::InvalidData`] when the sample length does not match
    /// the fitted dimensionality.
    pub fn try_project(&self, sample: &[f64]) -> Result<Vec<f64>, PcaError> {
        if sample.len() != self.mean.len() {
            return Err(PcaError::InvalidData(format!(
                "sample has {} dimensions, PCA was fitted on {}",
                sample.len(),
                self.mean.len()
            )));
        }
        let centered: Vec<f64> = sample.iter().zip(&self.mean).map(|(x, m)| x - m).collect();
        Ok(self
            .components
            .iter()
            .map(|c| c.iter().zip(&centered).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Fraction of the total variance captured by the retained components
    /// (only meaningful when the PCA was fitted with all components it needs
    /// for the numerator; the denominator uses the trace of the covariance,
    /// which equals the sum of all eigenvalues).
    pub fn explained_variance_ratio(&self, total_variance: f64) -> f64 {
        if total_variance <= 0.0 {
            return 0.0;
        }
        self.eigenvalues.iter().sum::<f64>() / total_variance
    }

    /// Floating-point multiply–accumulate operations needed to project one
    /// beat — the cost figure that disqualifies PCA from WBSN deployment in
    /// the paper's argument.
    pub fn multiplications_per_projection(&self) -> usize {
        self.num_components() * self.input_dimension()
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Returns
/// `(eigenvalues, eigenvectors)` where `eigenvectors[i][j]` is the i-th
/// coordinate of the j-th eigenvector.
// Textbook Jacobi rotations are written with explicit (i, j, k) index
// triples; iterator rewrites obscure the symmetry being exploited.
#[allow(clippy::needless_range_loop)]
fn jacobi_eigen(
    matrix: &[Vec<f64>],
    max_sweeps: usize,
    tolerance: f64,
) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = matrix.len();
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off.sqrt() < tolerance {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let eigenvalues = (0..n).map(|i| a[i][i]).collect();
    (eigenvalues, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn correlated_data(n: usize, seed: u64) -> Vec<Vec<f64>> {
        // Two latent factors embedded in 6 dimensions plus small noise: the
        // top-2 PCA subspace must capture almost all the variance.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a: f64 = rng.gen::<f64>() * 4.0 - 2.0;
                let b: f64 = rng.gen::<f64>() * 2.0 - 1.0;
                let mut noise = || rng.gen::<f64>() * 0.01;
                vec![
                    a + noise(),
                    a - b + noise(),
                    2.0 * b + noise(),
                    -a + noise(),
                    b + noise(),
                    a + b + noise(),
                ]
            })
            .collect()
    }

    #[test]
    fn fit_validates_its_input() {
        assert!(matches!(Pca::fit(&[], 2), Err(PcaError::InvalidData(_))));
        let ragged = vec![vec![0.0; 3], vec![0.0; 2]];
        assert!(matches!(
            Pca::fit(&ragged, 1),
            Err(PcaError::InvalidData(_))
        ));
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert!(matches!(
            Pca::fit(&data, 3),
            Err(PcaError::TooManyComponents { .. })
        ));
        assert!(matches!(
            Pca::fit(&data, 0),
            Err(PcaError::TooManyComponents { .. })
        ));
        assert!(matches!(
            Pca::fit(&[vec![], vec![]], 1),
            Err(PcaError::InvalidData(_))
        ));
    }

    #[test]
    fn eigenvalues_are_sorted_and_nonnegative() {
        let data = correlated_data(300, 1);
        let pca = Pca::fit(&data, 6).expect("fit");
        let ev = pca.eigenvalues();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "eigenvalues not sorted: {ev:?}");
        }
        assert!(ev.iter().all(|&v| v > -1e-9));
    }

    #[test]
    fn two_components_capture_the_two_latent_factors() {
        let data = correlated_data(500, 2);
        let full = Pca::fit(&data, 6).expect("fit");
        let total: f64 = full.eigenvalues().iter().sum();
        let top2 = Pca::fit(&data, 2).expect("fit");
        let ratio = top2.explained_variance_ratio(total);
        assert!(
            ratio > 0.98,
            "top-2 components should explain nearly all variance, got {ratio}"
        );
    }

    #[test]
    fn projection_recovers_separable_structure() {
        // Two clusters separated along one direction stay separated after
        // projection onto the first component.
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..200 {
            let offset = if i % 2 == 0 { 5.0 } else { -5.0 };
            data.push(vec![
                offset + rng.gen::<f64>() * 0.2,
                rng.gen::<f64>(),
                rng.gen::<f64>(),
            ]);
        }
        let pca = Pca::fit(&data, 1).expect("fit");
        for (i, row) in data.iter().enumerate() {
            let p = pca.project(row)[0];
            if i % 2 == 0 {
                assert!(p.abs() > 2.0);
            }
        }
        // The two clusters map to opposite signs.
        let p0 = pca.project(&data[0])[0];
        let p1 = pca.project(&data[1])[0];
        assert!(p0 * p1 < 0.0);
    }

    #[test]
    fn projection_validates_dimensions() {
        let data = correlated_data(50, 4);
        let pca = Pca::fit(&data, 2).expect("fit");
        assert!(pca.try_project(&[0.0; 5]).is_err());
        assert_eq!(pca.project(&data[0]).len(), 2);
        assert_eq!(pca.num_components(), 2);
        assert_eq!(pca.input_dimension(), 6);
        assert_eq!(pca.multiplications_per_projection(), 12);
    }

    #[test]
    fn components_are_orthonormal() {
        let data = correlated_data(300, 5);
        let pca = Pca::fit(&data, 3).expect("fit");
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = pca.components[i]
                    .iter()
                    .zip(&pca.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot - expected).abs() < 1e-6,
                    "component {i}·{j} = {dot}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn jacobi_solves_a_known_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (vals, _) = jacobi_eigen(&m, 50, 1e-14);
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        assert!((sorted[0] - 3.0).abs() < 1e-9);
        assert!((sorted[1] - 1.0).abs() < 1e-9);
    }
}
