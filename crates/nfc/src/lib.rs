//! # hbc-nfc — neuro-fuzzy heartbeat classifier
//!
//! The classification core of the paper: a three-layer neuro-fuzzy classifier
//! (NFC) operating on randomly-projected heartbeat coefficients.
//!
//! * **Membership layer** ([`membership`]) — per coefficient `k` and class
//!   `l ∈ {N, V, L}`, a Gaussian membership function
//!   `µ_{k,l}(u_k) = exp(−(u_k − c_{k,l})² / (2σ_{k,l}²))`.
//! * **Fuzzification layer** — the membership grades of all coefficients are
//!   multiplied per class: `f_l = Π_k µ_{k,l}`.
//! * **Defuzzification layer** — with `M1` and `M2` the largest and
//!   second-largest fuzzy values and `S` their sum over classes, the beat is
//!   assigned to the arg-max class when `(M1 − M2) ≥ α·S`, and to the
//!   *Unknown* class otherwise. `V`, `L` and `U` count as pathological.
//!
//! Training ([`training`], [`scg`]) follows the paper: the membership
//! parameters are fitted on *training set 1* with Møller's scaled conjugate
//! gradient; the projection matrix is optimised by a genetic algorithm whose
//! fitness is the classifier score on *training set 2* ([`two_step`]).
//! Figures of merit (NDR, ARR and their pareto fronts) live in [`metrics`].
//!
//! ```
//! use hbc_ecg::{dataset::DatasetSpec, Dataset};
//! use hbc_nfc::pipeline_fit_quick;
//!
//! // Train a small classifier end-to-end on a tiny synthetic dataset.
//! let dataset = Dataset::synthetic(DatasetSpec::tiny(), 1);
//! let fitted = pipeline_fit_quick(&dataset, 8, 42);
//! assert_eq!(fitted.classifier.num_coefficients(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classifier;
pub mod membership;
pub mod metrics;
pub mod scg;
pub mod training;
pub mod two_step;

pub use classifier::{Decision, NeuroFuzzyClassifier};
pub use membership::GaussianMf;
pub use metrics::{BinaryConfusion, EvaluationReport, ParetoPoint};
pub use scg::{ScgConfig, ScgOutcome};
pub use training::{NfcTrainer, TrainingConfig};
pub use two_step::{pipeline_fit_quick, FittedPipeline, TwoStepConfig, TwoStepTrainer};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NfcError {
    /// Input dimensionality does not match the classifier.
    Dimension(String),
    /// Training data is unusable (empty split, missing class, …).
    Training(String),
    /// A configuration parameter is out of range.
    Config(String),
}

impl std::fmt::Display for NfcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfcError::Dimension(m) => write!(f, "dimension mismatch: {m}"),
            NfcError::Training(m) => write!(f, "training error: {m}"),
            NfcError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for NfcError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, NfcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_category() {
        assert!(NfcError::Dimension("x".into())
            .to_string()
            .contains("dimension"));
        assert!(NfcError::Training("y".into())
            .to_string()
            .contains("training"));
        assert!(NfcError::Config("z".into())
            .to_string()
            .contains("configuration"));
    }
}
