//! Figures of merit for the early heartbeat classifier.
//!
//! The paper measures the binary (normal vs pathological) behaviour of the
//! classifier with two quantities defined in Section IV-A:
//!
//! * **Normal Discard Rate (NDR)** — fraction of truly normal beats the
//!   classifier labels `N` (and therefore discards without detailed
//!   analysis);
//! * **Abnormal Recognition Rate (ARR)** — fraction of truly abnormal beats
//!   (V or L) the classifier routes to the detailed analysis (labelled `V`,
//!   `L` or `U`).
//!
//! The defuzzification coefficient α trades the two off: the paper fixes
//! α_train so that ARR ≥ 97 % on training set 2 and then sweeps α_test to draw
//! the NDR/ARR pareto fronts of Figure 5. The helpers in this module compute
//! both figures, calibrate α for a target ARR and extract pareto fronts.

use hbc_ecg::beat::{BeatClass, BinaryLabel, NUM_CLASSES};

/// Binary confusion counts for the normal / pathological decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinaryConfusion {
    /// Normal beats labelled normal (discarded correctly).
    pub normal_discarded: usize,
    /// Normal beats labelled pathological (unnecessary detailed analysis).
    pub normal_forwarded: usize,
    /// Abnormal beats labelled pathological (recognised correctly).
    pub abnormal_recognized: usize,
    /// Abnormal beats labelled normal (missed pathologies).
    pub abnormal_missed: usize,
}

impl BinaryConfusion {
    /// Records one decision.
    pub fn record(&mut self, truth: BinaryLabel, predicted: BinaryLabel) {
        match (truth, predicted) {
            (BinaryLabel::Normal, BinaryLabel::Normal) => self.normal_discarded += 1,
            (BinaryLabel::Normal, BinaryLabel::Pathological) => self.normal_forwarded += 1,
            (BinaryLabel::Pathological, BinaryLabel::Pathological) => self.abnormal_recognized += 1,
            (BinaryLabel::Pathological, BinaryLabel::Normal) => self.abnormal_missed += 1,
        }
    }

    /// Number of truly normal beats seen.
    pub fn normals(&self) -> usize {
        self.normal_discarded + self.normal_forwarded
    }

    /// Number of truly abnormal beats seen.
    pub fn abnormals(&self) -> usize {
        self.abnormal_recognized + self.abnormal_missed
    }

    /// Normal Discard Rate in `[0, 1]` (1.0 when no normal beat was seen).
    pub fn ndr(&self) -> f64 {
        if self.normals() == 0 {
            return 1.0;
        }
        self.normal_discarded as f64 / self.normals() as f64
    }

    /// Abnormal Recognition Rate in `[0, 1]` (1.0 when no abnormal beat was
    /// seen).
    pub fn arr(&self) -> f64 {
        if self.abnormals() == 0 {
            return 1.0;
        }
        self.abnormal_recognized as f64 / self.abnormals() as f64
    }

    /// Fraction of all beats routed to the detailed analysis — the quantity
    /// that drives the duty-cycle and energy models.
    pub fn forwarded_fraction(&self) -> f64 {
        let total = self.normals() + self.abnormals();
        if total == 0 {
            return 0.0;
        }
        (self.normal_forwarded + self.abnormal_recognized) as f64 / total as f64
    }

    /// Merges another confusion into this one.
    pub fn merge(&mut self, other: &BinaryConfusion) {
        self.normal_discarded += other.normal_discarded;
        self.normal_forwarded += other.normal_forwarded;
        self.abnormal_recognized += other.abnormal_recognized;
        self.abnormal_missed += other.abnormal_missed;
    }
}

/// Full evaluation report: binary figures plus the 4-way (N/V/L/U) confusion
/// matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvaluationReport {
    /// Binary normal/pathological confusion.
    pub binary: BinaryConfusion,
    /// `matrix[truth][prediction]` where predictions include Unknown as index
    /// `NUM_CLASSES`.
    pub matrix: [[usize; NUM_CLASSES + 1]; NUM_CLASSES],
}

impl Default for EvaluationReport {
    fn default() -> Self {
        EvaluationReport {
            binary: BinaryConfusion::default(),
            matrix: [[0; NUM_CLASSES + 1]; NUM_CLASSES],
        }
    }
}

impl EvaluationReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified beat.
    ///
    /// # Panics
    ///
    /// Panics if `truth` is [`BeatClass::Unknown`], which is never a ground
    /// truth label.
    pub fn record(&mut self, truth: BeatClass, predicted: BeatClass) {
        let t = truth
            .index()
            .expect("ground truth is never the Unknown class");
        let p = predicted.index().unwrap_or(NUM_CLASSES);
        self.matrix[t][p] += 1;
        self.binary.record(truth.into(), predicted.into());
    }

    /// Normal Discard Rate.
    pub fn ndr(&self) -> f64 {
        self.binary.ndr()
    }

    /// Abnormal Recognition Rate.
    pub fn arr(&self) -> f64 {
        self.binary.arr()
    }

    /// Number of beats recorded.
    pub fn total(&self) -> usize {
        self.matrix.iter().flatten().sum()
    }

    /// Multi-class accuracy counting Unknown as always wrong.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..NUM_CLASSES).map(|i| self.matrix[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Merges another report into this one (both the binary confusion and the
    /// 4-way matrix). Because every field is a count, merging per-shard
    /// reports in any grouping yields exactly the report a single sequential
    /// pass would have produced — the property the parallel evaluation engine
    /// in `hbc-core` relies on.
    pub fn merge(&mut self, other: &EvaluationReport) {
        self.binary.merge(&other.binary);
        for (ours, theirs) in self.matrix.iter_mut().zip(&other.matrix) {
            for (a, b) in ours.iter_mut().zip(theirs) {
                *a += b;
            }
        }
    }

    /// Formats the confusion matrix (rows: truth N/V/L, columns: predicted
    /// N/V/L/U).
    pub fn matrix_report(&self) -> String {
        let mut s = String::from("truth\\pred      N        V        L        U\n");
        for (t, row) in self.matrix.iter().enumerate() {
            let label = BeatClass::from_index(t).expect("row index is a class");
            s.push_str(&format!(
                "{label}        {:>8} {:>8} {:>8} {:>8}\n",
                row[0], row[1], row[2], row[3]
            ));
        }
        s
    }
}

/// One point of an NDR/ARR trade-off curve (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Defuzzification coefficient that produced this point.
    pub alpha: f64,
    /// Normal Discard Rate at this α.
    pub ndr: f64,
    /// Abnormal Recognition Rate at this α.
    pub arr: f64,
}

/// Extracts the pareto-optimal subset of `points` (maximising both NDR and
/// ARR): a point survives when no other point is at least as good on both
/// axes and strictly better on one.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = points
        .iter()
        .copied()
        .filter(|p| {
            !points
                .iter()
                .any(|q| (q.ndr >= p.ndr && q.arr >= p.arr) && (q.ndr > p.ndr || q.arr > p.arr))
        })
        .collect();
    front.sort_by(|a, b| {
        a.arr
            .partial_cmp(&b.arr)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    front.dedup_by(|a, b| a.ndr == b.ndr && a.arr == b.arr);
    front
}

/// Given per-beat decisions as `(truth, margin)` pairs — where `margin` is the
/// defuzzification margin `(M1 − M2)/S` of a beat whose arg-max class is
/// `argmax` — this helper would need the full decision; instead the calibration
/// below works directly on a closure.
///
/// Calibrates the defuzzification coefficient α so that the ARR measured by
/// `evaluate(α)` is at least `target_arr`, returning the smallest such α found
/// together with its report. Because raising α can only move decisions towards
/// *Unknown* (which counts as pathological), ARR is non-decreasing in α and a
/// binary search applies.
///
/// Returns `None` when even α = 1 cannot reach the target. This *does*
/// happen with the float classifier: outlier beats saturate to a
/// defuzzification margin of exactly 1.0 and stay confidently classified at
/// any α (see `NeuroFuzzyClassifier::classify`), so a confidently
/// misclassified abnormal beat caps the reachable ARR below 1. Callers must
/// handle `None` rather than `expect` it away.
pub fn calibrate_alpha<F>(
    target_arr: f64,
    tolerance: f64,
    mut evaluate: F,
) -> Option<(f64, EvaluationReport)>
where
    F: FnMut(f64) -> EvaluationReport,
{
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    let hi_report = evaluate(hi);
    if hi_report.arr() < target_arr {
        return None;
    }
    let lo_report = evaluate(lo);
    if lo_report.arr() >= target_arr {
        return Some((lo, lo_report));
    }
    let mut best = (hi, hi_report);
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        let report = evaluate(mid);
        if report.arr() >= target_arr {
            best = (mid, report);
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_confusion_rates() {
        let mut c = BinaryConfusion::default();
        // 8 normals: 7 discarded, 1 forwarded. 4 abnormals: 3 recognised, 1 missed.
        for _ in 0..7 {
            c.record(BinaryLabel::Normal, BinaryLabel::Normal);
        }
        c.record(BinaryLabel::Normal, BinaryLabel::Pathological);
        for _ in 0..3 {
            c.record(BinaryLabel::Pathological, BinaryLabel::Pathological);
        }
        c.record(BinaryLabel::Pathological, BinaryLabel::Normal);
        assert!((c.ndr() - 7.0 / 8.0).abs() < 1e-12);
        assert!((c.arr() - 3.0 / 4.0).abs() < 1e-12);
        assert!((c.forwarded_fraction() - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(c.normals(), 8);
        assert_eq!(c.abnormals(), 4);

        let mut merged = BinaryConfusion::default();
        merged.merge(&c);
        merged.merge(&c);
        assert_eq!(merged.normals(), 16);
        assert!((merged.ndr() - c.ndr()).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_defaults_are_benign() {
        let c = BinaryConfusion::default();
        assert_eq!(c.ndr(), 1.0);
        assert_eq!(c.arr(), 1.0);
        assert_eq!(c.forwarded_fraction(), 0.0);
    }

    #[test]
    fn report_tracks_the_four_way_matrix() {
        let mut r = EvaluationReport::new();
        r.record(BeatClass::Normal, BeatClass::Normal);
        r.record(BeatClass::Normal, BeatClass::Unknown);
        r.record(
            BeatClass::PrematureVentricular,
            BeatClass::PrematureVentricular,
        );
        r.record(BeatClass::LeftBundleBranchBlock, BeatClass::Unknown);
        r.record(BeatClass::LeftBundleBranchBlock, BeatClass::Normal);
        assert_eq!(r.total(), 5);
        assert_eq!(r.matrix[0][3], 1);
        assert_eq!(r.matrix[2][0], 1);
        assert!((r.ndr() - 0.5).abs() < 1e-12);
        assert!((r.arr() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.accuracy() - 2.0 / 5.0).abs() < 1e-12);
        let text = r.matrix_report();
        assert!(text.contains('N') && text.contains('U'));
    }

    #[test]
    fn merged_reports_equal_one_sequential_pass() {
        let decisions = [
            (BeatClass::Normal, BeatClass::Normal),
            (BeatClass::Normal, BeatClass::Unknown),
            (
                BeatClass::PrematureVentricular,
                BeatClass::PrematureVentricular,
            ),
            (BeatClass::LeftBundleBranchBlock, BeatClass::Normal),
            (BeatClass::PrematureVentricular, BeatClass::Unknown),
        ];
        let mut sequential = EvaluationReport::new();
        for (t, p) in decisions {
            sequential.record(t, p);
        }
        // Shard the same decisions 2 + 3 and merge.
        let mut merged = EvaluationReport::new();
        for chunk in decisions.chunks(2) {
            let mut shard = EvaluationReport::new();
            for &(t, p) in chunk {
                shard.record(t, p);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, sequential);
    }

    #[test]
    #[should_panic(expected = "ground truth")]
    fn unknown_ground_truth_panics() {
        EvaluationReport::new().record(BeatClass::Unknown, BeatClass::Normal);
    }

    #[test]
    fn pareto_front_removes_dominated_points() {
        let points = vec![
            ParetoPoint {
                alpha: 0.0,
                ndr: 0.95,
                arr: 0.90,
            },
            ParetoPoint {
                alpha: 0.1,
                ndr: 0.93,
                arr: 0.95,
            },
            ParetoPoint {
                alpha: 0.2,
                ndr: 0.90,
                arr: 0.97,
            },
            ParetoPoint {
                alpha: 0.3,
                ndr: 0.89,
                arr: 0.96,
            }, // dominated by 0.2
            ParetoPoint {
                alpha: 0.4,
                ndr: 0.80,
                arr: 0.97,
            }, // dominated by 0.2
        ];
        let front = pareto_front(&points);
        assert_eq!(front.len(), 3);
        assert!(front.iter().all(|p| p.alpha < 0.25));
        // Sorted by ARR.
        for w in front.windows(2) {
            assert!(w[0].arr <= w[1].arr);
        }
    }

    #[test]
    fn calibration_finds_the_smallest_alpha_reaching_the_target() {
        // Synthetic behaviour: ARR rises linearly with alpha, NDR falls.
        let evaluate = |alpha: f64| {
            let mut r = EvaluationReport::new();
            let arr = 0.90 + 0.10 * alpha;
            let ndr = 0.99 - 0.20 * alpha;
            // Encode the rates with 1000 abnormal and 1000 normal beats.
            let abn_ok = (arr * 1000.0).round() as usize;
            let nrm_ok = (ndr * 1000.0).round() as usize;
            for _ in 0..abn_ok {
                r.record(
                    BeatClass::PrematureVentricular,
                    BeatClass::PrematureVentricular,
                );
            }
            for _ in abn_ok..1000 {
                r.record(BeatClass::PrematureVentricular, BeatClass::Normal);
            }
            for _ in 0..nrm_ok {
                r.record(BeatClass::Normal, BeatClass::Normal);
            }
            for _ in nrm_ok..1000 {
                r.record(BeatClass::Normal, BeatClass::Unknown);
            }
            r
        };
        let (alpha, report) = calibrate_alpha(0.97, 1e-4, evaluate).expect("reachable");
        assert!(report.arr() >= 0.97);
        // ARR = 0.90 + 0.10*alpha >= 0.97 -> alpha >= 0.7.
        assert!((alpha - 0.7).abs() < 0.01, "alpha {alpha}");
        // A target of 0 is satisfied at alpha 0.
        let (a0, _) = calibrate_alpha(0.0, 1e-4, evaluate).expect("trivial");
        assert_eq!(a0, 0.0);
    }
}
