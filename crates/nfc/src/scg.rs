//! Møller's scaled conjugate gradient (SCG) optimiser.
//!
//! The paper trains the membership functions with the scaled conjugate
//! gradient algorithm (Møller, *Neural Networks* 1993; sped-up variant by
//! Cetişli & Barkana), chosen because it needs no line search and no
//! user-tuned learning rate — each iteration costs two gradient evaluations
//! and a handful of vector operations, which keeps the off-line training
//! phase cheap.
//!
//! The implementation below is a faithful transcription of Møller's
//! pseudo-code, generic over the objective so it can be unit-tested on
//! quadratics and reused by any crate needing a small deterministic
//! optimiser.

/// Configuration of the SCG run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScgConfig {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient norm.
    pub gradient_tolerance: f64,
    /// Convergence threshold on the objective decrease between successful
    /// steps.
    pub objective_tolerance: f64,
    /// Initial value of the scaling parameter λ (Møller's `lambda_1`).
    pub initial_lambda: f64,
    /// Initial value of σ used for the finite Hessian-vector approximation.
    pub sigma: f64,
}

impl Default for ScgConfig {
    fn default() -> Self {
        ScgConfig {
            max_iterations: 200,
            gradient_tolerance: 1e-6,
            objective_tolerance: 1e-10,
            initial_lambda: 1e-6,
            sigma: 1e-5,
        }
    }
}

impl ScgConfig {
    /// A short run used in tests and quick experiments.
    pub fn quick() -> Self {
        ScgConfig {
            max_iterations: 60,
            ..Default::default()
        }
    }
}

/// Result of an SCG run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScgOutcome {
    /// The parameter vector reached at termination.
    pub parameters: Vec<f64>,
    /// Objective value at the returned parameters.
    pub objective: f64,
    /// Objective value per successful iteration (including the initial
    /// point).
    pub history: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the gradient/objective tolerance was reached before the
    /// iteration cap.
    pub converged: bool,
}

/// Minimises `objective` starting from `initial`, where `objective` returns
/// the function value and its gradient.
///
/// The objective must be deterministic; it is called roughly twice per
/// iteration.
pub fn minimize<F>(initial: &[f64], config: &ScgConfig, mut objective: F) -> ScgOutcome
where
    F: FnMut(&[f64]) -> (f64, Vec<f64>),
{
    let n = initial.len();
    let mut w = initial.to_vec();
    let (mut f_w, mut grad) = objective(&w);
    let mut history = vec![f_w];

    // Møller's notation: p = search direction, r = -gradient.
    let mut r: Vec<f64> = grad.iter().map(|g| -g).collect();
    let mut p = r.clone();
    let mut lambda = config.initial_lambda;
    let mut lambda_bar = 0.0f64;
    let mut success = true;
    let mut delta = 0.0f64;
    let mut iterations = 0usize;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        iterations += 1;
        let p_norm2: f64 = dot(&p, &p);
        if p_norm2 < 1e-30 {
            converged = true;
            break;
        }

        if success {
            // Second-order information: finite-difference Hessian-vector
            // product along p.
            let sigma_k = config.sigma / p_norm2.sqrt();
            let w_shift: Vec<f64> = w.iter().zip(&p).map(|(wi, pi)| wi + sigma_k * pi).collect();
            let (_, grad_shift) = objective(&w_shift);
            let s: Vec<f64> = grad_shift
                .iter()
                .zip(&grad)
                .map(|(gs, g)| (gs - g) / sigma_k)
                .collect();
            delta = dot(&p, &s);
        }

        // Scale: make the local model positive definite.
        delta += (lambda - lambda_bar) * p_norm2;
        if delta <= 0.0 {
            lambda_bar = 2.0 * (lambda - delta / p_norm2);
            delta = -delta + lambda * p_norm2;
            lambda = lambda_bar;
        }

        // Step size.
        let mu = dot(&p, &r);
        let alpha = mu / delta;

        // Comparison parameter: does the quadratic model predict the actual
        // decrease?
        let w_new: Vec<f64> = w.iter().zip(&p).map(|(wi, pi)| wi + alpha * pi).collect();
        let (f_new, grad_new) = objective(&w_new);
        let delta_f = 2.0 * delta * (f_w - f_new) / (mu * mu);

        if delta_f >= 0.0 {
            // Successful step.
            let f_prev = f_w;
            w = w_new;
            f_w = f_new;
            grad = grad_new;
            let r_new: Vec<f64> = grad.iter().map(|g| -g).collect();
            lambda_bar = 0.0;
            success = true;
            history.push(f_w);

            // Restart or continue the conjugate direction.
            if iterations.is_multiple_of(n.max(1)) {
                p = r_new.clone();
            } else {
                let beta = (dot(&r_new, &r_new) - dot(&r_new, &r)) / mu;
                p = r_new
                    .iter()
                    .zip(&p)
                    .map(|(rn, pi)| rn + beta * pi)
                    .collect();
            }
            r = r_new;

            if delta_f >= 0.75 {
                lambda *= 0.25;
            }

            let grad_norm = dot(&grad, &grad).sqrt();
            if grad_norm < config.gradient_tolerance
                || (f_prev - f_w).abs() < config.objective_tolerance
            {
                converged = true;
                break;
            }
        } else {
            // Unsuccessful step: increase the scaling and retry.
            lambda_bar = lambda;
            success = false;
        }

        if delta_f < 0.25 {
            lambda += delta * (1.0 - delta_f) / p_norm2;
        }
        if !lambda.is_finite() || lambda > 1e60 {
            // The model cannot be trusted any further.
            converged = false;
            break;
        }
    }

    ScgOutcome {
        parameters: w,
        objective: f_w,
        history,
        iterations,
        converged,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Convex quadratic with known minimum at (1, -2, 3, ...).
    fn quadratic(w: &[f64]) -> (f64, Vec<f64>) {
        let target: Vec<f64> = (0..w.len())
            .map(|i| {
                if i % 2 == 0 {
                    (i + 1) as f64
                } else {
                    -((i + 1) as f64)
                }
            })
            .collect();
        let scale: Vec<f64> = (0..w.len()).map(|i| 1.0 + i as f64).collect();
        let mut f = 0.0;
        let mut g = vec![0.0; w.len()];
        for i in 0..w.len() {
            let d = w[i] - target[i];
            f += 0.5 * scale[i] * d * d;
            g[i] = scale[i] * d;
        }
        (f, g)
    }

    /// Rosenbrock function: a classic non-convex optimiser stress test.
    fn rosenbrock(w: &[f64]) -> (f64, Vec<f64>) {
        let (x, y) = (w[0], w[1]);
        let f = (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2);
        let gx = -2.0 * (1.0 - x) - 400.0 * x * (y - x * x);
        let gy = 200.0 * (y - x * x);
        (f, vec![gx, gy])
    }

    #[test]
    fn minimizes_a_quadratic_exactly() {
        let outcome = minimize(&[0.0; 6], &ScgConfig::default(), quadratic);
        assert!(outcome.converged, "should converge on a quadratic");
        assert!(outcome.objective < 1e-8, "objective {}", outcome.objective);
        let expected = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        for (p, e) in outcome.parameters.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-3, "parameter {p} vs expected {e}");
        }
    }

    #[test]
    fn history_is_monotonically_non_increasing() {
        let outcome = minimize(&[5.0; 4], &ScgConfig::default(), quadratic);
        for w in outcome.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "objective increased: {w:?}");
        }
    }

    #[test]
    fn makes_strong_progress_on_rosenbrock() {
        let start = [-1.2, 1.0];
        let (f0, _) = rosenbrock(&start);
        let cfg = ScgConfig {
            max_iterations: 800,
            ..Default::default()
        };
        let outcome = minimize(&start, &cfg, rosenbrock);
        assert!(
            outcome.objective < 0.01 * f0,
            "objective {} should be far below the initial {f0}",
            outcome.objective
        );
    }

    #[test]
    fn respects_the_iteration_cap() {
        let cfg = ScgConfig {
            max_iterations: 3,
            gradient_tolerance: 0.0,
            objective_tolerance: 0.0,
            ..Default::default()
        };
        let outcome = minimize(&[10.0; 8], &cfg, quadratic);
        assert!(outcome.iterations <= 3);
    }

    #[test]
    fn already_optimal_start_converges_immediately() {
        let outcome = minimize(&[1.0, -2.0], &ScgConfig::default(), quadratic);
        assert!(outcome.converged);
        assert!(outcome.objective < 1e-12);
        assert!(outcome.iterations <= 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = minimize(&[2.0; 4], &ScgConfig::default(), quadratic);
        let b = minimize(&[2.0; 4], &ScgConfig::default(), quadratic);
        assert_eq!(a.parameters, b.parameters);
        assert_eq!(a.history, b.history);
    }
}
