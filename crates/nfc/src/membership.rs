//! Gaussian membership functions.
//!
//! The membership layer of the NFC assigns, for every projected coefficient
//! and every class, a membership grade in `[0, 1]` describing how well the
//! coefficient value fits that class. During training the membership
//! functions are Gaussians parameterised by a centre `c` and a spread `σ`;
//! the embedded version replaces them with the piecewise-linear approximation
//! implemented in `hbc-embedded`.

/// A Gaussian membership function `µ(x) = exp(−(x − c)² / (2σ²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMf {
    /// Centre of the Gaussian (the most typical coefficient value for the
    /// class).
    pub center: f64,
    /// Spread (standard deviation) of the Gaussian. Always positive.
    pub sigma: f64,
}

impl GaussianMf {
    /// Smallest spread the implementation accepts; narrower functions are
    /// clamped to keep gradients and the embedded quantisation finite.
    pub const MIN_SIGMA: f64 = 1e-6;

    /// Creates a membership function, clamping `sigma` to at least
    /// [`GaussianMf::MIN_SIGMA`].
    pub fn new(center: f64, sigma: f64) -> Self {
        GaussianMf {
            center,
            sigma: sigma.abs().max(Self::MIN_SIGMA),
        }
    }

    /// Membership grade at `x`, in `(0, 1]`.
    pub fn grade(&self, x: f64) -> f64 {
        self.log_grade(x).exp()
    }

    /// Natural logarithm of the membership grade (used by the fuzzification
    /// layer to avoid underflow when many grades are multiplied).
    pub fn log_grade(&self, x: f64) -> f64 {
        let d = (x - self.center) / self.sigma;
        -0.5 * d * d
    }

    /// Derivative of [`Self::log_grade`] with respect to the centre.
    pub fn dlog_dcenter(&self, x: f64) -> f64 {
        (x - self.center) / (self.sigma * self.sigma)
    }

    /// Derivative of [`Self::log_grade`] with respect to the spread.
    pub fn dlog_dsigma(&self, x: f64) -> f64 {
        let d = x - self.center;
        d * d / (self.sigma * self.sigma * self.sigma)
    }

    /// The half-width used by the embedded linearisation of the paper:
    /// `S = 2.35σ` (the full width at half maximum of the Gaussian).
    pub fn linearization_half_width(&self) -> f64 {
        2.35 * self.sigma
    }
}

impl Default for GaussianMf {
    fn default() -> Self {
        GaussianMf::new(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grade_is_one_at_center_and_decays() {
        let mf = GaussianMf::new(2.0, 0.5);
        assert!((mf.grade(2.0) - 1.0).abs() < 1e-12);
        assert!(mf.grade(2.5) < 1.0);
        assert!(mf.grade(2.5) > mf.grade(3.0));
        assert!((mf.grade(2.5) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn grade_is_symmetric_around_center() {
        let mf = GaussianMf::new(-1.0, 2.0);
        for d in [0.1, 0.7, 3.0] {
            assert!((mf.grade(-1.0 + d) - mf.grade(-1.0 - d)).abs() < 1e-12);
        }
    }

    #[test]
    fn sigma_is_clamped_positive() {
        let mf = GaussianMf::new(0.0, 0.0);
        assert!(mf.sigma >= GaussianMf::MIN_SIGMA);
        let mf = GaussianMf::new(0.0, -2.0);
        assert_eq!(mf.sigma, 2.0);
    }

    #[test]
    fn log_grade_matches_grade() {
        let mf = GaussianMf::new(1.5, 0.8);
        for x in [-2.0, 0.0, 1.5, 4.0] {
            assert!((mf.log_grade(x).exp() - mf.grade(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn analytic_gradients_match_finite_differences() {
        let mf = GaussianMf::new(0.7, 1.3);
        let x = 2.1;
        let h = 1e-6;
        let num_dc = (GaussianMf::new(0.7 + h, 1.3).log_grade(x)
            - GaussianMf::new(0.7 - h, 1.3).log_grade(x))
            / (2.0 * h);
        let num_ds = (GaussianMf::new(0.7, 1.3 + h).log_grade(x)
            - GaussianMf::new(0.7, 1.3 - h).log_grade(x))
            / (2.0 * h);
        assert!((mf.dlog_dcenter(x) - num_dc).abs() < 1e-5);
        assert!((mf.dlog_dsigma(x) - num_ds).abs() < 1e-5);
    }

    #[test]
    fn linearization_half_width_is_fwhm() {
        let mf = GaussianMf::new(0.0, 2.0);
        assert!((mf.linearization_half_width() - 4.7).abs() < 1e-12);
    }
}
