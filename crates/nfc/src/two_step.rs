//! The two-step training methodology of the paper.
//!
//! Step 1 — for a candidate projection matrix `P`, project *training set 1*
//! and fit the membership functions with the scaled conjugate gradient
//! ([`crate::training`]).
//!
//! Step 2 — score the candidate: calibrate the defuzzification coefficient
//! α_train so the Abnormal Recognition Rate on *training set 2* reaches the
//! target (97 % in the paper) and record the Normal Discard Rate obtained
//! there. That NDR is the fitness driving the genetic search over projection
//! matrices (population 20, 30 generations in the paper).
//!
//! The output is a [`FittedPipeline`]: the optimised projection, the trained
//! classifier and the calibrated α, ready to be evaluated on the test set or
//! converted to the embedded integer form by `hbc-embedded`.

use std::num::NonZeroUsize;

use hbc_ecg::beat::Beat;
use hbc_ecg::Dataset;
use hbc_par::Par;
use hbc_rp::{AchlioptasMatrix, GeneticConfig, GeneticOptimizer};

use crate::classifier::NeuroFuzzyClassifier;
use crate::metrics::{calibrate_alpha, EvaluationReport};
use crate::training::{NfcTrainer, TrainingConfig, TrainingExample};
use crate::{NfcError, Result};

/// Configuration of the full two-step (GA + SCG) fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoStepConfig {
    /// Number of projected coefficients `k`.
    pub coefficients: usize,
    /// Genetic-algorithm settings (paper: population 20, 30 generations).
    pub genetic: GeneticConfig,
    /// Membership-function training settings.
    pub training: TrainingConfig,
    /// Minimum Abnormal Recognition Rate imposed when calibrating α_train
    /// (paper: 0.97 on training set 2).
    pub target_arr: f64,
    /// Tolerance of the α calibration binary search.
    pub alpha_tolerance: f64,
}

impl TwoStepConfig {
    /// The paper's configuration for a given coefficient count.
    pub fn paper(coefficients: usize) -> Self {
        TwoStepConfig {
            coefficients,
            genetic: GeneticConfig::paper(),
            training: TrainingConfig::default(),
            target_arr: 0.97,
            alpha_tolerance: 1e-3,
        }
    }

    /// A reduced configuration (small GA, short SCG) for unit tests, doc
    /// examples and quick sweeps.
    pub fn quick(coefficients: usize) -> Self {
        TwoStepConfig {
            coefficients,
            genetic: GeneticConfig::quick(),
            training: TrainingConfig::quick(),
            target_arr: 0.97,
            alpha_tolerance: 1e-2,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Config`] when the coefficient count is zero or the
    /// ARR target is outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.coefficients == 0 {
            return Err(NfcError::Config(
                "coefficient count must be non-zero".into(),
            ));
        }
        if !(self.target_arr > 0.0 && self.target_arr <= 1.0) {
            return Err(NfcError::Config(format!(
                "target ARR must be in (0, 1], got {}",
                self.target_arr
            )));
        }
        Ok(())
    }
}

/// The trained artefacts the methodology produces.
#[derive(Debug, Clone)]
pub struct FittedPipeline {
    /// The optimised random projection matrix.
    pub projection: AchlioptasMatrix,
    /// The trained neuro-fuzzy classifier.
    pub classifier: NeuroFuzzyClassifier,
    /// The defuzzification coefficient calibrated on training set 2.
    pub alpha_train: f64,
    /// Fitness of the best candidate (NDR on training set 2 at the target
    /// ARR).
    pub fitness: f64,
    /// Best-fitness history across GA generations.
    pub ga_history: Vec<f64>,
}

impl FittedPipeline {
    /// Projects one beat with the fitted projection.
    pub fn project(&self, beat: &Beat) -> Vec<f64> {
        self.projection.project(&beat.samples)
    }

    /// Classifies one beat with the calibrated α_train.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Dimension`] when the beat window length does not
    /// match the projection width.
    pub fn classify(&self, beat: &Beat) -> Result<crate::classifier::Decision> {
        let coeffs = self
            .projection
            .try_project(&beat.samples)
            .map_err(|e| NfcError::Dimension(e.to_string()))?;
        self.classifier.classify(&coeffs, self.alpha_train)
    }

    /// Evaluates the pipeline on a beat set at an arbitrary α (use
    /// `alpha_train` for the paper's operating point, or sweep α to draw the
    /// Figure 5 fronts).
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Dimension`] when a beat window length does not
    /// match the projection width.
    pub fn evaluate(&self, beats: &[Beat], alpha: f64) -> Result<EvaluationReport> {
        evaluate_projected(&self.classifier, &self.projection, beats, alpha)
    }
}

/// Projects labelled beats into classifier training examples.
fn project_examples(matrix: &AchlioptasMatrix, beats: &[Beat]) -> Result<Vec<TrainingExample>> {
    beats
        .iter()
        .filter_map(|b| b.class.index().map(|c| (b, c)))
        .map(|(b, class)| {
            let coeffs = matrix
                .try_project(&b.samples)
                .map_err(|e| NfcError::Dimension(e.to_string()))?;
            Ok(TrainingExample::new(coeffs, class))
        })
        .collect()
}

/// Evaluates a classifier + projection pair over a beat set at a given α.
///
/// # Errors
///
/// Returns [`NfcError::Dimension`] when a beat window length does not match
/// the projection width or the classifier input size.
pub fn evaluate_projected(
    classifier: &NeuroFuzzyClassifier,
    matrix: &AchlioptasMatrix,
    beats: &[Beat],
    alpha: f64,
) -> Result<EvaluationReport> {
    let mut report = EvaluationReport::new();
    for beat in beats {
        if beat.class.index().is_none() {
            continue;
        }
        let coeffs = matrix
            .try_project(&beat.samples)
            .map_err(|e| NfcError::Dimension(e.to_string()))?;
        let decision = classifier.classify(&coeffs, alpha)?;
        report.record(beat.class, decision.class);
    }
    Ok(report)
}

/// Runs step 1 + the α calibration of step 2 for one candidate matrix,
/// returning the trained classifier, the calibrated α and the fitness (NDR on
/// training set 2).
fn fit_candidate(
    matrix: &AchlioptasMatrix,
    dataset: &Dataset,
    config: &TwoStepConfig,
) -> Result<(NeuroFuzzyClassifier, f64, f64)> {
    let examples = project_examples(matrix, &dataset.training1)?;
    let trainer = NfcTrainer::new(config.training);
    let trained = trainer.train(&examples)?;
    let classifier = trained.classifier;

    // Pre-project training set 2 once; the α sweep reuses the projections.
    let projected: Vec<(hbc_ecg::BeatClass, Vec<f64>)> = dataset
        .training2
        .iter()
        .filter(|b| b.class.index().is_some())
        .map(|b| {
            matrix
                .try_project(&b.samples)
                .map(|c| (b.class, c))
                .map_err(|e| NfcError::Dimension(e.to_string()))
        })
        .collect::<Result<_>>()?;

    let evaluate = |alpha: f64| {
        let mut report = EvaluationReport::new();
        for (truth, coeffs) in &projected {
            let decision = classifier
                .classify(coeffs, alpha)
                .expect("projection width matches the classifier");
            report.record(*truth, decision.class);
        }
        report
    };
    let Some((alpha, report)) =
        calibrate_alpha(config.target_arr, config.alpha_tolerance, evaluate)
    else {
        // A degenerate candidate can miss the ARR target even at alpha = 1:
        // when the fuzzy value of the wrong class underflows to zero the
        // margin saturates at 1 and the beat is confidently misassigned, so
        // no alpha can recover it. Score such candidates at zero so the
        // genetic search discards them instead of aborting the whole fit.
        return Ok((classifier, 1.0, 0.0));
    };
    Ok((classifier, alpha, report.ndr()))
}

/// Driver of the complete two-step methodology.
///
/// Step 1 (SCG training) and the α calibration of step 2 are independent per
/// GA candidate, so [`Self::fit`] scores each generation's population
/// concurrently on a [`Par`] runner — by default one worker per core. The
/// fitness of a candidate is a pure function of its matrix and the dataset,
/// and scores are consumed in population order, so the fitted pipeline is
/// *bit-identical* for any thread count (see `tests/training_parallel.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoStepTrainer {
    config: TwoStepConfig,
    threads: Option<NonZeroUsize>,
}

impl TwoStepTrainer {
    /// Creates a trainer that scores GA candidates on all cores.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Config`] when the configuration is invalid.
    pub fn new(config: TwoStepConfig) -> Result<Self> {
        config.validate()?;
        Ok(TwoStepTrainer {
            config,
            threads: None,
        })
    }

    /// Pins candidate evaluation to an explicit worker count (1 = the
    /// sequential reference path parallel runs are asserted against).
    #[must_use]
    pub fn with_threads(mut self, threads: NonZeroUsize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &TwoStepConfig {
        &self.config
    }

    /// The worker-count policy used for candidate evaluation (`None` = one
    /// worker per available core).
    pub fn threads(&self) -> Option<NonZeroUsize> {
        self.threads
    }

    /// Runs the genetic search over projection matrices and returns the
    /// best-performing fitted pipeline.
    ///
    /// All candidates of a generation are trained and calibrated
    /// concurrently; the result does not depend on the worker count.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Training`] when the dataset splits cannot train the
    /// classifier (e.g. a class is missing from training set 1) and
    /// [`NfcError::Dimension`] when the beat windows are inconsistent.
    pub fn fit(&self, dataset: &Dataset) -> Result<FittedPipeline> {
        if dataset.training1.is_empty() || dataset.training2.is_empty() {
            return Err(NfcError::Training(
                "both training splits must be non-empty".into(),
            ));
        }
        let window = dataset.training1[0].samples.len();
        let optimizer =
            GeneticOptimizer::new(self.config.coefficients, window, self.config.genetic)
                .map_err(|e| NfcError::Config(e.to_string()))?;

        // Run the GA, fanning each generation's candidates over the runner;
        // candidates that fail to train score 0 (they are simply never
        // selected).
        let config = self.config;
        let runner = Par::with_threads(self.threads);
        let outcome = optimizer.run_batched(|candidates| {
            runner.map(candidates, |matrix| {
                fit_candidate(matrix, dataset, &config)
                    .map(|(_, _, ndr)| ndr)
                    .unwrap_or(0.0)
            })
        });

        // Re-fit the winner to recover its classifier and α.
        let (classifier, alpha_train, fitness) =
            fit_candidate(&outcome.best, dataset, &self.config)?;
        Ok(FittedPipeline {
            projection: outcome.best,
            classifier,
            alpha_train,
            fitness,
            ga_history: outcome.history,
        })
    }

    /// Fits a single, non-optimised random projection (no genetic search).
    /// Used by ablation benches to quantify the gain the GA brings, and by
    /// quick examples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::fit`].
    pub fn fit_single(&self, dataset: &Dataset, seed: u64) -> Result<FittedPipeline> {
        if dataset.training1.is_empty() || dataset.training2.is_empty() {
            return Err(NfcError::Training(
                "both training splits must be non-empty".into(),
            ));
        }
        let window = dataset.training1[0].samples.len();
        let matrix = AchlioptasMatrix::generate(self.config.coefficients, window, seed);
        let (classifier, alpha_train, fitness) = fit_candidate(&matrix, dataset, &self.config)?;
        Ok(FittedPipeline {
            projection: matrix,
            classifier,
            alpha_train,
            fitness,
            ga_history: vec![fitness],
        })
    }
}

/// Convenience helper: fits a pipeline with [`TwoStepConfig::quick`] and a
/// single (non-GA-optimised) projection — handy for doc examples and tests
/// that need a trained pipeline without paying for the genetic search.
pub fn pipeline_fit_quick(dataset: &Dataset, coefficients: usize, seed: u64) -> FittedPipeline {
    TwoStepTrainer::new(TwoStepConfig::quick(coefficients))
        .expect("quick config is valid")
        .fit_single(dataset, seed)
        .expect("synthetic datasets always contain all three classes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_ecg::dataset::DatasetSpec;

    fn tiny_dataset() -> Dataset {
        Dataset::synthetic(DatasetSpec::tiny(), 17)
    }

    #[test]
    fn config_validation() {
        assert!(TwoStepConfig::paper(8).validate().is_ok());
        assert!(TwoStepConfig::quick(0).validate().is_err());
        let mut c = TwoStepConfig::quick(8);
        c.target_arr = 0.0;
        assert!(c.validate().is_err());
        assert!(TwoStepTrainer::new(c).is_err());
    }

    #[test]
    fn single_fit_meets_the_arr_target_on_training2() {
        let dataset = tiny_dataset();
        let pipeline = pipeline_fit_quick(&dataset, 8, 3);
        let report = pipeline
            .evaluate(&dataset.training2, pipeline.alpha_train)
            .expect("evaluate");
        assert!(
            report.arr() >= 0.97,
            "ARR {} should meet the calibration target",
            report.arr()
        );
        assert!(
            pipeline.fitness > 0.5,
            "NDR fitness {} too low",
            pipeline.fitness
        );
        assert_eq!(pipeline.classifier.num_coefficients(), 8);
        assert_eq!(pipeline.projection.rows(), 8);
        assert_eq!(pipeline.projection.cols(), 200);
    }

    #[test]
    fn fitted_pipeline_generalizes_to_the_test_split() {
        let dataset = tiny_dataset();
        let pipeline = pipeline_fit_quick(&dataset, 8, 3);
        let report = pipeline
            .evaluate(&dataset.test, pipeline.alpha_train)
            .expect("evaluate");
        assert!(
            report.arr() > 0.85,
            "test ARR {} collapsed — classifier did not generalise",
            report.arr()
        );
        assert!(
            report.ndr() > 0.6,
            "test NDR {} collapsed — classifier rejects everything",
            report.ndr()
        );
    }

    #[test]
    fn genetic_fit_does_not_underperform_its_own_population() {
        let dataset = tiny_dataset();
        let mut config = TwoStepConfig::quick(8);
        config.genetic.population = 4;
        config.genetic.generations = 2;
        let trainer = TwoStepTrainer::new(config).expect("valid");
        let fitted = trainer.fit(&dataset).expect("fit");
        assert!(!fitted.ga_history.is_empty());
        let first = fitted.ga_history[0];
        let last = *fitted.ga_history.last().expect("non-empty");
        assert!(
            last >= first,
            "GA best fitness must not regress: {first} -> {last}"
        );
        assert!(fitted.fitness > 0.0);
    }

    #[test]
    fn classify_and_project_agree_with_evaluate() {
        let dataset = tiny_dataset();
        let pipeline = pipeline_fit_quick(&dataset, 8, 5);
        let beat = &dataset.test[0];
        let coeffs = pipeline.project(beat);
        assert_eq!(coeffs.len(), 8);
        let d = pipeline.classify(beat).expect("classify");
        assert!(d.fuzzy.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_training_split_is_an_error() {
        let mut dataset = tiny_dataset();
        dataset.training1.clear();
        let trainer = TwoStepTrainer::new(TwoStepConfig::quick(8)).expect("valid");
        assert!(matches!(
            trainer.fit_single(&dataset, 1),
            Err(NfcError::Training(_))
        ));
        assert!(matches!(trainer.fit(&dataset), Err(NfcError::Training(_))));
    }

    #[test]
    fn mismatched_window_is_a_dimension_error() {
        let dataset = tiny_dataset();
        let pipeline = pipeline_fit_quick(&dataset, 8, 5);
        let short = hbc_ecg::Beat::new(vec![0.0; 50], hbc_ecg::BeatClass::Normal);
        assert!(matches!(
            pipeline.classify(&short),
            Err(NfcError::Dimension(_))
        ));
    }
}
