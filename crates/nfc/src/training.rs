//! Training of the neuro-fuzzy classifier on projected heartbeats.
//!
//! The training phase (Section III-A of the paper) runs off-line on a PC in
//! floating point:
//!
//! 1. the membership functions are initialised from the class-conditional
//!    statistics of the projected coefficients over *training set 1*
//!    (centre = class mean, spread = class standard deviation);
//! 2. the parameters are refined by minimising the cross-entropy between the
//!    normalised fuzzy values and the one-hot beat labels with the scaled
//!    conjugate gradient ([`crate::scg`]).
//!
//! The resulting [`NeuroFuzzyClassifier`] is then handed to the embedded
//! optimisation phase (`hbc-embedded`) and/or evaluated directly for the
//! `*-PC` rows of the paper's tables.

use hbc_ecg::beat::NUM_CLASSES;

use crate::classifier::{normalize_log, NeuroFuzzyClassifier};
use crate::membership::GaussianMf;
use crate::scg::{self, ScgConfig, ScgOutcome};
use crate::{NfcError, Result};

/// A labelled training example: the projected coefficients of one beat and
/// its ground-truth class index.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingExample {
    /// Projected coefficients (`u = P·v`).
    pub coefficients: Vec<f64>,
    /// Ground-truth class index (`0 = N`, `1 = V`, `2 = L`).
    pub class: usize,
}

impl TrainingExample {
    /// Creates an example.
    pub fn new(coefficients: Vec<f64>, class: usize) -> Self {
        TrainingExample {
            coefficients,
            class,
        }
    }
}

/// Configuration of the NFC training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// SCG settings.
    pub scg: ScgConfig,
    /// Floor applied to the initial spreads, as a fraction of the overall
    /// coefficient standard deviation (avoids degenerate zero-width
    /// memberships when a class has very few examples).
    pub min_sigma_fraction: f64,
    /// L2 pull of the centres towards their initial values (a light
    /// regulariser that keeps the refined classifier close to its generative
    /// initialisation; 0 disables it).
    pub center_regularization: f64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            scg: ScgConfig::default(),
            min_sigma_fraction: 0.05,
            center_regularization: 1e-4,
        }
    }
}

impl TrainingConfig {
    /// Faster settings for unit tests and quick sweeps.
    pub fn quick() -> Self {
        TrainingConfig {
            scg: ScgConfig::quick(),
            ..Default::default()
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// The trained classifier.
    pub classifier: NeuroFuzzyClassifier,
    /// Cross-entropy loss before SCG refinement (statistics-only
    /// initialisation).
    pub initial_loss: f64,
    /// Cross-entropy loss after refinement.
    pub final_loss: f64,
    /// The raw SCG outcome (history, convergence flag).
    pub scg: ScgOutcome,
}

/// Trainer for the neuro-fuzzy classifier.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NfcTrainer {
    /// Training configuration.
    pub config: TrainingConfig,
}

impl NfcTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainingConfig) -> Self {
        NfcTrainer { config }
    }

    /// Initialises membership functions from class-conditional statistics.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Training`] when `examples` is empty, a class has no
    /// examples, an example has a different dimensionality than the others, or
    /// a class index is out of range.
    pub fn initialize(&self, examples: &[TrainingExample]) -> Result<NeuroFuzzyClassifier> {
        let k = validate_examples(examples)?;

        // Per-class, per-coefficient mean and variance.
        let mut count = [0usize; NUM_CLASSES];
        let mut mean = vec![[0.0f64; NUM_CLASSES]; k];
        let mut m2 = vec![[0.0f64; NUM_CLASSES]; k];
        for ex in examples {
            let l = ex.class;
            count[l] += 1;
            for (i, &u) in ex.coefficients.iter().enumerate() {
                // Welford's online update keeps the pass single and stable.
                let delta = u - mean[i][l];
                mean[i][l] += delta / count[l] as f64;
                m2[i][l] += delta * (u - mean[i][l]);
            }
        }

        // Global spread of each coefficient, used as a floor for σ.
        let mut global_mean = vec![0.0f64; k];
        let mut global_m2 = vec![0.0f64; k];
        for (n, ex) in examples.iter().enumerate() {
            for (i, &u) in ex.coefficients.iter().enumerate() {
                let delta = u - global_mean[i];
                global_mean[i] += delta / (n + 1) as f64;
                global_m2[i] += delta * (u - global_mean[i]);
            }
        }

        let mfs = (0..k)
            .map(|i| {
                let global_sigma = (global_m2[i] / examples.len() as f64).sqrt();
                let floor =
                    (self.config.min_sigma_fraction * global_sigma).max(GaussianMf::MIN_SIGMA);
                let mut row = [GaussianMf::default(); NUM_CLASSES];
                for l in 0..NUM_CLASSES {
                    let var = if count[l] > 1 {
                        m2[i][l] / (count[l] - 1) as f64
                    } else {
                        global_sigma * global_sigma
                    };
                    row[l] = GaussianMf::new(mean[i][l], var.sqrt().max(floor));
                }
                row
            })
            .collect();
        NeuroFuzzyClassifier::new(mfs)
    }

    /// Full training: statistics initialisation followed by SCG refinement of
    /// the cross-entropy loss.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Training`] for unusable training data (see
    /// [`Self::initialize`]).
    pub fn train(&self, examples: &[TrainingExample]) -> Result<TrainingOutcome> {
        let initial = self.initialize(examples)?;
        let initial_params = initial.to_parameters();
        let anchor = initial_params.clone();
        let reg = self.config.center_regularization;
        let (initial_loss, _) = loss_and_gradient(&initial_params, examples, &anchor, reg);

        let objective = |params: &[f64]| loss_and_gradient(params, examples, &anchor, reg);
        let scg_outcome = scg::minimize(&initial_params, &self.config.scg, objective);

        // Keep whichever parameter set is better (SCG never worsens the loss,
        // but guard against numerical corner cases anyway).
        let refined = NeuroFuzzyClassifier::from_parameters(&scg_outcome.parameters)?;
        let (final_loss, _) = loss_and_gradient(&scg_outcome.parameters, examples, &anchor, reg);
        let (classifier, final_loss) = if final_loss.is_finite() && final_loss <= initial_loss {
            (refined, final_loss)
        } else {
            (initial, initial_loss)
        };

        Ok(TrainingOutcome {
            classifier,
            initial_loss,
            final_loss,
            scg: scg_outcome,
        })
    }
}

/// Checks examples for consistency and returns the coefficient count.
fn validate_examples(examples: &[TrainingExample]) -> Result<usize> {
    if examples.is_empty() {
        return Err(NfcError::Training("no training examples provided".into()));
    }
    let k = examples[0].coefficients.len();
    if k == 0 {
        return Err(NfcError::Training(
            "training examples have zero coefficients".into(),
        ));
    }
    let mut seen = [false; NUM_CLASSES];
    for ex in examples {
        if ex.coefficients.len() != k {
            return Err(NfcError::Training(format!(
                "inconsistent dimensionality: expected {k}, found {}",
                ex.coefficients.len()
            )));
        }
        if ex.class >= NUM_CLASSES {
            return Err(NfcError::Training(format!(
                "class index {} out of range (NUM_CLASSES = {NUM_CLASSES})",
                ex.class
            )));
        }
        seen[ex.class] = true;
    }
    if seen.iter().any(|s| !s) {
        return Err(NfcError::Training(
            "every class (N, V, L) needs at least one training example".into(),
        ));
    }
    Ok(k)
}

/// Mean cross-entropy loss of the classifier described by `params` over
/// `examples`, plus its gradient with respect to the parameters
/// (`[c, ln σ]` pairs, see [`NeuroFuzzyClassifier::to_parameters`]).
fn loss_and_gradient(
    params: &[f64],
    examples: &[TrainingExample],
    anchor: &[f64],
    center_regularization: f64,
) -> (f64, Vec<f64>) {
    let stride = 2 * NUM_CLASSES;
    let k = params.len() / stride;
    let n = examples.len() as f64;
    let mut loss = 0.0;
    let mut grad = vec![0.0; params.len()];

    // Unpack parameters into centres and sigmas for fast access.
    let mut centers = vec![[0.0; NUM_CLASSES]; k];
    let mut sigmas = vec![[0.0; NUM_CLASSES]; k];
    for i in 0..k {
        for l in 0..NUM_CLASSES {
            centers[i][l] = params[i * stride + 2 * l];
            sigmas[i][l] = params[i * stride + 2 * l + 1]
                .exp()
                .max(GaussianMf::MIN_SIGMA);
        }
    }

    for ex in examples {
        // Forward pass in the log domain.
        let mut log_f = [0.0f64; NUM_CLASSES];
        for (i, &u) in ex.coefficients.iter().enumerate() {
            for l in 0..NUM_CLASSES {
                let d = (u - centers[i][l]) / sigmas[i][l];
                log_f[l] += -0.5 * d * d;
            }
        }
        let probs = normalize_log(&log_f);
        let p_true = probs[ex.class].max(1e-300);
        loss += -p_true.ln() / n;

        // Backward pass: dL/d(log f_l) = (probs_l - target_l) / n.
        for (i, &u) in ex.coefficients.iter().enumerate() {
            for l in 0..NUM_CLASSES {
                let target = if l == ex.class { 1.0 } else { 0.0 };
                let dl_dlogf = (probs[l] - target) / n;
                let c = centers[i][l];
                let s = sigmas[i][l];
                let diff = u - c;
                // d(log f_l)/dc = (u - c)/σ², d(log f_l)/d(ln σ) = (u-c)²/σ².
                grad[i * stride + 2 * l] += dl_dlogf * diff / (s * s);
                grad[i * stride + 2 * l + 1] += dl_dlogf * diff * diff / (s * s);
            }
        }
    }

    // Centre regularisation: pull centres (even parameter slots) towards the
    // anchor (the statistics initialisation).
    if center_regularization > 0.0 {
        for i in 0..k {
            for l in 0..NUM_CLASSES {
                let idx = i * stride + 2 * l;
                let d = params[idx] - anchor[idx];
                loss += 0.5 * center_regularization * d * d;
                grad[idx] += center_regularization * d;
            }
        }
    }

    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a toy, linearly separable training set: class l clusters around
    /// centre (l as f64 * 5.0) on every coefficient.
    fn toy_examples(k: usize, per_class: usize, seed: u64) -> Vec<TrainingExample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for class in 0..NUM_CLASSES {
            for _ in 0..per_class {
                let coeffs = (0..k)
                    .map(|_| class as f64 * 5.0 + rng.gen::<f64>() - 0.5)
                    .collect();
                out.push(TrainingExample::new(coeffs, class));
            }
        }
        out
    }

    #[test]
    fn validation_rejects_bad_data() {
        let trainer = NfcTrainer::default();
        assert!(trainer.initialize(&[]).is_err());
        // Missing class 2.
        let missing = vec![
            TrainingExample::new(vec![0.0; 4], 0),
            TrainingExample::new(vec![1.0; 4], 1),
        ];
        assert!(trainer.initialize(&missing).is_err());
        // Ragged dimensionality.
        let ragged = vec![
            TrainingExample::new(vec![0.0; 4], 0),
            TrainingExample::new(vec![1.0; 3], 1),
            TrainingExample::new(vec![2.0; 4], 2),
        ];
        assert!(trainer.initialize(&ragged).is_err());
        // Class out of range.
        let bad_class = vec![
            TrainingExample::new(vec![0.0; 4], 0),
            TrainingExample::new(vec![1.0; 4], 1),
            TrainingExample::new(vec![2.0; 4], 7),
        ];
        assert!(trainer.initialize(&bad_class).is_err());
        // Zero coefficients.
        let empty_coeffs = vec![TrainingExample::new(vec![], 0)];
        assert!(trainer.initialize(&empty_coeffs).is_err());
    }

    #[test]
    fn initialization_matches_class_statistics() {
        let examples = vec![
            TrainingExample::new(vec![0.0], 0),
            TrainingExample::new(vec![2.0], 0),
            TrainingExample::new(vec![10.0], 1),
            TrainingExample::new(vec![12.0], 1),
            TrainingExample::new(vec![-10.0], 2),
            TrainingExample::new(vec![-12.0], 2),
        ];
        let init = NfcTrainer::default().initialize(&examples).expect("init");
        let mfs = init.membership(0);
        assert!((mfs[0].center - 1.0).abs() < 1e-9);
        assert!((mfs[1].center - 11.0).abs() < 1e-9);
        assert!((mfs[2].center - (-11.0)).abs() < 1e-9);
        // Sample std of {0, 2} is sqrt(2).
        assert!((mfs[0].sigma - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn training_reduces_the_loss_and_classifies_the_toy_set() {
        let examples = toy_examples(6, 30, 3);
        let trainer = NfcTrainer::new(TrainingConfig::quick());
        let outcome = trainer.train(&examples).expect("train");
        assert!(outcome.final_loss <= outcome.initial_loss + 1e-12);
        assert!(
            outcome.final_loss < 0.1,
            "loss {} too high",
            outcome.final_loss
        );
        // The trained classifier must get essentially every toy example right.
        let mut correct = 0;
        for ex in &examples {
            let d = outcome
                .classifier
                .classify(&ex.coefficients, 0.0)
                .expect("classify");
            if d.class.index() == Some(ex.class) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / examples.len() as f64 > 0.98,
            "only {correct}/{} correct",
            examples.len()
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let examples = toy_examples(3, 5, 11);
        let trainer = NfcTrainer::default();
        let init = trainer.initialize(&examples).expect("init");
        let params = init.to_parameters();
        let anchor = params.clone();
        let (_, grad) = loss_and_gradient(&params, &examples, &anchor, 1e-4);
        let h = 1e-6;
        for idx in [0usize, 1, 4, 7, params.len() - 1] {
            let mut plus = params.clone();
            plus[idx] += h;
            let mut minus = params.clone();
            minus[idx] -= h;
            let (fp, _) = loss_and_gradient(&plus, &examples, &anchor, 1e-4);
            let (fm, _) = loss_and_gradient(&minus, &examples, &anchor, 1e-4);
            let numeric = (fp - fm) / (2.0 * h);
            assert!(
                (grad[idx] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "gradient mismatch at {idx}: analytic {} vs numeric {numeric}",
                grad[idx]
            );
        }
    }

    #[test]
    fn training_is_deterministic() {
        let examples = toy_examples(4, 10, 5);
        let trainer = NfcTrainer::new(TrainingConfig::quick());
        let a = trainer.train(&examples).expect("train");
        let b = trainer.train(&examples).expect("train");
        assert_eq!(a.classifier, b.classifier);
        assert_eq!(a.final_loss, b.final_loss);
    }

    #[test]
    fn single_example_per_class_still_trains() {
        let examples = vec![
            TrainingExample::new(vec![0.0, 0.0], 0),
            TrainingExample::new(vec![5.0, 5.0], 1),
            TrainingExample::new(vec![-5.0, -5.0], 2),
        ];
        let outcome = NfcTrainer::new(TrainingConfig::quick())
            .train(&examples)
            .expect("train");
        for ex in &examples {
            let d = outcome
                .classifier
                .classify(&ex.coefficients, 0.0)
                .expect("classify");
            assert_eq!(d.class.index(), Some(ex.class));
        }
    }
}
