//! The three-layer neuro-fuzzy classifier (floating-point, PC-side version).
//!
//! This is the reference implementation used during training and for the
//! `NDR-PC` rows of the paper's tables. The embedded, integer-only version
//! (linearised membership functions, shift-normalised products, division-free
//! defuzzification) lives in `hbc-embedded` and is derived from a trained
//! instance of this type.

use hbc_ecg::beat::{BeatClass, NUM_CLASSES};

use crate::membership::GaussianMf;
use crate::{NfcError, Result};

/// Output of the defuzzification layer for one beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Class assigned by the defuzzification rule (possibly
    /// [`BeatClass::Unknown`]).
    pub class: BeatClass,
    /// Normalised fuzzy values per class (they sum to 1), in class-index
    /// order (N, V, L).
    pub fuzzy: [f64; NUM_CLASSES],
    /// The defuzzification margin `(M1 − M2) / S` actually observed; the beat
    /// is assigned to the arg-max class when this is at least `α`.
    pub margin: f64,
}

impl Decision {
    /// Whether the decision routes the beat to the detailed-analysis path
    /// (V, L or Unknown).
    pub fn is_abnormal(&self) -> bool {
        self.class.is_abnormal()
    }
}

/// The neuro-fuzzy classifier: one Gaussian membership function per
/// (coefficient, class) pair plus the product/arg-max decision layers.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuroFuzzyClassifier {
    /// Membership functions indexed as `mfs[coefficient][class]`.
    mfs: Vec<[GaussianMf; NUM_CLASSES]>,
}

impl NeuroFuzzyClassifier {
    /// Builds a classifier from explicit membership functions
    /// (`mfs[coefficient][class]`).
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Dimension`] when `mfs` is empty.
    pub fn new(mfs: Vec<[GaussianMf; NUM_CLASSES]>) -> Result<Self> {
        if mfs.is_empty() {
            return Err(NfcError::Dimension(
                "the classifier needs at least one coefficient".into(),
            ));
        }
        Ok(NeuroFuzzyClassifier { mfs })
    }

    /// Builds a classifier whose membership functions are all the standard
    /// Gaussian (centre 0, spread 1); a starting point before training.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Dimension`] when `num_coefficients == 0`.
    pub fn uniform(num_coefficients: usize) -> Result<Self> {
        Self::new(vec![[GaussianMf::default(); NUM_CLASSES]; num_coefficients])
    }

    /// Number of projected coefficients the classifier expects.
    pub fn num_coefficients(&self) -> usize {
        self.mfs.len()
    }

    /// Membership functions of one coefficient, indexed by class.
    ///
    /// # Panics
    ///
    /// Panics when `coefficient >= num_coefficients()`.
    pub fn membership(&self, coefficient: usize) -> &[GaussianMf; NUM_CLASSES] {
        &self.mfs[coefficient]
    }

    /// All membership functions (`[coefficient][class]`).
    pub fn memberships(&self) -> &[[GaussianMf; NUM_CLASSES]] {
        &self.mfs
    }

    /// Replaces the membership function of one (coefficient, class) pair.
    ///
    /// # Panics
    ///
    /// Panics when `coefficient >= num_coefficients()` or
    /// `class >= NUM_CLASSES`.
    pub fn set_membership(&mut self, coefficient: usize, class: usize, mf: GaussianMf) {
        self.mfs[coefficient][class] = mf;
    }

    /// Log-domain fuzzy values `ln f_l = Σ_k ln µ_{k,l}(u_k)` for one
    /// coefficient vector.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Dimension`] when the input length does not match
    /// [`Self::num_coefficients`].
    pub fn log_fuzzy_values(&self, coefficients: &[f64]) -> Result<[f64; NUM_CLASSES]> {
        if coefficients.len() != self.mfs.len() {
            return Err(NfcError::Dimension(format!(
                "expected {} coefficients, got {}",
                self.mfs.len(),
                coefficients.len()
            )));
        }
        let mut log_f = [0.0; NUM_CLASSES];
        for (mfs, &u) in self.mfs.iter().zip(coefficients) {
            for (l, mf) in mfs.iter().enumerate() {
                log_f[l] += mf.log_grade(u);
            }
        }
        Ok(log_f)
    }

    /// Normalised fuzzy values (they sum to 1). The defuzzification rule of
    /// the paper only depends on ratios of fuzzy values, so normalising keeps
    /// the rule intact while avoiding the underflow a literal product of many
    /// membership grades would suffer.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Dimension`] when the input length does not match
    /// the classifier.
    pub fn fuzzy_values(&self, coefficients: &[f64]) -> Result<[f64; NUM_CLASSES]> {
        let log_f = self.log_fuzzy_values(coefficients)?;
        Ok(normalize_log(&log_f))
    }

    /// Runs the full classifier on one coefficient vector with
    /// defuzzification threshold `alpha`.
    ///
    /// The beat is assigned to the class with the largest fuzzy value when
    /// `(M1 − M2) ≥ alpha · S` (with `S` the sum of the fuzzy values), and to
    /// [`BeatClass::Unknown`] otherwise.
    ///
    /// Note that α = 1 is *not* guaranteed to route every beat to Unknown:
    /// the log-domain normalisation saturates outliers to a margin of
    /// exactly 1.0 (all fuzzy mass on one class), and such beats stay
    /// confidently classified at any α. α = 1 therefore means "accept only
    /// fully-saturated decisions", and calibration routines must not assume
    /// ARR(α = 1) = 1 (see `metrics::calibrate_alpha`, which returns `None`
    /// in that case). The integer classifier differs here: its Q16 grid top
    /// is pinned to all-Unknown because its α calibration binary-searches
    /// against that anchor.
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Dimension`] when the input length does not match
    /// the classifier and [`NfcError::Config`] when `alpha` is outside
    /// `[0, 1]`.
    pub fn classify(&self, coefficients: &[f64], alpha: f64) -> Result<Decision> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(NfcError::Config(format!(
                "defuzzification coefficient alpha must be in [0, 1], got {alpha}"
            )));
        }
        let fuzzy = self.fuzzy_values(coefficients)?;
        let (best, second) = top_two(&fuzzy);
        let sum: f64 = fuzzy.iter().sum(); // == 1 after normalisation
        let margin = (fuzzy[best] - fuzzy[second]) / sum;
        let class = if margin >= alpha {
            BeatClass::from_index(best).expect("index within NUM_CLASSES")
        } else {
            BeatClass::Unknown
        };
        Ok(Decision {
            class,
            fuzzy,
            margin,
        })
    }

    /// Flattens the trainable parameters into a vector
    /// `[c_{0,N}, σ_{0,N}, c_{0,V}, σ_{0,V}, …]`, the layout used by the SCG
    /// optimiser.
    pub fn to_parameters(&self) -> Vec<f64> {
        let mut params = Vec::with_capacity(self.mfs.len() * NUM_CLASSES * 2);
        for mfs in &self.mfs {
            for mf in mfs {
                params.push(mf.center);
                params.push(mf.sigma.ln());
            }
        }
        params
    }

    /// Rebuilds a classifier from a parameter vector produced by
    /// [`Self::to_parameters`] (spreads are stored as `ln σ` so the optimiser
    /// can move freely while σ stays positive).
    ///
    /// # Errors
    ///
    /// Returns [`NfcError::Dimension`] when the vector length is not a
    /// multiple of `2 · NUM_CLASSES` or is empty.
    pub fn from_parameters(params: &[f64]) -> Result<Self> {
        let stride = 2 * NUM_CLASSES;
        if params.is_empty() || !params.len().is_multiple_of(stride) {
            return Err(NfcError::Dimension(format!(
                "parameter vector length {} is not a positive multiple of {stride}",
                params.len()
            )));
        }
        let mfs = params
            .chunks_exact(stride)
            .map(|chunk| {
                let mut row = [GaussianMf::default(); NUM_CLASSES];
                for (l, pair) in chunk.chunks_exact(2).enumerate() {
                    row[l] = GaussianMf::new(pair[0], pair[1].exp());
                }
                row
            })
            .collect();
        Ok(NeuroFuzzyClassifier { mfs })
    }
}

/// Converts log-domain values into normalised linear values summing to 1.
pub(crate) fn normalize_log(log_f: &[f64; NUM_CLASSES]) -> [f64; NUM_CLASSES] {
    let max = log_f.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut out = [0.0; NUM_CLASSES];
    let mut sum = 0.0;
    for (o, &lf) in out.iter_mut().zip(log_f) {
        *o = (lf - max).exp();
        sum += *o;
    }
    for o in &mut out {
        *o /= sum;
    }
    out
}

/// Indices of the largest and second-largest values.
pub(crate) fn top_two(values: &[f64; NUM_CLASSES]) -> (usize, usize) {
    let mut best = 0usize;
    for i in 1..NUM_CLASSES {
        if values[i] > values[best] {
            best = i;
        }
    }
    let mut second = usize::MAX;
    for i in 0..NUM_CLASSES {
        if i == best {
            continue;
        }
        if second == usize::MAX || values[i] > values[second] {
            second = i;
        }
    }
    (best, second)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built classifier where class N peaks at 0, V at +10, L at −10
    /// on every coefficient.
    fn toy_classifier(k: usize) -> NeuroFuzzyClassifier {
        let mfs = (0..k)
            .map(|_| {
                [
                    GaussianMf::new(0.0, 2.0),
                    GaussianMf::new(10.0, 2.0),
                    GaussianMf::new(-10.0, 2.0),
                ]
            })
            .collect();
        NeuroFuzzyClassifier::new(mfs).expect("non-empty")
    }

    #[test]
    fn construction_validates_dimensions() {
        assert!(NeuroFuzzyClassifier::new(vec![]).is_err());
        assert!(NeuroFuzzyClassifier::uniform(0).is_err());
        let c = NeuroFuzzyClassifier::uniform(8).expect("valid");
        assert_eq!(c.num_coefficients(), 8);
    }

    #[test]
    fn clear_inputs_are_classified_confidently() {
        let c = toy_classifier(8);
        let n = c.classify(&[0.0; 8], 0.1).expect("classify");
        assert_eq!(n.class, BeatClass::Normal);
        assert!(n.margin > 0.9);
        let v = c.classify(&[10.0; 8], 0.1).expect("classify");
        assert_eq!(v.class, BeatClass::PrematureVentricular);
        assert!(v.is_abnormal());
        let l = c.classify(&[-10.0; 8], 0.1).expect("classify");
        assert_eq!(l.class, BeatClass::LeftBundleBranchBlock);
    }

    #[test]
    fn ambiguous_inputs_become_unknown() {
        let c = toy_classifier(8);
        // Exactly between N and V: the two largest fuzzy values tie, margin 0.
        let d = c.classify(&[5.0; 8], 0.05).expect("classify");
        assert_eq!(d.class, BeatClass::Unknown);
        assert!(
            d.is_abnormal(),
            "unknown beats are routed to detailed analysis"
        );
        assert!(d.margin < 0.05);
    }

    #[test]
    fn alpha_zero_never_produces_unknown() {
        let c = toy_classifier(4);
        for x in [-12.0, -3.0, 0.0, 4.9, 20.0] {
            let d = c.classify(&[x; 4], 0.0).expect("classify");
            assert_ne!(d.class, BeatClass::Unknown);
        }
    }

    #[test]
    fn higher_alpha_can_only_move_decisions_to_unknown() {
        let c = toy_classifier(4);
        for x in [-7.0, -2.0, 1.0, 4.0, 8.0] {
            let lo = c.classify(&[x; 4], 0.1).expect("classify");
            let hi = c.classify(&[x; 4], 0.9).expect("classify");
            if lo.class == BeatClass::Unknown {
                assert_eq!(hi.class, BeatClass::Unknown);
            }
            if hi.class != BeatClass::Unknown {
                assert_eq!(hi.class, lo.class);
            }
        }
    }

    #[test]
    fn fuzzy_values_are_a_probability_vector() {
        let c = toy_classifier(8);
        let f = c.fuzzy_values(&[1.0; 8]).expect("dims");
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn no_underflow_with_many_coefficients_far_from_centers() {
        // 32 coefficients far from every centre would underflow a literal
        // product of grades; the log-domain path must stay finite.
        let c = toy_classifier(32);
        let d = c.classify(&[100.0; 32], 0.1).expect("classify");
        assert!(d.fuzzy.iter().all(|v| v.is_finite()));
        assert!((d.fuzzy.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(d.class, BeatClass::PrematureVentricular);
    }

    #[test]
    fn dimension_and_alpha_errors() {
        let c = toy_classifier(8);
        assert!(matches!(
            c.classify(&[0.0; 7], 0.1),
            Err(NfcError::Dimension(_))
        ));
        assert!(matches!(
            c.classify(&[0.0; 8], 1.5),
            Err(NfcError::Config(_))
        ));
        assert!(matches!(
            c.classify(&[0.0; 8], -0.1),
            Err(NfcError::Config(_))
        ));
    }

    #[test]
    fn parameter_roundtrip_preserves_the_classifier() {
        let c = toy_classifier(8);
        let params = c.to_parameters();
        assert_eq!(params.len(), 8 * NUM_CLASSES * 2);
        let rebuilt = NeuroFuzzyClassifier::from_parameters(&params).expect("roundtrip");
        for k in 0..8 {
            for l in 0..NUM_CLASSES {
                let a = c.membership(k)[l];
                let b = rebuilt.membership(k)[l];
                assert!((a.center - b.center).abs() < 1e-12);
                assert!((a.sigma - b.sigma).abs() < 1e-12);
            }
        }
        assert!(NeuroFuzzyClassifier::from_parameters(&[1.0; 5]).is_err());
        assert!(NeuroFuzzyClassifier::from_parameters(&[]).is_err());
    }

    #[test]
    fn top_two_handles_ties_and_ordering() {
        assert_eq!(top_two(&[0.5, 0.3, 0.2]), (0, 1));
        assert_eq!(top_two(&[0.1, 0.7, 0.2]), (1, 2));
        let (b, s) = top_two(&[0.4, 0.4, 0.2]);
        assert_ne!(b, s);
        assert!(b < 2 && s < 2);
    }

    #[test]
    fn normalize_log_is_shift_invariant() {
        let a = normalize_log(&[-1.0, -2.0, -3.0]);
        let b = normalize_log(&[-1001.0, -1002.0, -1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
