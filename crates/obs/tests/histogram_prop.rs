//! Property-based correctness for the log2-bucketed histogram:
//!
//! * quantile readout against a sorted-vector oracle: the reported
//!   p50/p90/p99 always lands in the same power-of-two bucket as the true
//!   order statistic, bounds it from above, and never exceeds the observed
//!   maximum;
//! * deterministic merge: partitioning an observation stream at arbitrary
//!   split points into per-shard histograms and merging them back — in any
//!   order — reproduces the histogram of the whole stream exactly.

use hbc_obs::Histogram;
use proptest::prelude::*;

/// SplitMix64 step, the workspace's stock deterministic generator.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Observations spread across the full bucket range: a raw uniform `u64`
/// would land almost everything in the top buckets, so shift each draw
/// right by a random amount (occasionally all the way to zero).
fn observations(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let raw = next(&mut state);
            let shift = (next(&mut state) % 65) as u32;
            if shift == 64 {
                0
            } else {
                raw >> shift
            }
        })
        .collect()
}

/// The oracle order statistic matching `Histogram::quantile`'s rank rule:
/// the `ceil(q * n)`-th smallest observation (1-based), clamped to `[1, n]`.
fn oracle_rank_value(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_match_sorted_oracle_at_bucket_resolution(
        seed in any::<u64>(),
        n in 1usize..=400,
    ) {
        let values = observations(seed, n);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), n as u64);
        prop_assert_eq!(h.min(), sorted.first().copied());
        prop_assert_eq!(h.max(), sorted.last().copied());

        for q in [0.50, 0.90, 0.99] {
            let truth = oracle_rank_value(&sorted, q);
            let got = h.quantile(q).expect("non-empty");
            // Bucket-resolution exactness: the reported quantile bounds the
            // true order statistic from above, stays within the observed
            // range, and lives in the same power-of-two bucket.
            prop_assert!(truth <= got, "q={q}: truth {truth} > reported {got}");
            prop_assert!(got <= sorted[n - 1], "q={q}: reported above max");
            prop_assert_eq!(
                Histogram::bucket_index(got),
                Histogram::bucket_index(truth),
                "q={} landed in a different bucket", q
            );
        }
    }

    #[test]
    fn merge_is_exact_for_any_split(
        seed in any::<u64>(),
        split_seed in any::<u64>(),
        n in 1usize..=300,
        parts in 1usize..=8,
    ) {
        let values = observations(seed, n);
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }

        // Partition at arbitrary (seeded) split points into `parts` shards,
        // some possibly empty.
        let mut state = split_seed;
        let mut cuts: Vec<usize> =
            (0..parts - 1).map(|_| (next(&mut state) as usize) % (n + 1)).collect();
        cuts.sort_unstable();
        let mut shards: Vec<Histogram> = Vec::new();
        let mut start = 0usize;
        for &cut in cuts.iter().chain(std::iter::once(&n)) {
            let mut shard = Histogram::new();
            for &v in &values[start..cut] {
                shard.record(v);
            }
            shards.push(shard);
            start = cut;
        }

        // Forward merge order.
        let mut fwd = Histogram::new();
        for s in &shards {
            fwd.merge(s);
        }
        // Reverse merge order.
        let mut rev = Histogram::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }

        prop_assert_eq!(&fwd, &whole, "forward merge diverged from the whole");
        prop_assert_eq!(&rev, &whole, "merge is not order-independent");
        // Quantile readout is a pure function of the merged state.
        for q in [0.50, 0.90, 0.99] {
            prop_assert_eq!(fwd.quantile(q), whole.quantile(q));
        }
    }
}
